//! Semantic group-by: triage an email corpus into topical buckets with one
//! labelling call per bucket, then count the buckets with SQL — the
//! "structure once, query cheaply" loop on a clustering task.
//!
//! Run with: `cargo run --release --example email_triage`

use aida::data::Table;
use aida::llm::ModelId;
use aida::prelude::*;
use aida::semops::{ExecEnv, Executor, PhysicalPlan};
use aida::synth::enron;

fn main() {
    let workload = enron::generate(7);
    let env = ExecEnv::new(aida::llm::SimLlm::new(7));
    workload.install_oracle(&env.llm);

    // Cluster the first 60 emails into 4 semantic buckets; each bucket is
    // labelled with a single LLM call (not one per email).
    let subset = DataLake::from_docs(
        workload
            .lake
            .docs()
            .iter()
            .take(60)
            .map(|d| d.as_ref().clone()),
    );
    let ds = Dataset::scan(&subset, "emails")
        .sem_group_by("the business topic the email is about", 4)
        .project(&["filename", "group"]);
    let report = Executor::new(&env).execute(&PhysicalPlan::uniform(ds.plan(), ModelId::Mini, 8));
    println!(
        "triaged {} emails into 4 buckets for ${:.4} ({} LLM calls)\n",
        report.records.len(),
        report.cost(),
        report.stats.total_calls()
    );

    // Bucket sizes via SQL over the materialized assignment table.
    let rt = Runtime::builder().build();
    rt.register_table("triage", Table::from_records(&report.records));
    let out = rt
        .sql(
            "SELECT \"group\" FROM triage LIMIT 0", // probe the quoted-ident gap
        )
        .err();
    if out.is_some() {
        // `group` is a keyword-ish name; alias it through a projection.
        let renamed: Vec<_> = report
            .records
            .iter()
            .map(|r| {
                aida::data::Record::new(r.source.clone())
                    .with("filename", r.get_or_null("filename"))
                    .with("bucket", r.get_or_null("group"))
            })
            .collect();
        rt.register_table("triage", Table::from_records(&renamed));
    }
    let counts = rt
        .sql("SELECT bucket, COUNT(*) AS n FROM triage GROUP BY bucket ORDER BY n DESC")
        .expect("bucket counts");
    println!("bucket sizes:\n{}", counts.render());
}
