//! Building a Context over your own dataset: custom key-based lookups and
//! a user tool, exactly as the paper's §2.2 describes for programmers with
//! bespoke data (here: a time-series-flavored lake with a resampling
//! tool).
//!
//! Run with: `cargo run --example custom_context`

use aida::agents::{FnTool, ToolSpec};
use aida::core::Context;
use aida::prelude::*;
use aida::script::ScriptValue;
use std::sync::Arc;

fn main() {
    // A lake of monthly series, one file per metric.
    let mut docs = Vec::new();
    for (metric, base) in [("load_mw", 310.0), ("price_usd", 42.0)] {
        let mut content = String::from("month,value\n");
        for m in 1..=12 {
            content.push_str(&format!("2024-{m:02},{:.1}\n", base + (m as f64) * 3.5));
        }
        docs.push(Document::new(format!("{metric}_2024.csv"), content));
    }
    let lake = DataLake::from_docs(docs);
    let env = Runtime::builder().seed(3).build();

    // A user tool: quarterly resampling of a series file.
    let tool_lake = lake.clone();
    let resample = Arc::new(FnTool::new(
        ToolSpec::new(
            "resample_quarterly",
            "resample_quarterly(name: str) -> list[float]",
            "averages a monthly series file into four quarterly values",
        ),
        move |args| {
            let name = args
                .first()
                .ok_or_else(|| aida::script::ScriptError::host("need a file name"))?
                .as_str()?;
            let doc = tool_lake
                .get(name)
                .ok_or_else(|| aida::script::ScriptError::host("no such file"))?;
            let table = &doc
                .tables()
                .map_err(|e| aida::script::ScriptError::host(e.to_string()))?[0];
            let values: Vec<f64> = table
                .rows()
                .iter()
                .filter_map(|row| row[1].as_float().ok())
                .collect();
            let quarters: Vec<ScriptValue> = values
                .chunks(3)
                .map(|q| ScriptValue::Float(q.iter().sum::<f64>() / q.len() as f64))
                .collect();
            Ok(ScriptValue::list(quarters))
        },
    ));

    // Context with key-based lookups (metric name -> file) + the tool.
    let ctx = Context::builder("timeseries", lake)
        .description("Monthly 2024 operational series: system load (MW) and power price (USD).")
        .keys_from(|doc| vec![doc.name.trim_end_matches("_2024.csv").replace('_', " ")])
        .tool(resample)
        .build(&env);

    // The access methods the paper's Context exposes:
    println!("lookup('load mw')  -> {:?}", ctx.lookup("load mw"));
    println!("lookup('price usd') -> {:?}", ctx.lookup("price usd"));

    // And the Context is still a Dataset: iterator execution works.
    let ds = ctx
        .dataset()
        .sem_filter("the file contains electricity price data");
    println!("dataset plan:\n{}", ds.plan().render());

    // Agents attached to this Context automatically see the custom tool.
    let outcome = env
        .query(&ctx)
        .compute("find the number of months covered by the load series in 2024")
        .run();
    println!(
        "compute answer: {:?} (${:.4})",
        outcome.answer.map(|v| v.to_string()),
        outcome.cost
    );
}
