//! The structured side of the runtime: semantic operators materialize
//! tables from unstructured files once; afterwards plain SQL answers
//! follow-up questions for free (the paper's "many queries against the
//! same data lake" motivation).
//!
//! Run with: `cargo run --release --example sql_analytics`

use aida::data::{Field, Table};
use aida::llm::ModelId;
use aida::prelude::*;
use aida::semops::{ExecEnv, Executor, PhysicalPlan};
use aida::synth::legal;

fn main() {
    let workload = legal::generate(11);
    let env = ExecEnv::new(aida::llm::SimLlm::new(11));
    workload.install_oracle(&env.llm);

    // One semantic pass extracts a structured table from the lake: every
    // state file becomes a (state, identity theft count) row.
    let ds = Dataset::scan(&workload.lake, "legal")
        .sem_filter("the file is a state-level report for the year 2024")
        .sem_extract(
            "find the number of identity theft reports in the state file",
            vec![Field::described(
                "thefts",
                "the identity theft report count",
            )],
        )
        .project(&["filename", "thefts"]);
    let report = Executor::new(&env).execute(&PhysicalPlan::uniform(ds.plan(), ModelId::Mini, 8));
    println!(
        "semantic extraction: {} rows, ${:.3}, {:.0} virtual s",
        report.records.len(),
        report.cost(),
        report.time()
    );

    // Materialize and register for SQL — with a cleaning pass: keep only
    // rows whose extraction produced a number (LLM extraction is noisy;
    // real pipelines validate before loading).
    let clean: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.get("thefts").is_some_and(|v| v.as_float().is_ok()))
        .cloned()
        .collect();
    println!("cleaned rows: {} of {}", clean.len(), report.records.len());
    let table = Table::from_records(&clean);
    let rt = Runtime::builder().seed(11).build();
    rt.register_table("state_thefts", table);

    // Derived tables and plan inspection via SQL statements.
    match rt.sql_statement(
        "CREATE TABLE top_states AS SELECT filename, thefts FROM state_thefts \
         WHERE thefts IS NOT NULL ORDER BY thefts DESC LIMIT 10",
    ) {
        Ok(result) => println!("{result:?}"),
        Err(err) => println!("error: {err}"),
    }
    if let Ok(result) = rt.sql_statement("EXPLAIN SELECT AVG(thefts) FROM top_states") {
        if let Some(rows) = result.rows() {
            println!(
                "\nEXPLAIN SELECT AVG(thefts) FROM top_states:\n{}",
                rows.render()
            );
        }
    }

    // Follow-up questions are now plain (cheap, instant) SQL.
    for query in [
        "SELECT COUNT(*) AS n_states FROM state_thefts WHERE thefts IS NOT NULL",
        "SELECT filename, thefts FROM state_thefts WHERE thefts IS NOT NULL \
         ORDER BY thefts DESC LIMIT 5",
        "SELECT AVG(thefts) AS avg_thefts FROM state_thefts WHERE thefts IS NOT NULL",
    ] {
        println!("\nsql> {query}");
        match rt.sql(query) {
            Ok(out) => println!("{}", out.render()),
            Err(err) => println!("error: {err}"),
        }
    }
}
