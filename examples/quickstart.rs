//! Quickstart: build a Context over a small data lake, ask a question with
//! the agentic `compute` operator, and re-query the materialized findings
//! with SQL.
//!
//! Run with: `cargo run --example quickstart`

use aida::prelude::*;

fn main() {
    // 1. A tiny unstructured data lake: three "files".
    let lake = DataLake::from_docs([
        Document::new(
            "complaints_by_year.csv",
            "year,category,reports\n\
             2022,identity theft,1108609\n\
             2023,identity theft,1036903\n\
             2024,identity theft,1135291\n\
             2024,imposter scams,845400\n",
        ),
        Document::new(
            "notes.txt",
            "Identity theft reports are collected through the Consumer Sentinel Network.",
        ),
        Document::new("unrelated.txt", "Cafeteria menu for the week of June 3rd."),
    ]);

    // 2. A runtime (simulated LLM, virtual clock, context manager).
    let env = Runtime::builder().seed(7).build();

    // 3. Wrap the lake in a Context: a described, indexable dataset.
    let ctx = Context::builder("quickstart", lake)
        .description("A small lake with consumer-complaint statistics by year.")
        .with_vector_index()
        .build(&env);
    println!("Context: {} documents", ctx.len());

    // 4. Ask a question. The compute operator plans with an agent and
    //    delegates exhaustive work to an optimized semantic-operator
    //    program.
    let outcome = env
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    println!(
        "answer: {}",
        outcome
            .answer
            .map(|v| v.to_string())
            .unwrap_or_else(|| "<none>".into())
    );
    println!(
        "spent: ${:.4} in {:.1} virtual seconds",
        outcome.cost, outcome.time
    );

    // 5. The execution materialized its findings as a SQL table — future
    //    queries hit structure, not the LLM.
    for table in env.table_names() {
        let out = env
            .sql(&format!("SELECT * FROM {table}"))
            .expect("materialized tables are queryable");
        println!("\nmaterialized table `{table}`:\n{}", out.render());
    }
}
