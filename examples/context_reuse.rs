//! Materialized-Context reuse (the paper's §3 physical optimization and
//! §2.4 ContextManager): a second, similar query reuses the Context the
//! first query materialized and runs against a dramatically narrower lake.
//!
//! Run with: `cargo run --release --example context_reuse`

use aida::core::Context;
use aida::prelude::*;
use aida::synth::legal;

fn main() {
    let env = Runtime::builder().seed(5).build();
    let workload = legal::generate(5);
    workload.install_oracle(&env.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&env);

    println!("== first query: thefts in 2001 ==");
    let first = env
        .query(&ctx)
        .compute("find the number of identity theft reports in 2001")
        .run();
    println!(
        "answer: {:?}  (${:.3}, {:.0}s)",
        first.answer.map(|v| v.to_string()),
        first.cost,
        first.time
    );
    println!("materialized contexts: {}", env.manager().len());

    println!("\n== second query: thefts in 2024 (similar instruction) ==");
    let second = env
        .query(&ctx)
        .compute("find the number of identity theft reports in 2024")
        .run();
    println!(
        "answer: {:?}  (${:.3}, {:.0}s)",
        second.answer.map(|v| v.to_string()),
        second.cost,
        second.time
    );
    let reused = second.trace.iter().any(|t| t.reused);
    println!("reused a materialized Context: {reused}");
    println!(
        "savings vs first query: {:.1}% cost, {:.1}% time",
        (1.0 - second.cost / first.cost) * 100.0,
        (1.0 - second.time / first.time) * 100.0
    );

    println!("\n== third query: hits structure directly via SQL ==");
    for table in env.table_names() {
        if let Ok(out) = env.sql(&format!(
            "SELECT source, value FROM {table} WHERE value IS NOT NULL LIMIT 3"
        )) {
            if !out.is_empty() {
                println!("table `{table}`:\n{}", out.render());
            }
        }
    }
}
