//! The paper's Table 1 query end-to-end: the Kramabench `legal-easy-3`
//! identity-theft-ratio question over a 132-file Consumer Sentinel lake,
//! answered three ways — handcrafted semantic operators, an open Deep
//! Research CodeAgent, and the prototype's `compute` operator.
//!
//! Run with: `cargo run --release --example kramabench_legal`

use aida::eval::systems::{run_code_agent, run_pz_compute, run_semops_handcrafted, SystemAnswer};
use aida::synth::legal;

fn describe(answer: &SystemAnswer, truth: f64) -> String {
    match answer {
        SystemAnswer::Numbers(ratios) => {
            let errs: Vec<String> = ratios
                .iter()
                .map(|r| format!("{r:.3} (err {:.1}%)", ((r - truth) / truth).abs() * 100.0))
                .collect();
            errs.join(", ")
        }
        other => format!("{other:?}"),
    }
}

fn main() {
    let seed = 1;
    let workload = legal::generate(seed);
    let truth = legal::true_ratio();
    println!("query: {}", workload.query);
    println!(
        "lake: {} files; ground truth ratio = {truth:.4}\n",
        workload.lake.len()
    );

    let semops = run_semops_handcrafted(&workload, seed);
    println!("== Handcrafted semantic operators ==");
    println!("answer(s): {}", describe(&semops.answer, truth));
    println!("cost ${:.3}, {:.0} virtual s\n", semops.cost, semops.time);

    let agent = run_code_agent(&workload, seed, false);
    println!("== Open Deep Research CodeAgent ==");
    println!("answer(s): {}", describe(&agent.answer, truth));
    println!("cost ${:.3}, {:.0} virtual s\n", agent.cost, agent.time);

    let compute = run_pz_compute(&workload, seed);
    println!("== Prototype compute operator ==");
    println!("answer(s): {}", describe(&compute.answer, truth));
    println!("cost ${:.3}, {:.0} virtual s\n", compute.cost, compute.time);
    println!("compute execution detail:\n{}", compute.detail);
}
