//! Serve three tenants from one shared runtime.
//!
//! Two analyst teams and a capped trial account query the same FTC
//! report lake. The trial account exhausts its dollar quota and gets
//! typed `budget_exhausted` rejections; the analysts share each other's
//! materialized Contexts, so repeated questions get cheaper.
//!
//! Run with: `cargo run --example multi_tenant_serve`

use aida::prelude::*;

fn main() {
    let rt = Runtime::builder().seed(7).context_capacity(64).build();
    let lake = DataLake::from_docs([
        Document::new("report_2001.txt", "identity theft reports in 2001: 86250"),
        Document::new("report_2013.txt", "identity theft reports in 2013: 290102"),
        Document::new("report_2024.txt", "identity theft reports in 2024: 1135291"),
    ]);
    let ctx = Context::builder("ftc", lake)
        .description("FTC identity theft report counts by year")
        .build(&rt);

    let mut svc = QueryService::new(rt, ServeConfig::with_workers(2));
    svc.register_context("reports", ctx);
    svc.register_tenant("analysts-east", TenantConfig::weighted(2));
    svc.register_tenant("analysts-west", TenantConfig::default());
    svc.register_tenant("trial", TenantConfig::default().dollars(0.001));

    let questions = [
        "count identity theft reports in 2001",
        "count identity theft reports in 2024",
    ];
    let loads = [
        TenantLoad::new("analysts-east", "reports")
            .instructions(questions)
            .queries(4)
            .mean_interarrival(30.0),
        TenantLoad::new("analysts-west", "reports")
            .instructions(questions)
            .queries(4)
            .mean_interarrival(45.0)
            .offset(10.0),
        TenantLoad::new("trial", "reports")
            .instructions(["count identity theft reports in 2013"])
            .queries(6)
            .mean_interarrival(20.0),
    ];

    let requests = open_loop(7, &loads);
    let isolated = svc.isolated_cost(&requests);
    let mut report = svc.run(requests);
    report.set_isolated_baseline(isolated);
    println!("{}", report.render());
}
