//! The paper's Table 2 task end-to-end: filter 250 Enron-style emails for
//! firsthand discussion of specific business transactions, comparing the
//! CodeAgent baselines against the prototype's `compute` operator.
//!
//! Run with: `cargo run --release --example enron_filter`

use aida::eval::f1_score;
use aida::eval::systems::{run_code_agent, run_pz_compute, SystemAnswer};
use aida::synth::enron;

fn score(answer: &SystemAnswer, truth: &[String]) -> String {
    match answer {
        SystemAnswer::Docs(docs) => {
            let prf = f1_score(docs, truth);
            format!(
                "{} returned | F1 {:.1}%  recall {:.1}%  precision {:.1}%",
                docs.len(),
                prf.f1 * 100.0,
                prf.recall * 100.0,
                prf.precision * 100.0
            )
        }
        other => format!("{other:?}"),
    }
}

fn main() {
    let seed = 1;
    let workload = enron::generate(seed);
    let truth = workload.truth.as_doc_set().unwrap().to_vec();
    println!("query: {}", workload.query);
    println!(
        "lake: {} emails; {} truly relevant\n",
        workload.lake.len(),
        truth.len()
    );

    let agent = run_code_agent(&workload, seed, false);
    println!("== CodeAgent (keyword shortcuts) ==");
    println!("{}", score(&agent.answer, &truth));
    println!("cost ${:.3}, {:.0} virtual s\n", agent.cost, agent.time);

    let plus = run_code_agent(&workload, seed, true);
    println!("== CodeAgent+ (unoptimized semantic-operator tools) ==");
    println!("{}", score(&plus.answer, &truth));
    println!("cost ${:.3}, {:.0} virtual s\n", plus.cost, plus.time);

    let compute = run_pz_compute(&workload, seed);
    println!("== Prototype compute operator (optimized programs) ==");
    println!("{}", score(&compute.answer, &truth));
    println!("cost ${:.3}, {:.0} virtual s\n", compute.cost, compute.time);
    println!(
        "savings vs CodeAgent+: {:.1}% cost, {:.1}% time",
        (1.0 - compute.cost / plus.cost) * 100.0,
        (1.0 - compute.time / plus.time) * 100.0
    );
}
