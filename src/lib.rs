//! `aida` — A Runtime for AI-Driven Analytics.
//!
//! This facade crate re-exports the public API of the AIDA workspace, a
//! from-scratch Rust reproduction of *"Deep Research is the New Analytics
//! System: Towards Building the Runtime for AI-Driven Analytics"* (CIDR'26).
//!
//! The runtime combines three execution paradigms:
//!
//! 1. **Semantic operators** ([`semops`]) — declarative, natural-language
//!    specified AI data transformations with iterator execution semantics
//!    and cost-based optimization ([`optimizer`]).
//! 2. **Deep Research agents** ([`agents`]) — CodeAgents that plan, write
//!    code (in the bundled [`script`] language), and use tools iteratively.
//! 3. **SQL over materialized structure** ([`sql`]) — structured tables
//!    produced during query execution can be re-queried cheaply.
//!
//! The paper's contribution lives in [`core`]: the [`core::Context`]
//! abstraction, the agentic `search`/`compute` operators, and the
//! [`core::ContextManager`] that reuses materialized Contexts across
//! queries like materialized views. The serving layer ([`serve`])
//! multiplexes many tenants onto one shared runtime with admission
//! control, per-tenant budgets, and weighted-fair scheduling — so one
//! tenant's materialized Contexts cheapen every other tenant's queries.
//!
//! # Quickstart
//!
//! ```
//! use aida::prelude::*;
//!
//! // Build a tiny data lake and wrap it in a Context.
//! let lake = DataLake::from_docs([
//!     Document::new("notes.txt", "identity theft reports rose in 2024"),
//! ]);
//! let env = Runtime::builder().seed(7).build();
//! let ctx = Context::builder("lake", lake)
//!     .description("a lake with one text file")
//!     .build(&env);
//! assert_eq!(ctx.len(), 1);
//! ```

pub use aida_agents as agents;
pub use aida_core as core;
pub use aida_data as data;
pub use aida_eval as eval;
pub use aida_index as index;
pub use aida_llm as llm;
pub use aida_obs as obs;
pub use aida_optimizer as optimizer;
pub use aida_script as script;
pub use aida_semops as semops;
pub use aida_serve as serve;
pub use aida_sql as sql;
pub use aida_synth as synth;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    pub use aida_core::{Context, ContextManager, Runtime, RuntimeBuilder};
    pub use aida_data::{DataLake, DocKind, Document, Record, Schema, Table, Value};
    pub use aida_llm::{ModelId, UsageMeter};
    pub use aida_semops::Dataset;
    pub use aida_serve::{
        open_loop, AutoscaleConfig, ClientConfig, LiveSource, QueryRequest, QueryService,
        ServeConfig, TenantConfig, TenantId, TenantLoad,
    };
}
