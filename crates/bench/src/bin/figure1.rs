//! Regenerates Figure 1: qualitative traces of both example queries.
fn main() {
    aida_bench::emit_text("figure1", &aida_eval::figure1(1));
    aida_bench::emit_trace("figure1", &aida_bench::traces::table2());
}
