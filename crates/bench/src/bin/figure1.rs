//! Regenerates Figure 1: qualitative traces of both example queries.
fn main() {
    aida_bench::emit_text("figure1", &aida_eval::figure1(1));
    let recorder = aida_bench::traces::table2();
    aida_bench::emit_bench(&aida_bench::BenchResult::from_trace(
        "figure1", 1, &recorder,
    ));
    aida_bench::emit_trace("figure1", &recorder);
}
