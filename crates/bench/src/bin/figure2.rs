//! Regenerates Figure 2: the search -> compute pipeline over a Context.
fn main() {
    let (text, recorder) = aida_eval::figure2_traced(1);
    aida_bench::emit_text("figure2", &text);
    aida_bench::emit_bench(&aida_bench::BenchResult::from_trace(
        "figure2", 1, &recorder,
    ));
    aida_bench::emit_trace("figure2", &recorder);
}
