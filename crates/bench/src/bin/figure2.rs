//! Regenerates Figure 2: the search -> compute pipeline over a Context.
fn main() {
    aida_bench::emit_text("figure2", &aida_eval::figure2(1));
}
