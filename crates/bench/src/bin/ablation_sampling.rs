//! Ablation E: the optimizer's sampling budget.
fn main() {
    aida_bench::emit(&aida_eval::ablation_sampling(
        &aida_eval::experiments::TRIAL_SEEDS,
        &[0, 12, 36, 72],
    ));
    aida_bench::emit_trace(
        "ablation_sampling",
        &aida_bench::traces::ablation_sampling(),
    );
}
