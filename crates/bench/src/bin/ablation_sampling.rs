//! Ablation E: the optimizer's sampling budget.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(
        &aida_eval::ablation_sampling(&seeds, &[0, 12, 36, 72]),
        seeds[0],
    );
    aida_bench::emit_trace(
        "ablation_sampling",
        &aida_bench::traces::ablation_sampling(),
    );
}
