//! Regenerates Table 2: the Enron email-filtering comparison.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::table2(&seeds), seeds[0]);
    aida_bench::emit_trace("table2", &aida_bench::traces::table2());
}
