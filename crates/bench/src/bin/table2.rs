//! Regenerates Table 2: the Enron email-filtering comparison.
fn main() {
    aida_bench::emit(&aida_eval::table2(&aida_eval::experiments::TRIAL_SEEDS));
}
