//! Semantic-cache micro-benchmark: cold vs warm cost and latency on the
//! legal and Enron workloads.
//!
//! The cold pass runs every instruction through a fresh runtime with an
//! empty cache and spills the cache to `results/cache/` on exit. The
//! warm pass builds a brand-new runtime (same seed) that loads the
//! snapshot on startup and replays the identical instructions: every
//! semantic call hits the cache, so the warm pass must produce the
//! byte-identical answers at a fraction of the cold dollars. Numbers
//! land in `results/BENCH_semcache.json`.

use aida_bench::SemcacheBench;
use aida_core::{Context, Runtime};
use aida_obs::Summary;
use aida_synth::{enron, legal};
use std::path::Path;

struct Pass {
    usd: f64,
    latency: Summary,
    answers: Vec<String>,
    /// Dollars per workload label (`legal`, `enron`), in label order.
    by_workload: Vec<(&'static str, f64)>,
}

fn run_pass(seed: u64, snapshot: &Path) -> (Runtime, Pass) {
    let rt = Runtime::builder()
        .seed(seed)
        .semantic_cache(8192)
        .cache_path(snapshot)
        .build();
    let legal_workload = legal::generate(seed);
    let enron_workload = enron::generate(seed);
    legal_workload.install_oracle(&rt.env().llm);
    enron_workload.install_oracle(&rt.env().llm);
    let legal_ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let enron_ctx = Context::builder("enron", enron_workload.lake.clone())
        .description(enron_workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let legal_mix = [
        "find the number of identity theft reports in 2001",
        "find the number of identity theft reports in 2024",
        "find the number of identity theft reports in 2013",
    ];
    let enron_mix = [
        "find emails with firsthand discussion of the Raptor transaction",
        "find emails with firsthand discussion of the Chewco transaction",
    ];

    let mut pass = Pass {
        usd: 0.0,
        latency: Summary::default(),
        answers: Vec::new(),
        by_workload: vec![("legal", 0.0), ("enron", 0.0)],
    };
    let catalog = rt.env().llm.catalog();
    let queries = legal_mix
        .iter()
        .map(|i| (0, &legal_ctx, *i))
        .chain(enron_mix.iter().map(|i| (1, &enron_ctx, *i)));
    for (workload, ctx, instruction) in queries {
        let clock0 = rt.clock().now();
        let meter0 = rt.meter().snapshot();
        let outcome = rt.query(ctx).compute(instruction).run();
        let usd = rt.meter().snapshot().delta_since(&meter0).cost(catalog);
        pass.usd += usd;
        pass.by_workload[workload].1 += usd;
        pass.latency.record(rt.clock().now() - clock0);
        pass.answers.push(format!("{:?}", outcome.answer));
    }
    (rt, pass)
}

fn main() {
    let seed = 1;
    let snapshot = aida_bench::results_dir()
        .join("cache")
        .join("cache_bench.snap");
    // Start genuinely cold: drop any snapshot a previous run left behind.
    let _ = std::fs::remove_file(&snapshot);

    let (cold_rt, cold) = run_pass(seed, &snapshot);
    let spilled = cold_rt
        .save_cache()
        .expect("spilling the semantic cache snapshot");
    assert!(spilled, "cold runtime was built with a cache and a path");
    println!(
        "cold pass: ${:.4} over {} queries (cache snapshot at {})",
        cold.usd,
        cold.answers.len(),
        snapshot.display()
    );

    let (warm_rt, warm) = run_pass(seed, &snapshot);
    let stats = warm_rt.cache_stats().expect("warm runtime has a cache");
    println!(
        "warm pass: ${:.4} over {} queries ({} hits / {} coalesced / {} misses)",
        warm.usd,
        warm.answers.len(),
        stats.hits,
        stats.coalesced,
        stats.misses
    );

    for ((name, cold_usd), (_, warm_usd)) in cold.by_workload.iter().zip(&warm.by_workload) {
        println!("  {name}: cold ${cold_usd:.4} -> warm ${warm_usd:.4}");
    }

    if warm.answers != cold.answers {
        eprintln!("FAIL: warm answers diverged from cold answers");
        std::process::exit(1);
    }
    if warm.usd >= cold.usd {
        eprintln!(
            "FAIL: warm pass ${:.4} >= cold pass ${:.4}",
            warm.usd, cold.usd
        );
        std::process::exit(1);
    }

    let bench = SemcacheBench {
        source: "cache_bench",
        cold_usd: cold.usd,
        warm_usd: warm.usd,
        hit_rate: stats.hit_rate(),
        p50_cold_s: cold.latency.p50(),
        p95_cold_s: cold.latency.p95(),
        p50_warm_s: warm.latency.p50(),
        p95_warm_s: warm.latency.p95(),
    };
    aida_bench::emit_semcache_bench(&bench);
    aida_bench::emit_bench(
        &aida_bench::BenchResult::new("cache_bench", seed)
            .metric("cold_usd", bench.cold_usd)
            .metric("warm_usd", bench.warm_usd)
            .metric("reduction_pct", bench.reduction_pct())
            .metric("hit_rate", bench.hit_rate)
            .metric("p50_cold_s", bench.p50_cold_s)
            .metric("p95_cold_s", bench.p95_cold_s)
            .metric("p50_warm_s", bench.p50_warm_s)
            .metric("p95_warm_s", bench.p95_warm_s),
    );
}
