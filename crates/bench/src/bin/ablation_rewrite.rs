//! Ablation D: split/merge logical rewrites.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::ablation_rewrite(&seeds), seeds[0]);
    aida_bench::emit_trace("ablation_rewrite", &aida_bench::traces::ablation_rewrite());
}
