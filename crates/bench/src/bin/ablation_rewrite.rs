//! Ablation D: split/merge logical rewrites.
fn main() {
    aida_bench::emit(&aida_eval::ablation_rewrite(&aida_eval::experiments::TRIAL_SEEDS));
}
