//! Runs every table, figure, and ablation, persisting all reports and
//! their span traces.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::table1(&seeds), seeds[0]);
    aida_bench::emit_trace("table1", &aida_bench::traces::table1());
    aida_bench::emit(&aida_eval::table2(&seeds), seeds[0]);
    aida_bench::emit_trace("table2", &aida_bench::traces::table2());
    aida_bench::emit(&aida_eval::ablation_reuse(&seeds), seeds[0]);
    aida_bench::emit_trace("ablation_reuse", &aida_bench::traces::ablation_reuse());
    aida_bench::emit(&aida_eval::ablation_optimizer(&seeds), seeds[0]);
    aida_bench::emit_trace(
        "ablation_optimizer",
        &aida_bench::traces::ablation_optimizer(),
    );
    aida_bench::emit(&aida_eval::ablation_access(&[10, 50, 100, 200], 1), 1);
    aida_bench::emit_trace("ablation_access", &aida_bench::traces::ablation_access());
    aida_bench::emit(&aida_eval::ablation_rewrite(&seeds), seeds[0]);
    aida_bench::emit_trace("ablation_rewrite", &aida_bench::traces::ablation_rewrite());
    aida_bench::emit(
        &aida_eval::ablation_sampling(&seeds, &[0, 12, 36, 72]),
        seeds[0],
    );
    aida_bench::emit_trace(
        "ablation_sampling",
        &aida_bench::traces::ablation_sampling(),
    );
    aida_bench::emit_text("figure1", &aida_eval::figure1(1));
    let fig1 = aida_bench::traces::table2();
    aida_bench::emit_bench(&aida_bench::BenchResult::from_trace("figure1", 1, &fig1));
    aida_bench::emit_trace("figure1", &fig1);
    let (text, recorder) = aida_eval::figure2_traced(1);
    aida_bench::emit_text("figure2", &text);
    aida_bench::emit_bench(&aida_bench::BenchResult::from_trace(
        "figure2", 1, &recorder,
    ));
    aida_bench::emit_trace("figure2", &recorder);
}
