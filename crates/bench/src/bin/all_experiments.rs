//! Runs every table, figure, and ablation, persisting all reports.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::table1(&seeds));
    aida_bench::emit(&aida_eval::table2(&seeds));
    aida_bench::emit(&aida_eval::ablation_reuse(&seeds));
    aida_bench::emit(&aida_eval::ablation_optimizer(&seeds));
    aida_bench::emit(&aida_eval::ablation_access(&[10, 50, 100, 200], 1));
    aida_bench::emit(&aida_eval::ablation_rewrite(&seeds));
    aida_bench::emit(&aida_eval::ablation_sampling(&seeds, &[0, 12, 36, 72]));
    aida_bench::emit_text("figure1", &aida_eval::figure1(1));
    aida_bench::emit_text("figure2", &aida_eval::figure2(1));
}
