//! Checkpoint-scaling bench: full-rewrite vs delta-frame state saves.
//!
//! Grows the ContextManager population 1× → 10× → 100× and, at each
//! scale, runs the same mutation/checkpoint cycle in two modes:
//!
//! * **full** — every `save_state` rewrites the entire snapshot through
//!   the atomic-rename path; bytes written per checkpoint grow linearly
//!   with the store.
//! * **delta** — the first save writes one full snapshot, every later
//!   save appends a checksummed delta frame carrying only the records
//!   since the previous checkpoint; bytes written per checkpoint stay
//!   flat regardless of store size.
//!
//! Bytes are measured from the files themselves (state-file size per
//! full rewrite, delta-chain growth per frame), so the canonical
//! metrics in `results/BENCH_checkpoint.json` are byte-identical across
//! same-seed runs; wall-clock timings are printed for context but never
//! emitted. A serve-style coda appends the same ledger records
//! per-record vs group-committed and reports the fsync collapse.
//!
//! Self-asserts (the paper's scaling claim): delta bytes/checkpoint at
//! the largest scale stay within 2× of the smallest, full-rewrite
//! bytes/checkpoint grow with the store, and group commit cuts fsyncs
//! per append by at least 5×. `CHECKPOINT_BENCH_SMOKE=1` drops the 100×
//! rung for CI.

use aida_bench::BenchResult;
use aida_core::{Context, Runtime};
use aida_data::{DataLake, Document};
use aida_llm::WallStopwatch;
use aida_serve::{LedgerRecord, LedgerWal};
use std::path::Path;

/// Checkpoint cycles measured per mode (after the seeding full save).
const CYCLES: usize = 8;

fn context(rt: &Runtime, name: &str) -> Context {
    let lake = DataLake::from_docs([Document::new(
        format!("{name}.txt"),
        format!("{name}: synthetic checkpoint-bench document body"),
    )]);
    Context::builder(name, lake)
        .description(format!("checkpoint bench context {name}"))
        .build(rt)
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

struct ModeRun {
    bytes_per_ckpt: f64,
    frames: u64,
    wall_s: f64,
}

/// Seeds `scale` contexts, full-saves once, then runs `CYCLES` cycles of
/// one LRU touch + one checkpoint, measuring bytes written per
/// checkpoint from the on-disk files. Touches mutate recency ticks
/// without growing the store, so full-rewrite bytes track the store
/// size while each delta frame carries a single touch record.
fn run_mode(dir: &Path, scale: usize, delta: bool) -> ModeRun {
    let state = dir.join(format!("state_{scale}_{delta}.bin"));
    let mut builder = Runtime::builder()
        .seed(42)
        .context_capacity(4096)
        .state_path(&state);
    if delta {
        // One full snapshot up front, delta frames for every later save.
        builder = builder.delta_checkpoints(true).full_snapshot_every(1 << 20);
    }
    let rt = builder.build();
    for i in 0..scale {
        let ctx = context(&rt, &format!("seed{i}"));
        rt.manager()
            .register(&format!("seed instruction {i}"), ctx, 1.0);
    }
    assert!(rt.save_state().expect("seeding checkpoint"), "seed save");

    let delta_path = if delta { rt.delta_path() } else { None };
    let mut bytes_written = 0u64;
    let mut frames = 0u64;
    let watch = WallStopwatch::start();
    let mut last_delta_len = delta_path.as_deref().map(file_len).unwrap_or(0);
    for i in 0..CYCLES {
        let target = (i * 7) % scale;
        rt.manager()
            .reuse(&format!("seed instruction {target}"), 0.9)
            .expect("touch hits the registered instruction");
        assert!(rt.save_state().expect("cycle checkpoint"), "cycle save");
        if let Some(path) = delta_path.as_deref() {
            let len = file_len(path);
            bytes_written += len - last_delta_len;
            last_delta_len = len;
            frames += 1;
        } else {
            // A full rewrite replaces the state file wholesale.
            bytes_written += file_len(&state);
        }
    }
    let wall_s = watch.elapsed_s();

    // The chain must replay to exactly the live store before we credit
    // the bytes saved.
    let rebuilt = Runtime::builder()
        .seed(42)
        .context_capacity(4096)
        .state_path(&state)
        .delta_checkpoints(delta)
        .build();
    assert_eq!(
        rebuilt.manager().encode_snapshot(),
        rt.manager().encode_snapshot(),
        "recovered store diverged at scale {scale} (delta={delta})"
    );

    ModeRun {
        bytes_per_ckpt: bytes_written as f64 / CYCLES as f64,
        frames,
        wall_s,
    }
}

/// Serve-style coda: the same ledger records appended one fsync per
/// record vs group-committed in batches of 8 into the same WAL format.
fn fsync_rates(dir: &Path, records: usize) -> (f64, f64) {
    let spend = |i: usize| LedgerRecord::Spend {
        tenant: format!("t{}", i % 4).into(),
        usd: 0.01,
        tokens: 100,
        calls: 1,
        cache_hits: 0,
        cache_coalesced: 0,
    };
    let mut plain = LedgerWal::open(dir.join("plain.wal"));
    for i in 0..records {
        plain.append(&spend(i)).expect("plain append");
    }
    let mut grouped = LedgerWal::open(dir.join("grouped.wal"));
    let batch: Vec<LedgerRecord> = (0..records).map(spend).collect();
    for chunk in batch.chunks(8) {
        grouped.append_batch(chunk).expect("grouped append");
    }
    (
        plain.stats().fsyncs as f64 / records as f64,
        grouped.stats().fsyncs as f64 / records as f64,
    )
}

fn main() {
    let smoke = std::env::var("CHECKPOINT_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let scales: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };
    let seed = 42;

    let scratch = aida_bench::results_dir().join("checkpoint_scratch");
    if scratch.exists() {
        std::fs::remove_dir_all(&scratch).expect("reset scratch dir");
    }
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let mut bench = BenchResult::new("checkpoint", seed);
    let mut full_rates = Vec::new();
    let mut delta_rates = Vec::new();
    for &scale in scales {
        let full = run_mode(&scratch, scale, false);
        let delta = run_mode(&scratch, scale, true);
        println!(
            "scale {scale:>4}x: full {:>8.0} B/ckpt ({:.3}s wall)  delta {:>7.0} B/ckpt, {} frames ({:.3}s wall)",
            full.bytes_per_ckpt, full.wall_s, delta.bytes_per_ckpt, delta.frames, delta.wall_s,
        );
        bench = bench
            .metric(format!("full_{scale}x/bytes_per_ckpt"), full.bytes_per_ckpt)
            .metric(
                format!("delta_{scale}x/bytes_per_ckpt"),
                delta.bytes_per_ckpt,
            )
            .metric(format!("delta_{scale}x/frames"), delta.frames as f64);
        full_rates.push(full.bytes_per_ckpt);
        delta_rates.push(delta.bytes_per_ckpt);
    }

    let delta_flatness = delta_rates.last().unwrap() / delta_rates[0];
    let full_growth = full_rates.last().unwrap() / full_rates[0];
    let top = scales.last().unwrap();
    println!(
        "scaling {top}x/1x: full-rewrite {full_growth:.1}x more bytes per checkpoint, delta {delta_flatness:.2}x"
    );
    bench = bench
        .metric("full_growth_x", full_growth)
        .metric("delta_flatness_x", delta_flatness);

    let records = if smoke { 32 } else { 256 };
    let (plain_rate, grouped_rate) = fsync_rates(&scratch, records);
    let reduction = plain_rate / grouped_rate;
    println!(
        "ledger fsyncs/append: {plain_rate:.3} per-record vs {grouped_rate:.3} group-committed ({reduction:.1}x fewer)"
    );
    bench = bench
        .metric("wal/fsyncs_per_append_plain", plain_rate)
        .metric("wal/fsyncs_per_append_grouped", grouped_rate)
        .metric("wal/fsync_reduction_x", reduction);

    aida_bench::emit_bench(&bench);
    std::fs::remove_dir_all(&scratch).expect("clean scratch dir");

    // The paper claim, enforced: deltas are flat, full rewrites are not,
    // and group commit collapses the fsync rate.
    if delta_flatness > 2.0 {
        eprintln!("FAIL: delta bytes/checkpoint grew {delta_flatness:.2}x at {top}x scale (> 2x)");
        std::process::exit(1);
    }
    let floor = *top as f64 / 2.0;
    if full_growth < floor {
        eprintln!(
            "FAIL: full-rewrite bytes grew only {full_growth:.1}x at {top}x scale (< {floor:.0}x)"
        );
        std::process::exit(1);
    }
    if reduction < 5.0 {
        eprintln!("FAIL: group commit cut fsyncs only {reduction:.1}x (< 5x)");
        std::process::exit(1);
    }
}
