//! Regenerates Table 1: the Kramabench `legal-easy-3` comparison.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::table1(&seeds), seeds[0]);
    aida_bench::emit_trace("table1", &aida_bench::traces::table1());
}
