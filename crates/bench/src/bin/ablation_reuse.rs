//! Ablation A: ContextManager materialized-Context reuse.
fn main() {
    aida_bench::emit(&aida_eval::ablation_reuse(&aida_eval::experiments::TRIAL_SEEDS));
}
