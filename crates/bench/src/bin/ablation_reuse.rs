//! Ablation A: ContextManager materialized-Context reuse.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::ablation_reuse(&seeds), seeds[0]);
    aida_bench::emit_trace("ablation_reuse", &aida_bench::traces::ablation_reuse());
}
