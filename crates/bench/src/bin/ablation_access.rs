//! Ablation C: full-scan vs. index-narrowed access by lake size.
fn main() {
    aida_bench::emit(&aida_eval::ablation_access(&[10, 50, 100, 200], 1), 1);
    aida_bench::emit_trace("ablation_access", &aida_bench::traces::ablation_access());
}
