//! Serving-layer soak: four tenants hammer one shared runtime.
//!
//! Two tenants analyze the legal lake, two the Enron lake, with
//! overlapping instruction mixes — so Contexts materialized for one
//! tenant satisfy the other tenant on the same lake (cross-tenant
//! reuse). One tenant runs under a deliberately tight dollar quota to
//! demonstrate typed load-shedding while the other tenants keep their
//! latency.
//!
//! The run is deterministic on the virtual clock: same seed → identical
//! `ServiceReport`, byte-identical `results/traces/serve_soak.jsonl`.
//! `SERVE_SOAK_SMOKE=1` shrinks the workload for CI.

use aida_core::{Context, Runtime};
use aida_serve::{open_loop, QueryService, ServeConfig, TenantConfig, TenantLoad};
use aida_synth::{enron, legal};

fn main() {
    let smoke = std::env::var("SERVE_SOAK_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let seed = 1;
    let queries_per_tenant = if smoke { 3 } else { 25 };

    let rt = Runtime::builder()
        .seed(seed)
        .context_capacity(256)
        .tracing(true)
        .build();
    let legal_workload = legal::generate(seed);
    let enron_workload = enron::generate(seed);
    let legal_ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let enron_ctx = Context::builder("enron", enron_workload.lake.clone())
        .description(enron_workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let mut svc = QueryService::new(
        rt,
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
        },
    );
    svc.register_context("legal", legal_ctx);
    svc.register_context("enron", enron_ctx);
    svc.register_tenant("acme", TenantConfig::weighted(2));
    svc.register_tenant("bolt", TenantConfig::default());
    svc.register_tenant("cora", TenantConfig::default());
    // The quota guinea pig: enough budget for a handful of queries, then
    // every further request is shed with `budget_exhausted`.
    svc.register_tenant("dara", TenantConfig::default().dollars(0.05));

    let legal_mix = [
        "find the number of identity theft reports in 2001",
        "find the number of identity theft reports in 2024",
        "find the number of identity theft reports in 2013",
    ];
    let enron_mix = [
        "find emails with firsthand discussion of the Raptor transaction",
        "find emails with firsthand discussion of the Chewco transaction",
        "find emails with firsthand discussion of the LJM transaction",
    ];
    let loads = vec![
        TenantLoad::new("acme", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0),
        TenantLoad::new("bolt", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(30.0),
        TenantLoad::new("cora", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(60.0),
        TenantLoad::new("dara", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0)
            .offset(15.0),
    ];

    let requests = open_loop(seed, &loads);
    let isolated = svc.isolated_cost(&requests);
    let mut report = svc.run(requests);
    report.set_isolated_baseline(isolated);

    println!("{}", report.render());
    aida_bench::write_trace_jsonl("serve_soak", &report.to_jsonl());
    aida_bench::emit_text("serve_soak", &report.render());
}
