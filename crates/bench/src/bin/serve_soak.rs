//! Serving-layer soak: four tenants hammer one shared runtime.
//!
//! Two tenants analyze the legal lake, two the Enron lake, with
//! overlapping instruction mixes — so Contexts materialized for one
//! tenant satisfy the other tenant on the same lake (cross-tenant
//! reuse). One tenant runs under a deliberately tight dollar quota to
//! demonstrate typed load-shedding while the other tenants keep their
//! latency.
//!
//! The soak now runs twice on the same seed and workload: once with the
//! semantic call cache disabled (the baseline) and once with a shared
//! cache across all tenants. Repeated instructions across tenants replay
//! out of the cache at zero marginal spend, so the cache-on run must be
//! strictly cheaper; the full (non-smoke) soak asserts at least a 20%
//! dollar reduction. Numbers land in `results/BENCH_semcache.json`.
//!
//! The run is deterministic on the virtual clock: same seed → identical
//! `ServiceReport`, byte-identical `results/traces/serve_soak.jsonl`.
//! `SERVE_SOAK_SMOKE=1` shrinks the workload for CI.

use aida_bench::SemcacheBench;
use aida_core::{Context, Runtime};
use aida_obs::Summary;
use aida_serve::{
    open_loop, QueryRequest, QueryService, ServeConfig, ServiceReport, TenantConfig, TenantLoad,
};
use aida_synth::{enron, legal};

fn build_service(seed: u64, cache: bool) -> QueryService {
    let mut builder = Runtime::builder()
        .seed(seed)
        .context_capacity(256)
        .tracing(true);
    if cache {
        builder = builder.semantic_cache(4096);
    }
    let rt = builder.build();
    let legal_workload = legal::generate(seed);
    let enron_workload = enron::generate(seed);
    let legal_ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let enron_ctx = Context::builder("enron", enron_workload.lake.clone())
        .description(enron_workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let mut svc = QueryService::new(
        rt,
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
        },
    );
    svc.register_context("legal", legal_ctx);
    svc.register_context("enron", enron_ctx);
    svc.register_tenant("acme", TenantConfig::weighted(2));
    svc.register_tenant("bolt", TenantConfig::default());
    svc.register_tenant("cora", TenantConfig::default());
    // The quota guinea pig: enough budget for a handful of queries, then
    // every further request is shed with `budget_exhausted`.
    svc.register_tenant("dara", TenantConfig::default().dollars(0.05));
    svc
}

fn latency_summary(report: &ServiceReport) -> Summary {
    let mut summary = Summary::default();
    for c in &report.completions {
        summary.record(c.latency_s());
    }
    summary
}

fn main() {
    let smoke = std::env::var("SERVE_SOAK_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let seed = 1;
    let queries_per_tenant = if smoke { 3 } else { 25 };

    let legal_mix = [
        "find the number of identity theft reports in 2001",
        "find the number of identity theft reports in 2024",
        "find the number of identity theft reports in 2013",
    ];
    let enron_mix = [
        "find emails with firsthand discussion of the Raptor transaction",
        "find emails with firsthand discussion of the Chewco transaction",
        "find emails with firsthand discussion of the LJM transaction",
    ];
    let loads = vec![
        TenantLoad::new("acme", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0),
        TenantLoad::new("bolt", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(30.0),
        TenantLoad::new("cora", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(60.0),
        TenantLoad::new("dara", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0)
            .offset(15.0),
    ];
    let requests: Vec<QueryRequest> = open_loop(seed, &loads);

    // Baseline: the same workload through the same service, cache off.
    let mut baseline_svc = build_service(seed, false);
    let baseline = baseline_svc.run(requests.clone());

    // The headline run: shared semantic cache across all four tenants.
    let mut svc = build_service(seed, true);
    let isolated = svc.isolated_cost(&requests);
    let mut report = svc.run(requests);
    report.set_isolated_baseline(isolated);

    println!("{}", report.render());
    aida_bench::write_trace_jsonl("serve_soak", &report.to_jsonl());
    aida_bench::emit_text("serve_soak", &report.render());

    let cold_latency = latency_summary(&baseline);
    let warm_latency = latency_summary(&report);
    let bench = SemcacheBench {
        source: "serve_soak",
        cold_usd: baseline.total_cost_usd,
        warm_usd: report.total_cost_usd,
        hit_rate: report.cache_hit_rate(),
        p50_cold_s: cold_latency.p50(),
        p95_cold_s: cold_latency.p95(),
        p50_warm_s: warm_latency.p50(),
        p95_warm_s: warm_latency.p95(),
    };
    aida_bench::emit_semcache_bench(&bench);

    // The cache must pay for itself: strictly cheaper on every soak, and
    // at least 20% cheaper on the full workload.
    if report.total_cost_usd >= baseline.total_cost_usd {
        eprintln!(
            "FAIL: cache-on soak cost ${:.4} >= cache-off ${:.4}",
            report.total_cost_usd, baseline.total_cost_usd
        );
        std::process::exit(1);
    }
    if !smoke && bench.reduction_pct() < 20.0 {
        eprintln!(
            "FAIL: cache-on soak saved only {:.1}% (< 20%)",
            bench.reduction_pct()
        );
        std::process::exit(1);
    }
}
