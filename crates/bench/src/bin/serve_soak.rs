//! Serving-layer soak: four tenants hammer one shared runtime.
//!
//! Two tenants analyze the legal lake, two the Enron lake, with
//! overlapping instruction mixes — so Contexts materialized for one
//! tenant satisfy the other tenant on the same lake (cross-tenant
//! reuse). One tenant runs under a deliberately tight dollar quota to
//! demonstrate typed load-shedding while the other tenants keep their
//! latency.
//!
//! The soak now runs twice on the same seed and workload: once with the
//! semantic call cache disabled (the baseline) and once with a shared
//! cache across all tenants. Repeated instructions across tenants replay
//! out of the cache at zero marginal spend, so the cache-on run must be
//! strictly cheaper; the full (non-smoke) soak asserts at least a 20%
//! dollar reduction. Numbers land in `results/BENCH_semcache.json`.
//!
//! The run is deterministic on the virtual clock: same seed → identical
//! `ServiceReport`, byte-identical `results/traces/serve_soak.jsonl`.
//! `SERVE_SOAK_SMOKE=1` shrinks the workload for CI.

use aida_bench::SemcacheBench;
use aida_core::{Context, Runtime};
use aida_obs::Summary;
use aida_serve::{
    open_loop, LedgerWal, QueryRequest, QueryService, ServeConfig, ServiceReport, TenantConfig,
    TenantLoad,
};
use aida_synth::{enron, legal};
use std::path::Path;

fn build_service(seed: u64, cache: bool, durable: Option<&Path>) -> QueryService {
    let mut builder = Runtime::builder()
        .seed(seed)
        .context_capacity(256)
        .tracing(true);
    if cache {
        builder = builder.semantic_cache(4096);
    }
    if let Some(dir) = durable {
        builder = builder
            .cache_path(dir.join("semcache.bin"))
            .state_path(dir.join("state.bin"))
            .checkpoint_interval(16);
    }
    let rt = builder.build();
    let legal_workload = legal::generate(seed);
    let enron_workload = enron::generate(seed);
    let legal_ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let enron_ctx = Context::builder("enron", enron_workload.lake.clone())
        .description(enron_workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let mut svc = QueryService::new(
        rt,
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
        },
    );
    svc.register_context("legal", legal_ctx);
    svc.register_context("enron", enron_ctx);
    svc.register_tenant("acme", TenantConfig::weighted(2));
    svc.register_tenant("bolt", TenantConfig::default());
    svc.register_tenant("cora", TenantConfig::default());
    // The quota guinea pig: enough budget for a handful of queries, then
    // every further request is shed with `budget_exhausted`.
    svc.register_tenant("dara", TenantConfig::default().dollars(0.05));
    if let Some(dir) = durable {
        svc.attach_wal(LedgerWal::open(dir.join("ledger.wal")))
            .expect("tenant-ledger WAL recovery");
    }
    svc
}

fn spend_bits(svc: &QueryService) -> Vec<(String, u64)> {
    svc.tenants()
        .spends()
        .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
        .collect()
}

fn latency_summary(report: &ServiceReport) -> Summary {
    let mut summary = Summary::default();
    for c in &report.completions {
        summary.record(c.latency_s());
    }
    summary
}

fn main() {
    let smoke = std::env::var("SERVE_SOAK_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let seed = 1;
    let queries_per_tenant = if smoke { 3 } else { 25 };

    let legal_mix = [
        "find the number of identity theft reports in 2001",
        "find the number of identity theft reports in 2024",
        "find the number of identity theft reports in 2013",
    ];
    let enron_mix = [
        "find emails with firsthand discussion of the Raptor transaction",
        "find emails with firsthand discussion of the Chewco transaction",
        "find emails with firsthand discussion of the LJM transaction",
    ];
    let loads = vec![
        TenantLoad::new("acme", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0),
        TenantLoad::new("bolt", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(30.0),
        TenantLoad::new("cora", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(60.0),
        TenantLoad::new("dara", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0)
            .offset(15.0),
    ];
    let requests: Vec<QueryRequest> = open_loop(seed, &loads);

    // Baseline: the same workload through the same service, cache off.
    let mut baseline_svc = build_service(seed, false, None);
    let baseline = baseline_svc.run(requests.clone());

    // The headline run: shared semantic cache across all four tenants.
    let mut svc = build_service(seed, true, None);
    let isolated = svc.isolated_cost(&requests);
    let mut report = svc.run(requests.clone());
    report.set_isolated_baseline(isolated);

    println!("{}", report.render());
    aida_bench::write_trace_jsonl("serve_soak", &report.to_jsonl());
    aida_bench::emit_text("serve_soak", &report.render());

    let cold_latency = latency_summary(&baseline);
    let warm_latency = latency_summary(&report);
    let bench = SemcacheBench {
        source: "serve_soak",
        cold_usd: baseline.total_cost_usd,
        warm_usd: report.total_cost_usd,
        hit_rate: report.cache_hit_rate(),
        p50_cold_s: cold_latency.p50(),
        p95_cold_s: cold_latency.p95(),
        p50_warm_s: warm_latency.p50(),
        p95_warm_s: warm_latency.p95(),
    };
    aida_bench::emit_semcache_bench(&bench);

    // The cache must pay for itself: strictly cheaper on every soak, and
    // at least 20% cheaper on the full workload.
    if report.total_cost_usd >= baseline.total_cost_usd {
        eprintln!(
            "FAIL: cache-on soak cost ${:.4} >= cache-off ${:.4}",
            report.total_cost_usd, baseline.total_cost_usd
        );
        std::process::exit(1);
    }
    if !smoke && bench.reduction_pct() < 20.0 {
        eprintln!(
            "FAIL: cache-on soak saved only {:.1}% (< 20%)",
            bench.reduction_pct()
        );
        std::process::exit(1);
    }

    // ---- restart phase: the durable-state layer under a process death.
    //
    // A previous soak may have been killed mid-write (CI's kill-9
    // smoke): recovery must swallow whatever partial files it left —
    // a torn WAL tail is truncated, a torn snapshot temp is ignored —
    // then the phase resets to a clean cold run.
    let durable_dir = aida_bench::results_dir().join("serve_soak_durable");
    if durable_dir.exists() {
        let probe = build_service(seed, true, Some(&durable_dir));
        let recovery = probe.wal_recovery().expect("wal attached");
        println!(
            "restart probe: recovered {} contexts, replayed {} ledger records (dropped tail: {})",
            probe.runtime().manager().len(),
            recovery.replayed,
            recovery.dropped_tail
        );
        drop(probe);
        std::fs::remove_dir_all(&durable_dir).expect("reset durable dir");
    }
    std::fs::create_dir_all(&durable_dir).expect("create durable dir");

    // Cold durable run: checkpoint every 16 agentic ops + final save.
    let mut durable_svc = build_service(seed, true, Some(&durable_dir));
    let durable_report = durable_svc.run(requests);
    let cold_spends = spend_bits(&durable_svc);
    durable_svc
        .runtime()
        .save_state()
        .expect("state checkpoint");
    durable_svc.runtime().save_cache().expect("cache spill");
    drop(durable_svc); // the "crash": nothing survives but the files

    // Warm restart: per-tenant dollars must replay bit-identically and
    // the restore itself must spend nothing.
    let warm_svc = build_service(seed, true, Some(&durable_dir));
    let recovery = warm_svc.wal_recovery().expect("wal attached");
    let restore_cost = warm_svc.runtime().cost();
    println!(
        "restart: replayed {} ledger records, restored {} contexts, re-materialization spend ${restore_cost:.4}",
        recovery.replayed,
        warm_svc.runtime().manager().len(),
    );
    if durable_report.wal_appends == 0 {
        eprintln!("FAIL: durable run appended no ledger records");
        std::process::exit(1);
    }
    if spend_bits(&warm_svc) != cold_spends {
        eprintln!("FAIL: per-tenant dollars diverged across the restart");
        std::process::exit(1);
    }
    if recovery.replayed + recovery.skipped == 0 && !recovery.snapshot_loaded {
        eprintln!("FAIL: restart recovered nothing from the ledger WAL");
        std::process::exit(1);
    }
    if warm_svc.runtime().manager().is_empty() {
        eprintln!("FAIL: restart restored no Contexts from the snapshot");
        std::process::exit(1);
    }
    if restore_cost != 0.0 {
        eprintln!("FAIL: restart spent ${restore_cost:.6} re-materializing state");
        std::process::exit(1);
    }
}
