//! Serving-layer soak: four tenants hammer one shared runtime.
//!
//! Two tenants analyze the legal lake, two the Enron lake, with
//! overlapping instruction mixes — so Contexts materialized for one
//! tenant satisfy the other tenant on the same lake (cross-tenant
//! reuse). One tenant runs under a deliberately tight dollar quota to
//! demonstrate typed load-shedding while the other tenants keep their
//! latency.
//!
//! The soak now runs twice on the same seed and workload: once with the
//! semantic call cache disabled (the baseline) and once with a shared
//! cache across all tenants. Repeated instructions across tenants replay
//! out of the cache at zero marginal spend, so the cache-on run must be
//! strictly cheaper; the full (non-smoke) soak asserts at least a 20%
//! dollar reduction. Numbers land in `results/BENCH_semcache.json`.
//!
//! Every tenant declares an SLO (p99 latency target, dollar-per-query
//! ceiling). The service's health layer windows latency/cost/queue-wait
//! per tenant and evaluates multi-window burn rates; the verdicts land
//! in the rendered report, in `results/health.jsonl`, and in the
//! canonical `results/BENCH_serve_soak.json`.
//!
//! The run is deterministic on the virtual clock: same seed → identical
//! `ServiceReport`, byte-identical `results/traces/serve_soak.jsonl` and
//! `results/health.jsonl`. `SERVE_SOAK_SMOKE=1` shrinks the workload for
//! CI. `SERVE_SOAK_CRASH=1` additionally runs a crash-forensics probe: a
//! `FailPlan` tears a ledger-WAL append mid-record, which must leave a
//! parseable flight-recorder dump at `results/traces/flight_<seed>.jsonl`.
//! Recorder overhead (tracing on vs off, wall clock) is printed so
//! EXPERIMENTS.md can cite a measured number.
//!
//! The durable phase runs twice: once with one fsync per ledger record
//! (the baseline) and once with group commit + a segmented WAL. The
//! full soak demands at least a 5x fsyncs/query reduction at
//! bit-identical per-tenant dollars, and the grouped restart must
//! replay `snapshot → sealed segments → tail`.

use aida_bench::{BenchResult, SemcacheBench};
use aida_core::{Context, Runtime};
use aida_llm::{CrashPoint, FailPlan, WallStopwatch};
use aida_obs::{SloPolicy, Summary};
use aida_serve::{
    open_loop, AutoscaleConfig, ClientConfig, LedgerWal, LiveSource, QueryRequest, QueryService,
    RejectReason, ServeConfig, ServiceReport, TenantConfig, TenantLoad,
};
use aida_synth::{enron, legal};
use std::path::Path;
use std::sync::Arc;

/// Worker-pool shape: `(initial_workers, autoscaler)`. `None` keeps the
/// default fixed pool.
type PoolSetup = Option<(usize, Option<AutoscaleConfig>)>;

fn build_service(
    seed: u64,
    cache: bool,
    durable: Option<&Path>,
    tracing: bool,
    crash: Option<CrashPoint>,
    group_commit: usize,
    pool: PoolSetup,
) -> QueryService {
    let mut builder = Runtime::builder()
        .seed(seed)
        .context_capacity(256)
        .tracing(tracing);
    if cache {
        builder = builder.semantic_cache(4096);
    }
    if let Some(dir) = durable {
        builder = builder
            .cache_path(dir.join("semcache.bin"))
            .state_path(dir.join("state.bin"))
            .checkpoint_interval(16);
    }
    if crash.is_some() {
        builder =
            builder.flight_dump(aida_bench::traces_dir().join(format!("flight_{seed}.jsonl")));
    }
    let rt = builder.build();
    let legal_workload = legal::generate(seed);
    let enron_workload = enron::generate(seed);
    let legal_ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let enron_ctx = Context::builder("enron", enron_workload.lake.clone())
        .description(enron_workload.description.clone())
        .with_vector_index()
        .build(&rt);

    let recorder = rt.recorder().clone();
    // Queries arrive minutes apart, so burn rates are judged over a
    // 15-minute fast window and a 1-hour slow window; the 64×60s health
    // ring spans both.
    let mut config = ServeConfig::default()
        .health_window(60.0, 64)
        .slo_policy(SloPolicy {
            fast_window_s: 900.0,
            slow_window_s: 3600.0,
            ..SloPolicy::default()
        });
    if group_commit > 1 {
        config = config.group_commit(group_commit);
    }
    if let Some((workers, autoscale)) = pool {
        config.workers = workers;
        if let Some(ac) = autoscale {
            config = config.autoscale(ac);
        }
    }
    let mut svc = QueryService::new(rt, config);
    svc.register_context("legal", legal_ctx);
    svc.register_context("enron", enron_ctx);
    // Every tenant declares an SLO; the service reports burn rates but
    // never sheds on them.
    svc.register_tenant(
        "acme",
        TenantConfig::weighted(2)
            .p99_latency(1200.0)
            .usd_per_query(1.0),
    );
    svc.register_tenant(
        "bolt",
        TenantConfig::default()
            .p99_latency(1200.0)
            .usd_per_query(1.0),
    );
    svc.register_tenant(
        "cora",
        TenantConfig::default()
            .p99_latency(1200.0)
            .usd_per_query(1.0),
    );
    // The quota guinea pig: enough budget for a handful of queries, then
    // every further request is shed with `budget_exhausted`.
    svc.register_tenant(
        "dara",
        TenantConfig::default()
            .dollars(0.05)
            .p99_latency(600.0)
            .usd_per_query(0.01),
    );
    if let Some(dir) = durable {
        let mut wal = LedgerWal::open(dir.join("ledger.wal"));
        if group_commit > 1 {
            // The group-commit phase exercises the full log-structured
            // stack: batched flushes land in a tail that seals into
            // immutable segments, and the restart replays
            // snapshot → sealed segments → tail.
            wal = wal.segment_records(32);
        }
        if let Some(point) = crash {
            // Let ~10 queries land first so the flight ring has a real
            // event tail to dump when the append tears.
            wal = wal.with_fail_plan(Arc::new(FailPlan::nth(point, 20).with_recorder(recorder)));
        }
        svc.attach_wal(wal).expect("tenant-ledger WAL recovery");
    }
    svc
}

fn spend_bits(svc: &QueryService) -> Vec<(String, u64)> {
    svc.tenants()
        .spends()
        .map(|(t, s)| (t.to_string(), s.usd.to_bits()))
        .collect()
}

fn latency_summary(report: &ServiceReport) -> Summary {
    let mut summary = Summary::default();
    for c in &report.completions {
        summary.record(c.latency_s());
    }
    summary
}

/// The canonical machine-readable headline: service-wide throughput and
/// hit rate plus each tenant's windowed latency percentiles and SLO
/// verdict (0 = ok, 1 = burning).
fn serve_soak_bench(seed: u64, report: &ServiceReport) -> BenchResult {
    let throughput = if report.makespan_s > 0.0 {
        report.completions.len() as f64 / report.makespan_s
    } else {
        0.0
    };
    let mut out = BenchResult::new("serve_soak", seed)
        .metric("queries", report.completions.len() as f64)
        .metric("throughput_qps", throughput)
        .metric("hit_rate", report.cache_hit_rate())
        .metric("total_cost_usd", report.total_cost_usd)
        .metric("slo_alerts", report.slo_alerts as f64);
    for h in &report.health {
        out = out
            .metric(format!("{}/p50_s", h.tenant), h.latency.p50)
            .metric(format!("{}/p95_s", h.tenant), h.latency.p95)
            .metric(format!("{}/p99_s", h.tenant), h.latency.p99)
            .metric(format!("{}/usd_per_query", h.tenant), h.cost.mean)
            .metric(
                format!("{}/slo_breach", h.tenant),
                if h.slo.alerting { 1.0 } else { 0.0 },
            );
    }
    out
}

/// `SERVE_SOAK_CRASH=1`: tear a WAL append mid-record and prove the
/// flight recorder leaves a parseable forensic dump behind.
fn crash_probe(seed: u64, requests: &[QueryRequest]) {
    let dump = aida_bench::traces_dir().join(format!("flight_{seed}.jsonl"));
    let _ = std::fs::remove_file(&dump);
    let crash_dir = aida_bench::results_dir().join("serve_soak_crash");
    let _ = std::fs::remove_dir_all(&crash_dir);
    std::fs::create_dir_all(&crash_dir).expect("create crash dir");

    let mut svc = build_service(
        seed,
        true,
        Some(&crash_dir),
        true,
        Some(CrashPoint::WalTornAppend),
        0,
        None,
    );
    let report = svc.run(requests.to_vec());
    if !report.wal_failed {
        eprintln!("FAIL: injected torn append never fired");
        std::process::exit(1);
    }
    println!(
        "crash probe: {} completions before the torn WAL append halted admission",
        report.completions.len(),
    );
    let text = match std::fs::read_to_string(&dump) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: no flight dump at {} ({e})", dump.display());
            std::process::exit(1);
        }
    };
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    // A later SLO-alert autodump may overwrite the crash-point dump (same
    // path, same ring), so accept any reason but demand the crash record
    // itself survived in the event tail.
    if !header.starts_with("{\"flight\":\"") {
        eprintln!("FAIL: flight dump header malformed: {header}");
        std::process::exit(1);
    }
    if !text.contains("\"kind\":\"crash_point\"") {
        eprintln!("FAIL: flight dump lost the crash_point record");
        std::process::exit(1);
    }
    let events = lines
        .filter(|l| l.starts_with('{') && l.ends_with('}'))
        .count();
    if events < 64 {
        eprintln!("FAIL: flight dump carries only {events} events (< 64)");
        std::process::exit(1);
    }
    println!(
        "crash probe: flight dump at {} ({events} events)",
        dump.display()
    );
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// One closed-loop client per connection. Tenants cycle
/// acme/bolt/cora, with every 25th client on quota-capped dara so the
/// fleet exercises terminal rejections too. A dense head ramps load
/// onto the pool; the sparse tail lets the controller scale back down
/// while traffic still flows. Every 10th client asks its question
/// twice, so its second submission rides the plan-hash path.
fn live_fleet(clients: usize, legal_mix: &[&str; 3], enron_mix: &[&str; 3]) -> Vec<ClientConfig> {
    let head = (clients * 4) / 5;
    (0..clients)
        .map(|i| {
            let (tenant, context, mix) = if i % 25 == 24 {
                ("dara", "enron", enron_mix)
            } else {
                match i % 3 {
                    0 => ("acme", "legal", legal_mix),
                    1 => ("bolt", "legal", legal_mix),
                    _ => ("cora", "enron", enron_mix),
                }
            };
            let start_s = if i < head {
                i as f64 * 0.5
            } else {
                head as f64 * 0.5 + (i - head) as f64 * 30.0
            };
            ClientConfig::new(tenant, context)
                .instructions([mix[i % 3]])
                .queries(if i % 10 == 9 { 2 } else { 1 })
                .think(45.0)
                .retries(3)
                .backoff(30.0)
                .start(start_s)
        })
        .collect()
}

/// `SERVE_SOAK_LIVE=1`: the live front door. A closed-loop fleet
/// connects over the deterministic simulated transport (one connection
/// per client), the listener decodes length-prefixed frames into the
/// admission queue, and the latency-targeted autoscaler resizes the
/// worker pool. The phase serves the same fleet twice on one seed —
/// every report surface must be byte-identical — then once more on a
/// fixed max-size pool, which the autoscaler must beat on
/// worker-seconds while holding the p99 target.
fn live_phase(seed: u64, smoke: bool, legal_mix: &[&str; 3], enron_mix: &[&str; 3]) {
    let clients = if smoke { 150 } else { 1200 };
    // Tight enough that the cold dense head breaches it (queue waits
    // behind the first uncached queries), loose enough that the warm
    // steady state clears it with room — so one run demonstrates both
    // scale directions.
    let target_p99_s = 60.0;
    let autoscale = AutoscaleConfig::new(1, 8, target_p99_s)
        .evaluate_every(30.0)
        .window(240.0)
        .cooldown(120.0);
    let fleet = live_fleet(clients, legal_mix, enron_mix);
    let serve_live = |pool: PoolSetup| {
        let mut svc = build_service(seed, true, None, true, None, 0, pool);
        let mut source = LiveSource::new(seed, fleet.clone());
        let report = svc.serve(&mut source);
        (report, source.outcomes())
    };

    let (report, outcomes) = serve_live(Some((2, Some(autoscale.clone()))));
    let (replay, _) = serve_live(Some((2, Some(autoscale))));
    if report.to_jsonl() != replay.to_jsonl()
        || report.render() != replay.render()
        || report.health_jsonl() != replay.health_jsonl()
    {
        eprintln!("FAIL: same-seed live runs diverged");
        std::process::exit(1);
    }
    println!("{}", report.render());

    let net = report.net.clone().expect("live run carries a net report");
    if (net.stats.conns_opened as usize) < clients {
        eprintln!(
            "FAIL: only {} connections for {clients} clients",
            net.stats.conns_opened
        );
        std::process::exit(1);
    }
    if net.stats.wire_error_total() != 0 {
        eprintln!(
            "FAIL: {} wire errors on a clean fleet",
            net.stats.wire_error_total()
        );
        std::process::exit(1);
    }
    if net.stats.plan_hash_hits == 0 {
        eprintln!("FAIL: repeat submissions never rode the plan-hash path");
        std::process::exit(1);
    }
    if report.scale_events.is_empty() {
        eprintln!("FAIL: the autoscaler never moved under the ramp");
        std::process::exit(1);
    }
    if report.scale_ups() == 0 || report.scale_downs() == 0 {
        eprintln!(
            "FAIL: ramp must exercise both directions, saw {} ups / {} downs",
            report.scale_ups(),
            report.scale_downs()
        );
        std::process::exit(1);
    }
    // The cold burst breaches the target by design; the SLO claim is
    // that the controller converges, so judge p99 over the completions
    // in the second half of the run.
    let latency = latency_summary(&report);
    let mut steady = Summary::default();
    for c in report
        .completions
        .iter()
        .filter(|c| c.end_s * 2.0 >= report.makespan_s)
    {
        steady.record(c.latency_s());
    }
    if steady.p99() > target_p99_s {
        eprintln!(
            "FAIL: converged p99 {:.1}s blew the {target_p99_s:.0}s target",
            steady.p99()
        );
        std::process::exit(1);
    }
    let completed = outcomes.iter().filter(|o| o.kind() == "completed").count();
    if completed * 10 < clients * 8 {
        eprintln!("FAIL: only {completed}/{clients} clients completed (< 80%)");
        std::process::exit(1);
    }

    // Same fleet on a fixed pool at the autoscaler's max bound: the
    // controller must hold the target with fewer worker-seconds.
    let (fixed, _) = serve_live(Some((8, None)));
    if report.worker_seconds >= fixed.worker_seconds {
        eprintln!(
            "FAIL: autoscaler spent {:.1} worker-seconds vs {:.1} fixed",
            report.worker_seconds, fixed.worker_seconds
        );
        std::process::exit(1);
    }
    let saved_pct = 100.0 * (1.0 - report.worker_seconds / fixed.worker_seconds);
    println!(
        "live front door: {} conns (peak {}), {} queries, converged p99 {:.1}s vs target \
         {target_p99_s:.0}s, {} ups / {} downs, {:.0} worker-seconds vs {:.0} fixed \
         ({saved_pct:.1}% saved)",
        net.stats.conns_opened,
        net.stats.conns_peak,
        report.completions.len(),
        steady.p99(),
        report.scale_ups(),
        report.scale_downs(),
        report.worker_seconds,
        fixed.worker_seconds,
    );

    aida_bench::write_trace_jsonl("serve_live", &report.to_jsonl());
    let health_path = aida_bench::results_dir().join("health_live.jsonl");
    match std::fs::write(&health_path, report.health_jsonl()) {
        Ok(()) => println!("(live health saved to {})", health_path.display()),
        Err(err) => eprintln!("warning: could not save {}: {err}", health_path.display()),
    }
    aida_bench::emit_bench(
        &BenchResult::new("serve_live", seed)
            .metric("connections", net.stats.conns_opened as f64)
            .metric("conns_peak", net.stats.conns_peak as f64)
            .metric("clients_completed", net.clients_completed as f64)
            .metric("clients_abandoned", net.clients_abandoned as f64)
            .metric("client_retries", net.client_retries as f64)
            .metric("queries", report.completions.len() as f64)
            .metric("p99_s", latency.p99())
            .metric("converged_p99_s", steady.p99())
            .metric("target_p99_s", target_p99_s)
            .metric("scale_ups", report.scale_ups() as f64)
            .metric("scale_downs", report.scale_downs() as f64)
            .metric("worker_seconds_autoscaled", report.worker_seconds)
            .metric("worker_seconds_fixed", fixed.worker_seconds)
            .metric("worker_seconds_saved_pct", saved_pct)
            .metric("plan_hash_hits", net.stats.plan_hash_hits as f64)
            .metric("wire_errors", net.stats.wire_error_total() as f64),
    );
}

/// Static cost-bound gate under serving load. A tiny-quota tenant
/// submits a Pyrite plan whose static worst case (~$0.84 on Flagship
/// for 40 looped `read_file` calls) dwarfs its remaining budget,
/// interleaved with affordable traffic from a funded tenant. The gate
/// must shed the plan *before dispatch* — exactly $0.00 attributed to
/// the gated tenant — while every affordable request completes. Runs in
/// smoke mode too: the phase is three requests on one worker.
fn bounds_gate_phase(seed: u64) {
    const EXPENSIVE_PLAN: &str =
        "total = 0\nfor i in range(40):\n    total = total + len(read_file('a.csv'))\ntotal";
    // A plan the analyzer bounds well under the gated tenant's budget:
    // one tool call, no loops.
    const CHEAP_PLAN: &str = "len(read_file('a.csv'))";

    let rt = Runtime::builder().seed(seed).tracing(true).build();
    let legal_workload = legal::generate(seed);
    let ctx = Context::builder("legal", legal_workload.lake.clone())
        .description(legal_workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let mut svc = QueryService::new(
        rt,
        ServeConfig::with_workers(1).cost_bounds(aida_llm::models::ModelId::Flagship),
    );
    svc.register_context("legal", ctx);
    // A generous quota: acme's plans are bound-checked too, and all of
    // them fit — the gate must wave them through.
    svc.register_tenant(
        "acme",
        TenantConfig::default()
            .dollars(50.0)
            .p99_latency(1200.0)
            .usd_per_query(1.0),
    );
    // Budget far below the loop's ~$0.84 static worst case.
    svc.register_tenant("eve", TenantConfig::default().dollars(0.05));

    let mut requests = Vec::new();
    for (i, (tenant, instruction)) in [
        ("acme", CHEAP_PLAN),
        ("eve", EXPENSIVE_PLAN),
        ("acme", "find the number of identity theft reports in 2001"),
    ]
    .into_iter()
    .enumerate()
    {
        let mut r = QueryRequest::new(tenant, "legal", instruction);
        r.seq = i as u64;
        r.arrival_s = i as f64 * 60.0;
        r.submitted_s = r.arrival_s;
        requests.push(r);
    }
    let report = svc.run(requests);

    let gated: Vec<_> = report
        .sheds
        .iter()
        .filter(|s| matches!(s.reason, RejectReason::CostBoundExceeded { .. }))
        .collect();
    if gated.is_empty() {
        eprintln!("FAIL: bounds gate never shed the over-budget plan");
        std::process::exit(1);
    }
    let eve_spend = svc.tenants().spend(&"eve".into()).usd;
    let Some(RejectReason::CostBoundExceeded {
        usd_max,
        remaining_usd,
    }) = gated.iter().map(|s| &s.reason).next()
    else {
        unreachable!("gated sheds are CostBoundExceeded by construction");
    };
    // Shed strictly before dispatch: the rejected plan never touched a
    // worker or the ledger, so the gated tenant's spend is exactly zero.
    if *usd_max <= *remaining_usd {
        eprintln!("FAIL: shed with usd_max {usd_max} <= remaining {remaining_usd}");
        std::process::exit(1);
    }
    if eve_spend != 0.0 {
        eprintln!("FAIL: gated tenant was attributed ${eve_spend:.6}, expected exactly $0.00");
        std::process::exit(1);
    }
    if !report.bounds_gated || report.bounds_checked < 2 || report.bounds_rejects() < 1 {
        eprintln!(
            "FAIL: gate surfaces wrong (gated={}, checked={}, rejects={})",
            report.bounds_gated,
            report.bounds_checked,
            report.bounds_rejects()
        );
        std::process::exit(1);
    }
    // Affordable traffic must be untouched: eve's cheap plan and acme's
    // natural-language query both complete.
    if report.completions.len() != 2 {
        eprintln!(
            "FAIL: expected 2 completions alongside the shed, saw {}",
            report.completions.len()
        );
        std::process::exit(1);
    }
    let text = report.render();
    if !text.contains("cost bounds:") || !text.contains("cost_bound_exceeded") {
        eprintln!("FAIL: report render is missing the bounds lines:\n{text}");
        std::process::exit(1);
    }
    if !report
        .to_jsonl()
        .contains(r#""reason":"cost_bound_exceeded""#)
    {
        eprintln!("FAIL: jsonl is missing the cost_bound_exceeded shed");
        std::process::exit(1);
    }
    println!(
        "bounds gate: {} plans checked, shed the ${usd_max:.4}-worst-case plan against \
         ${remaining_usd:.4} remaining at $0.00 attributed (tenant spend ${eve_spend:.4})",
        report.bounds_checked,
    );
}

fn main() {
    let env_on = |k: &str| std::env::var(k).is_ok_and(|v| v != "0" && !v.is_empty());
    let smoke = env_on("SERVE_SOAK_SMOKE");
    let seed = 1;
    let queries_per_tenant = if smoke { 3 } else { 25 };

    let legal_mix = [
        "find the number of identity theft reports in 2001",
        "find the number of identity theft reports in 2024",
        "find the number of identity theft reports in 2013",
    ];
    let enron_mix = [
        "find emails with firsthand discussion of the Raptor transaction",
        "find emails with firsthand discussion of the Chewco transaction",
        "find emails with firsthand discussion of the LJM transaction",
    ];
    let loads = vec![
        TenantLoad::new("acme", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0),
        TenantLoad::new("bolt", "legal")
            .instructions(legal_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(30.0),
        TenantLoad::new("cora", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(150.0)
            .offset(60.0),
        TenantLoad::new("dara", "enron")
            .instructions(enron_mix)
            .queries(queries_per_tenant)
            .mean_interarrival(120.0)
            .offset(15.0),
    ];
    let requests: Vec<QueryRequest> = open_loop(seed, &loads);

    // Baseline: the same workload through the same service, cache off.
    let mut baseline_svc = build_service(seed, false, None, true, None, 0, None);
    let baseline = baseline_svc.run(requests.clone());

    // Recorder-overhead reference: the headline workload with tracing
    // off. Modes alternate and each keeps its best of two samples, so
    // one background hiccup can't swing the comparison.
    let sample = |tracing: bool| {
        let mut svc = build_service(seed, true, None, tracing, None, 0, None);
        let watch = WallStopwatch::start();
        let report = svc.run(requests.clone());
        (report, watch.elapsed_s())
    };
    let (untraced, untraced_wall_a) = sample(false);
    let (mut report, traced_wall_a) = sample(true);
    let (_, untraced_wall_b) = sample(false);
    let (_, traced_wall_b) = sample(true);
    let untraced_wall_s = untraced_wall_a.min(untraced_wall_b);
    let traced_wall_s = traced_wall_a.min(traced_wall_b);

    // The headline run: shared semantic cache across all four tenants,
    // tracing on.
    let isolated = build_service(seed, true, None, true, None, 0, None).isolated_cost(&requests);
    report.set_isolated_baseline(isolated);

    println!("{}", report.render());
    aida_bench::write_trace_jsonl("serve_soak", &report.to_jsonl());
    aida_bench::emit_text("serve_soak", &report.render());

    // Tracing must observe the run, not perturb it.
    if untraced.completions.len() != report.completions.len()
        || untraced.total_cost_usd != report.total_cost_usd
    {
        eprintln!("FAIL: tracing changed the run");
        std::process::exit(1);
    }
    let overhead_pct = if untraced_wall_s > 0.0 {
        100.0 * (traced_wall_s - untraced_wall_s) / untraced_wall_s
    } else {
        0.0
    };
    println!(
        "recorder overhead: untraced {untraced_wall_s:.3}s wall, traced {traced_wall_s:.3}s wall ({overhead_pct:+.1}%)"
    );

    // Per-tenant health: windowed percentiles + SLO burn-rate verdicts.
    let health_path = aida_bench::results_dir().join("health.jsonl");
    match std::fs::write(&health_path, report.health_jsonl()) {
        Ok(()) => println!("(health saved to {})", health_path.display()),
        Err(err) => eprintln!("warning: could not save {}: {err}", health_path.display()),
    }
    aida_bench::emit_bench(&serve_soak_bench(seed, &report));
    if report.health.is_empty() {
        eprintln!("FAIL: soak produced no per-tenant health rows");
        std::process::exit(1);
    }

    let cold_latency = latency_summary(&baseline);
    let warm_latency = latency_summary(&report);
    let bench = SemcacheBench {
        source: "serve_soak",
        cold_usd: baseline.total_cost_usd,
        warm_usd: report.total_cost_usd,
        hit_rate: report.cache_hit_rate(),
        p50_cold_s: cold_latency.p50(),
        p95_cold_s: cold_latency.p95(),
        p50_warm_s: warm_latency.p50(),
        p95_warm_s: warm_latency.p95(),
    };
    aida_bench::emit_semcache_bench(&bench);

    // The cache must pay for itself: strictly cheaper on every soak, and
    // at least 20% cheaper on the full workload.
    if report.total_cost_usd >= baseline.total_cost_usd {
        eprintln!(
            "FAIL: cache-on soak cost ${:.4} >= cache-off ${:.4}",
            report.total_cost_usd, baseline.total_cost_usd
        );
        std::process::exit(1);
    }
    if !smoke && bench.reduction_pct() < 20.0 {
        eprintln!(
            "FAIL: cache-on soak saved only {:.1}% (< 20%)",
            bench.reduction_pct()
        );
        std::process::exit(1);
    }

    // ---- bounds-gate phase: static worst-case spend vs tenant quota,
    // shed before dispatch. Cheap enough to run in smoke mode too.
    bounds_gate_phase(seed);

    if env_on("SERVE_SOAK_CRASH") {
        crash_probe(seed, &requests);
    }

    if env_on("SERVE_SOAK_LIVE") {
        live_phase(seed, smoke, &legal_mix, &enron_mix);
    }

    // ---- restart phase: the durable-state layer under a process death.
    //
    // A previous soak may have been killed mid-write (CI's kill-9
    // smoke): recovery must swallow whatever partial files it left —
    // a torn WAL tail is truncated, a torn snapshot temp is ignored —
    // then the phase resets to a clean cold run.
    let durable_dir = aida_bench::results_dir().join("serve_soak_durable");
    if durable_dir.exists() {
        let probe = build_service(seed, true, Some(&durable_dir), true, None, 0, None);
        let recovery = probe.wal_recovery().expect("wal attached");
        println!(
            "restart probe: recovered {} contexts, replayed {} ledger records (dropped tail: {})",
            probe.runtime().manager().len(),
            recovery.replayed,
            recovery.dropped_tail
        );
        drop(probe);
        std::fs::remove_dir_all(&durable_dir).expect("reset durable dir");
    }
    std::fs::create_dir_all(&durable_dir).expect("create durable dir");

    // Cold durable run: checkpoint every 16 agentic ops + final save.
    let mut durable_svc = build_service(seed, true, Some(&durable_dir), true, None, 0, None);
    let durable_report = durable_svc.run(requests.clone());
    let cold_spends = spend_bits(&durable_svc);
    durable_svc
        .runtime()
        .save_state()
        .expect("state checkpoint");
    durable_svc.runtime().save_cache().expect("cache spill");
    drop(durable_svc); // the "crash": nothing survives but the files

    // Warm restart: per-tenant dollars must replay bit-identically and
    // the restore itself must spend nothing.
    let warm_svc = build_service(seed, true, Some(&durable_dir), true, None, 0, None);
    let recovery = warm_svc.wal_recovery().expect("wal attached");
    let restore_cost = warm_svc.runtime().cost();
    println!(
        "restart: replayed {} ledger records, restored {} contexts, re-materialization spend ${restore_cost:.4}",
        recovery.replayed,
        warm_svc.runtime().manager().len(),
    );
    if durable_report.wal_appends == 0 {
        eprintln!("FAIL: durable run appended no ledger records");
        std::process::exit(1);
    }
    if spend_bits(&warm_svc) != cold_spends {
        eprintln!("FAIL: per-tenant dollars diverged across the restart");
        std::process::exit(1);
    }
    if recovery.replayed + recovery.skipped == 0 && !recovery.snapshot_loaded {
        eprintln!("FAIL: restart recovered nothing from the ledger WAL");
        std::process::exit(1);
    }
    if warm_svc.runtime().manager().is_empty() {
        eprintln!("FAIL: restart restored no Contexts from the snapshot");
        std::process::exit(1);
    }
    if restore_cost != 0.0 {
        eprintln!("FAIL: restart spent ${restore_cost:.6} re-materializing state");
        std::process::exit(1);
    }
    drop(warm_svc);

    // ---- group-commit phase: the same workload with ledger appends
    // coalesced into one fsync per batch and the tail sealing into
    // segments. Dollars must not move; the fsync count must collapse.
    let grouped_dir = aida_bench::results_dir().join("serve_soak_grouped");
    if grouped_dir.exists() {
        std::fs::remove_dir_all(&grouped_dir).expect("reset grouped dir");
    }
    std::fs::create_dir_all(&grouped_dir).expect("create grouped dir");
    let group = 8;
    let mut grouped_svc = build_service(seed, true, Some(&grouped_dir), true, None, group, None);
    let grouped_report = grouped_svc.run(requests);
    let grouped_spends = spend_bits(&grouped_svc);
    drop(grouped_svc); // crash-stop again: only the log survives

    let queries = grouped_report.completions.len().max(1) as f64;
    let plain_rate = durable_report.wal_fsyncs as f64 / queries;
    let grouped_rate = grouped_report.wal_fsyncs as f64 / queries;
    let speedup = plain_rate / grouped_rate.max(f64::MIN_POSITIVE);
    println!(
        "group commit: {plain_rate:.2} fsyncs/query per-record vs {grouped_rate:.2} grouped \
         ({speedup:.1}x fewer; {} group flushes, {} segments sealed, staleness bound {} records)",
        grouped_report.wal_group_flushes,
        grouped_report.wal_segments_sealed,
        grouped_report.wal_batch_bound,
    );
    if grouped_spends != cold_spends {
        eprintln!("FAIL: group commit changed per-tenant dollars");
        std::process::exit(1);
    }
    if grouped_report.wal_fsyncs == 0 || grouped_report.wal_fsyncs >= durable_report.wal_fsyncs {
        eprintln!(
            "FAIL: group commit did not reduce fsyncs ({} grouped vs {} per-record)",
            grouped_report.wal_fsyncs, durable_report.wal_fsyncs
        );
        std::process::exit(1);
    }
    if !smoke && durable_report.wal_fsyncs < 5 * grouped_report.wal_fsyncs {
        eprintln!("FAIL: group commit reduced fsyncs only {speedup:.1}x (< 5x)");
        std::process::exit(1);
    }

    // Warm restart of the grouped log: the replay walks sealed segments
    // before the tail and lands on the same per-tenant dollars.
    let grouped_warm = build_service(seed, true, Some(&grouped_dir), true, None, group, None);
    let grouped_recovery = grouped_warm.wal_recovery().expect("wal attached");
    println!(
        "group commit restart: replayed {} records from {} sealed segments + tail",
        grouped_recovery.replayed, grouped_recovery.sealed_segments,
    );
    if spend_bits(&grouped_warm) != cold_spends {
        eprintln!("FAIL: grouped restart diverged per-tenant dollars");
        std::process::exit(1);
    }
    if !smoke && grouped_recovery.sealed_segments == 0 {
        eprintln!("FAIL: full grouped soak sealed no segments");
        std::process::exit(1);
    }
    drop(grouped_warm);
    std::fs::remove_dir_all(&grouped_dir).expect("clean grouped dir");
}
