//! Pyrite execution micro-benchmark: tree-walking interpreter vs the
//! bytecode VM on a policy-shaped program corpus.
//!
//! Three measured configurations, matching the real agent paths:
//!
//! * **tree-walk** — `Interpreter::run(source)` per iteration: parse +
//!   AST walk, exactly what the agent loop did before the VM landed.
//! * **cold VM** — parse + typecheck + compile + execute per iteration:
//!   the first execution of a freshly planned step.
//! * **warm VM** — compile once, `run_compiled` per iteration: repeated
//!   execution of a cached plan (the semantic cache keys plans by the
//!   compiled program's content hash, so warm re-runs are the common
//!   case under caching).
//!
//! Wall-clock timings go to stdout and `results/pyrite_vm.txt` only —
//! host time never enters the canonical JSON. `BENCH_pyrite_vm.json`
//! carries exclusively deterministic metrics (programs, iterations,
//! instruction counts, fuel burned, an output checksum), so two runs of
//! this binary produce byte-identical JSON; `ci.sh` runs it twice and
//! `cmp`s. The binary also cross-checks every program's value, printed
//! output, and remaining fuel between the tree-walker and the VM, and
//! aborts on any divergence — a third leg of the differential oracle.

use aida_bench::{emit_bench, emit_text, BenchResult};
use aida_llm::WallStopwatch;
use aida_script::{compile_source, CompiledProgram, Interpreter, ScriptValue};

/// Iterations per program per configuration.
const ITERS: u32 = 200;

/// Fuel budget, matching the agents runtime.
const FUEL: u64 = 5_000_000;

/// Policy-shaped corpus: the shapes agent planners actually emit —
/// tool probes, filtered comprehensions, aggregation loops, helper
/// functions, string slicing.
const CORPUS: &[(&str, &str)] = &[
    (
        "scan_filter",
        "files = list_files()\n\
         hits = [f for f in files if 'report' in f]\n\
         total = 0\n\
         for f in hits:\n\
         \x20   total = total + len(read_file(f))\n\
         total\n",
    ),
    (
        "aggregate_rows",
        "def parse_row(line):\n\
         \x20   parts = line.split(',')\n\
         \x20   return int(parts[1])\n\
         rows = read_file('data.csv').split('\\n')\n\
         total = 0\n\
         for line in rows[1:]:\n\
         \x20   if len(line) > 0:\n\
         \x20       total = total + parse_row(line)\n\
         total\n",
    ),
    (
        "search_rank",
        "hits = search_keywords('identity theft', 8)\n\
         scores = []\n\
         for h in hits:\n\
         \x20   score = 0\n\
         \x20   for word in h.split(' '):\n\
         \x20       if len(word) > 4:\n\
         \x20           score = score + 1\n\
         \x20   scores.append(score)\n\
         best = 0\n\
         for s in scores:\n\
         \x20   if s > best:\n\
         \x20       best = s\n\
         best\n",
    ),
    (
        "numeric_loop",
        "def ratio(a, b):\n\
         \x20   if b == 0:\n\
         \x20       return 0\n\
         \x20   return a * 100 / b\n\
         acc = 0\n\
         i = 0\n\
         while i < 400:\n\
         \x20   acc = acc + ratio(i, i + 1)\n\
         \x20   i = i + 1\n\
         acc\n",
    ),
];

/// Installs the synthetic tool surface every corpus program runs
/// against. Pure and allocation-cheap so the numbers measure execution
/// machinery, not tool bodies.
fn bind_tools(interp: &mut Interpreter) {
    interp.bind_host_fn("list_files", |_args| {
        Ok(ScriptValue::list(
            ["report_2001.txt", "report_2024.txt", "notes.md"]
                .iter()
                .map(|s| ScriptValue::str(*s))
                .collect(),
        ))
    });
    interp.bind_host_fn("read_file", |_args| {
        Ok(ScriptValue::str(
            "year,n\n2001,10\n2008,40\n2013,75\n2024,130",
        ))
    });
    interp.bind_host_fn("search_keywords", |_args| {
        Ok(ScriptValue::list(
            [
                "identity theft reports rose sharply",
                "consumer sentinel network data book",
                "fraud and other complaints by year",
            ]
            .iter()
            .map(|s| ScriptValue::str(*s))
            .collect(),
        ))
    });
}

fn fresh_interp() -> Interpreter {
    let mut interp = Interpreter::new().with_fuel(FUEL);
    bind_tools(&mut interp);
    interp
}

/// One program's cross-checked run under both engines.
struct Outcome {
    value: ScriptValue,
    output: Vec<String>,
    fuel_used: u64,
}

fn run_tree(source: &str) -> Outcome {
    let mut interp = fresh_interp();
    let value = interp.run(source).expect("corpus program must run");
    Outcome {
        value,
        output: interp.take_output(),
        fuel_used: FUEL - interp.fuel_remaining(),
    }
}

fn run_vm(program: &CompiledProgram) -> Outcome {
    let mut interp = fresh_interp();
    let value = interp
        .run_compiled(program)
        .expect("corpus program must run");
    Outcome {
        value,
        output: interp.take_output(),
        fuel_used: FUEL - interp.fuel_remaining(),
    }
}

/// FNV-1a over the rendered values and output lines: an exact-in-f64
/// (32-bit) checksum tying the JSON to the corpus semantics.
fn checksum(outcomes: &[Outcome]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    };
    for o in outcomes {
        eat(&format!("{}", o.value));
        for line in &o.output {
            eat(line);
        }
    }
    h
}

fn main() {
    let mut report = String::new();
    let mut outcomes = Vec::new();
    let mut total_insns = 0u64;
    let mut total_fuel = 0u64;
    let mut tree_total = 0.0f64;
    let mut warm_total = 0.0f64;

    report.push_str(&format!(
        "pyrite_vm: {} programs x {ITERS} iterations per configuration\n\n",
        CORPUS.len()
    ));
    report.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>9}\n",
        "program", "insns", "tree_ms", "cold_vm_ms", "warm_vm_ms", "speedup"
    ));

    for (name, source) in CORPUS {
        let compiled = compile_source(source).expect("corpus program must compile");

        // Differential cross-check before timing anything.
        let tree = run_tree(source);
        let vm = run_vm(&compiled);
        assert_eq!(tree.value, vm.value, "{name}: value diverged");
        assert_eq!(tree.output, vm.output, "{name}: output diverged");
        assert_eq!(tree.fuel_used, vm.fuel_used, "{name}: fuel diverged");

        let sw = WallStopwatch::start();
        for _ in 0..ITERS {
            let _ = run_tree(source);
        }
        let tree_s = sw.elapsed_s();

        let sw = WallStopwatch::start();
        for _ in 0..ITERS {
            let compiled = compile_source(source).expect("corpus program must compile");
            let _ = run_vm(&compiled);
        }
        let cold_s = sw.elapsed_s();

        let sw = WallStopwatch::start();
        for _ in 0..ITERS {
            let _ = run_vm(&compiled);
        }
        let warm_s = sw.elapsed_s();

        report.push_str(&format!(
            "{name:<16} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x\n",
            compiled.insn_count(),
            tree_s * 1e3,
            cold_s * 1e3,
            warm_s * 1e3,
            tree_s / warm_s,
        ));

        total_insns += compiled.insn_count() as u64;
        total_fuel += tree.fuel_used;
        tree_total += tree_s;
        warm_total += warm_s;
        outcomes.push(tree);
    }

    let speedup = tree_total / warm_total;
    report.push_str(&format!(
        "\noverall: tree-walk {:.1} ms vs warm VM {:.1} ms -> {speedup:.2}x\n",
        tree_total * 1e3,
        warm_total * 1e3,
    ));
    emit_text("pyrite_vm", &report);

    // Canonical JSON: deterministic metrics only — no wall-clock values,
    // so two runs are byte-identical (ci.sh cmps them).
    emit_bench(
        &BenchResult::new("pyrite_vm", 1)
            .metric("programs", CORPUS.len() as f64)
            .metric("iters_per_config", f64::from(ITERS))
            .metric("total_insns", total_insns as f64)
            .metric("fuel_used", total_fuel as f64)
            .metric("output_checksum", f64::from(checksum(&outcomes))),
    );

    assert!(
        speedup >= 2.0,
        "warm VM must be >=2x the tree-walker, got {speedup:.2}x"
    );
    println!("warm VM speedup {speedup:.2}x (>=2x required): ok");
}
