//! Ablation B: cost-based model selection.
fn main() {
    aida_bench::emit(&aida_eval::ablation_optimizer(&aida_eval::experiments::TRIAL_SEEDS));
}
