//! Ablation B: cost-based model selection.
fn main() {
    let seeds = aida_eval::experiments::TRIAL_SEEDS;
    aida_bench::emit(&aida_eval::ablation_optimizer(&seeds), seeds[0]);
    aida_bench::emit_trace(
        "ablation_optimizer",
        &aida_bench::traces::ablation_optimizer(),
    );
}
