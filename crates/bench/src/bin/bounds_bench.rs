//! Static cost-bound analyzer benchmark + snapshot.
//!
//! Runs `aida_script::analyze` over a corpus of policy-shaped programs
//! (the `pyrite_bench` shapes plus bounded/unbounded exemplars) and
//! writes:
//!
//! * `results/bounds.jsonl` — one line per program with its fuel bound,
//!   per-tool call bounds, Flagship dollar bound, and the human
//!   rendering. Pure static analysis of fixed sources: byte-identical
//!   across runs, `cmp`'d by ci.sh.
//! * `results/BENCH_bounds.json` — canonical deterministic metrics
//!   (program counts by verdict, summed finite bounds).
//! * `results/bounds.txt` — the table plus wall-clock analyzer timing
//!   (host time stays out of the canonical files).
//!
//! Every program's bound is also round-tripped through the versioned
//! artifact encoding (`encode` → `decode`) and the binary aborts on any
//! mismatch — the bound must survive plan caching exactly.

use aida_bench::{emit_bench, emit_text, results_dir, BenchResult};
use aida_llm::{ModelId, WallStopwatch};
use aida_script::{compile_source, CompiledProgram};

/// Analyzer corpus: the `pyrite_bench` execution shapes plus exemplars
/// pinning each verdict class (fuel+usd bounded, fuel-unbounded but
/// dollar-bounded, dollar-unbounded).
const CORPUS: &[(&str, &str)] = &[
    ("straight_line", "x = 1 + 2\ny = x * 10\ny\n"),
    (
        "numeric_loop",
        "def ratio(a, b):\n\
         \x20   if b == 0:\n\
         \x20       return 0\n\
         \x20   return a * 100 / b\n\
         acc = 0\n\
         i = 0\n\
         while i < 400:\n\
         \x20   acc = acc + ratio(i, i + 1)\n\
         \x20   i = i + 1\n\
         acc\n",
    ),
    (
        "looped_reads",
        "total = 0\n\
         for i in range(40):\n\
         \x20   total = total + len(read_file('a.csv'))\n\
         total\n",
    ),
    (
        "aggregate_rows",
        "def parse_row(line):\n\
         \x20   parts = line.split(',')\n\
         \x20   return int(parts[1])\n\
         rows = read_file('data.csv').split('\\n')\n\
         total = 0\n\
         for line in rows[1:]:\n\
         \x20   if len(line) > 0:\n\
         \x20       total = total + parse_row(line)\n\
         total\n",
    ),
    (
        "search_rank",
        "hits = search_keywords('identity theft', 8)\n\
         scores = []\n\
         for h in hits:\n\
         \x20   score = 0\n\
         \x20   for word in h.split(' '):\n\
         \x20       if len(word) > 4:\n\
         \x20           score = score + 1\n\
         \x20   scores.append(score)\n\
         best = 0\n\
         for s in scores:\n\
         \x20   if s > best:\n\
         \x20       best = s\n\
         best\n",
    ),
    (
        "scan_filter",
        "files = list_files()\n\
         hits = [f for f in files if 'report' in f]\n\
         total = 0\n\
         for f in hits:\n\
         \x20   total = total + len(read_file(f))\n\
         total\n",
    ),
];

/// Analyzer timing iterations (stdout/txt only).
const ITERS: u32 = 200;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let mut report = String::new();
    let mut jsonl = String::new();
    let mut fuel_bounded = 0u32;
    let mut usd_bounded = 0u32;
    let mut unbounded = 0u32;
    let mut fuel_sum = 0u64;
    let mut usd_flagship_sum = 0.0f64;

    report.push_str(&format!(
        "bounds: static cost-bound analysis over {} programs\n\n",
        CORPUS.len()
    ));
    report.push_str(&format!(
        "{:<16} {:>10} {:>14}  {}\n",
        "program", "fuel_max", "usd_flagship", "bound"
    ));

    for (name, source) in CORPUS {
        let compiled = compile_source(source).expect("corpus program must compile");
        let bound = &compiled.bound;

        // The bound must round-trip the plan-cache artifact exactly.
        let decoded =
            CompiledProgram::decode(&compiled.encode()).expect("artifact must round-trip");
        assert_eq!(bound, &decoded.bound, "{name}: bound diverged in artifact");

        let usd = bound.usd_max(ModelId::Flagship);
        if bound.fuel_max.is_finite() {
            fuel_bounded += 1;
            if let aida_script::Bound::Finite(f) = bound.fuel_max {
                fuel_sum += f;
            }
        }
        if usd.is_finite() {
            usd_bounded += 1;
            usd_flagship_sum += usd;
        }
        if bound.unbounded {
            unbounded += 1;
        }

        let usd_text = if usd.is_finite() {
            format!("{usd:.6}")
        } else {
            "inf".to_string()
        };
        report.push_str(&format!(
            "{name:<16} {:>10} {:>14}  {}\n",
            bound.fuel_max.to_string(),
            usd_text,
            bound.render()
        ));
        jsonl.push_str(&format!(
            "{{\"program\":{},\"fuel_max\":{},\"unbounded\":{},\"usd_flagship\":{},\"bound\":{}}}\n",
            json_str(name),
            json_str(&bound.fuel_max.to_string()),
            bound.unbounded,
            json_str(&usd_text),
            json_str(&bound.render()),
        ));
    }

    // Wall-clock analyzer throughput — never enters the canonical JSON.
    let sw = WallStopwatch::start();
    for _ in 0..ITERS {
        for (_, source) in CORPUS {
            let _ = compile_source(source).expect("corpus program must compile");
        }
    }
    let elapsed = sw.elapsed_s();
    report.push_str(&format!(
        "\ncompile+analyze: {:.2} ms for {} programs x {ITERS} iters\n",
        elapsed * 1e3,
        CORPUS.len()
    ));

    let dir = results_dir();
    std::fs::write(dir.join("bounds.jsonl"), &jsonl).expect("write bounds.jsonl");
    emit_text("bounds", &report);

    emit_bench(
        &BenchResult::new("bounds", 0)
            .metric("programs", CORPUS.len() as f64)
            .metric("fuel_bounded", f64::from(fuel_bounded))
            .metric("usd_bounded", f64::from(usd_bounded))
            .metric("unbounded", f64::from(unbounded))
            .metric("fuel_max_sum", fuel_sum as f64)
            .metric("usd_flagship_sum", usd_flagship_sum),
    );
}
