//! `aida-bench`: the benchmark harness.
//!
//! One runnable binary per table/figure/ablation of the paper (see
//! `src/bin/`), plus two Criterion suites:
//!
//! * `paper_tables` — end-to-end timings of the table experiments,
//! * `substrates` — microbenchmarks of the substrate crates (CSV parsing,
//!   embeddings, top-k, keyword search, the script interpreter, SQL).
//!
//! Binaries print the experiment report and persist it under `results/`.

use aida_eval::ExperimentReport;
use std::path::PathBuf;

/// Directory reports are saved into (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("AIDA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Prints a report and writes `<name>.txt` + `<name>.json` under
/// [`results_dir`].
pub fn emit(report: &ExperimentReport) {
    let rendered = report.render();
    println!("{rendered}");
    let dir = results_dir();
    let txt = std::fs::write(dir.join(format!("{}.txt", report.name)), &rendered);
    let json = std::fs::write(
        dir.join(format!("{}.json", report.name)),
        report.to_json().render(),
    );
    match txt.and(json) {
        Ok(()) => println!("(saved to {}/{}.{{txt,json}})", dir.display(), report.name),
        Err(err) => eprintln!(
            "warning: could not save results under {}: {err}",
            dir.display()
        ),
    }
}

/// Prints free-form figure text and writes `<name>.txt`.
pub fn emit_text(name: &str, text: &str) {
    println!("{text}");
    let dir = results_dir();
    match std::fs::write(dir.join(format!("{name}.txt")), text) {
        Ok(()) => println!("(saved to {}/{name}.txt)", dir.display()),
        Err(err) => eprintln!(
            "warning: could not save results under {}: {err}",
            dir.display()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        std::env::set_var("AIDA_RESULTS_DIR", std::env::temp_dir().join("aida_results_test"));
        let dir = results_dir();
        assert!(dir.exists());
        std::env::remove_var("AIDA_RESULTS_DIR");
    }
}
