//! `aida-bench`: the benchmark harness.
//!
//! One runnable binary per table/figure/ablation of the paper (see
//! `src/bin/`), plus two Criterion suites:
//!
//! * `paper_tables` — end-to-end timings of the table experiments,
//! * `substrates` — microbenchmarks of the substrate crates (CSV parsing,
//!   embeddings, top-k, keyword search, the script interpreter, SQL).
//!
//! Binaries print the experiment report and persist it under `results/`.

use aida_eval::ExperimentReport;
use std::path::PathBuf;

/// Directory reports are saved into (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("AIDA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Prints a report, writes `<name>.txt` + `<name>.json` under
/// [`results_dir`], and emits the canonical `BENCH_<name>.json` derived
/// from the report's rows. `seed` labels the canonical file (the first
/// trial seed for multi-seed experiments).
pub fn emit(report: &ExperimentReport, seed: u64) {
    let rendered = report.render();
    println!("{rendered}");
    let dir = results_dir();
    let txt = std::fs::write(dir.join(format!("{}.txt", report.name)), &rendered);
    let json = std::fs::write(
        dir.join(format!("{}.json", report.name)),
        report.to_json().render(),
    );
    match txt.and(json) {
        Ok(()) => println!("(saved to {}/{}.{{txt,json}})", dir.display(), report.name),
        Err(err) => eprintln!(
            "warning: could not save results under {}: {err}",
            dir.display()
        ),
    }
    emit_bench(&BenchResult::from_report(report, seed));
}

/// One canonical machine-readable benchmark result. Every bench binary
/// writes exactly one `results/BENCH_<name>.json` in this schema —
/// `{"bench": .., "seed": .., "metrics": {..}}` — so downstream tooling
/// parses a single shape no matter which experiment produced it.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`table1`, `serve_soak`, ...); names the output file.
    pub bench: String,
    /// Seed the metrics describe.
    pub seed: u64,
    /// `(name, value)` pairs, rendered in insertion order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchResult {
    /// An empty result for `bench` at `seed`.
    pub fn new(bench: impl Into<String>, seed: u64) -> BenchResult {
        BenchResult {
            bench: bench.into(),
            seed,
            metrics: Vec::new(),
        }
    }

    /// Appends one metric (builder-style).
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> BenchResult {
        self.metrics.push((name.into(), value));
        self
    }

    /// Flattens an experiment table into metrics keyed `system/column`.
    pub fn from_report(report: &ExperimentReport, seed: u64) -> BenchResult {
        let mut out = BenchResult::new(report.name.clone(), seed);
        for row in &report.rows {
            for (name, value) in &row.values {
                out.metrics.push((format!("{}/{name}", row.system), *value));
            }
        }
        out
    }

    /// Derives metrics from a traced run's root spans: billed calls,
    /// tokens, dollars, and the virtual makespan. Used by the figure
    /// binaries, whose primary output is prose rather than a table.
    pub fn from_trace(
        bench: impl Into<String>,
        seed: u64,
        recorder: &aida_obs::Recorder,
    ) -> BenchResult {
        let trace = recorder.trace();
        let mut calls = 0u64;
        let mut input_tokens = 0u64;
        let mut output_tokens = 0u64;
        let mut cost_usd = 0.0f64;
        let mut makespan_s = 0.0f64;
        for id in trace.roots() {
            let totals = trace.inclusive(id);
            calls += totals.calls;
            input_tokens += totals.input_tokens;
            output_tokens += totals.output_tokens;
            cost_usd += totals.cost_usd;
            makespan_s = makespan_s.max(trace.spans[id].end_s);
        }
        BenchResult::new(bench, seed)
            .metric("llm_calls", calls as f64)
            .metric("input_tokens", input_tokens as f64)
            .metric("output_tokens", output_tokens as f64)
            .metric("cost_usd", cost_usd)
            .metric("makespan_s", makespan_s)
    }

    /// Renders the canonical JSON payload.
    pub fn to_json(&self) -> aida_obs::Json {
        let mut metrics = aida_obs::Json::obj();
        for (name, value) in &self.metrics {
            metrics = metrics.field(name, *value);
        }
        aida_obs::Json::obj()
            .field("bench", self.bench.clone())
            .field("seed", self.seed)
            .field("metrics", metrics)
    }
}

/// Writes `results/BENCH_<bench>.json`. The single chokepoint for the
/// canonical schema: every binary's machine-readable headline goes
/// through here. I/O failures warn instead of aborting.
pub fn emit_bench(result: &BenchResult) {
    let path = results_dir().join(format!("BENCH_{}.json", result.bench));
    match std::fs::write(&path, format!("{}\n", result.to_json().render())) {
        Ok(()) => println!("(saved to {})", path.display()),
        Err(err) => eprintln!("warning: could not save {}: {err}", path.display()),
    }
}

/// Prints free-form figure text and writes `<name>.txt`.
pub fn emit_text(name: &str, text: &str) {
    println!("{text}");
    let dir = results_dir();
    match std::fs::write(dir.join(format!("{name}.txt")), text) {
        Ok(()) => println!("(saved to {}/{name}.txt)", dir.display()),
        Err(err) => eprintln!(
            "warning: could not save results under {}: {err}",
            dir.display()
        ),
    }
}

/// Cold-vs-warm numbers from one semantic-cache benchmark run.
#[derive(Debug, Clone)]
pub struct SemcacheBench {
    /// Which binary produced the numbers (`cache_bench`, `serve_soak`).
    pub source: &'static str,
    /// Dollars with a cold (or absent) cache.
    pub cold_usd: f64,
    /// Dollars with a warm (or enabled) cache, same seed and workload.
    pub warm_usd: f64,
    /// Cache hit rate observed during the warm run (hits + coalesced
    /// over lookups).
    pub hit_rate: f64,
    /// Median query latency, cold run (virtual seconds).
    pub p50_cold_s: f64,
    /// 95th-percentile query latency, cold run.
    pub p95_cold_s: f64,
    /// Median query latency, warm run.
    pub p50_warm_s: f64,
    /// 95th-percentile query latency, warm run.
    pub p95_warm_s: f64,
}

impl SemcacheBench {
    /// Percentage of cold-run dollars the warm run saved.
    pub fn reduction_pct(&self) -> f64 {
        if self.cold_usd > 0.0 {
            100.0 * (1.0 - self.warm_usd / self.cold_usd)
        } else {
            0.0
        }
    }

    /// Renders the machine-readable JSON payload.
    pub fn to_json(&self) -> aida_obs::Json {
        aida_obs::Json::obj()
            .field("source", self.source)
            .field("cold_usd", self.cold_usd)
            .field("warm_usd", self.warm_usd)
            .field("reduction_pct", self.reduction_pct())
            .field("hit_rate", self.hit_rate)
            .field("p50_cold_s", self.p50_cold_s)
            .field("p95_cold_s", self.p95_cold_s)
            .field("p50_warm_s", self.p50_warm_s)
            .field("p95_warm_s", self.p95_warm_s)
    }
}

/// Writes `BENCH_semcache.json` under [`results_dir`] and prints the
/// headline numbers. Both `cache_bench` and `serve_soak` emit the same
/// schema; the last writer wins.
pub fn emit_semcache_bench(bench: &SemcacheBench) {
    println!(
        "semantic cache [{}]: cold ${:.4} -> warm ${:.4} ({:.1}% saved, hit rate {:.1}%)",
        bench.source,
        bench.cold_usd,
        bench.warm_usd,
        bench.reduction_pct(),
        100.0 * bench.hit_rate,
    );
    let path = results_dir().join("BENCH_semcache.json");
    match std::fs::write(&path, format!("{}\n", bench.to_json().render())) {
        Ok(()) => println!("(saved to {})", path.display()),
        Err(err) => eprintln!("warning: could not save {}: {err}", path.display()),
    }
}

/// Directory span traces are saved into (`results/traces`, created on
/// demand).
pub fn traces_dir() -> PathBuf {
    let dir = results_dir().join("traces");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes pre-rendered JSONL as `<name>.jsonl` under [`traces_dir`] and
/// returns the path. The single chokepoint for trace-file placement:
/// every binary that persists a trace goes through here, so the layout
/// (and the `AIDA_RESULTS_DIR` override) is decided in one place. I/O
/// failures warn instead of aborting — a read-only filesystem shouldn't
/// kill an experiment run.
pub fn write_trace_jsonl(name: &str, jsonl: &str) -> PathBuf {
    let path = traces_dir().join(format!("{name}.jsonl"));
    match std::fs::write(&path, jsonl) {
        Ok(()) => println!("(trace saved to {})", path.display()),
        Err(err) => eprintln!("warning: could not save trace at {}: {err}", path.display()),
    }
    path
}

/// Prints a recorder's `EXPLAIN ANALYZE` report and writes the span trace
/// as `<name>.jsonl` under [`traces_dir`]. Traces carry only virtual time,
/// so the file is byte-identical across runs at the same seed.
pub fn emit_trace(name: &str, recorder: &aida_obs::Recorder) {
    let trace = recorder.trace();
    println!("{}", trace.explain_analyze());
    write_trace_jsonl(name, &trace.to_jsonl());
}

/// Traced companion runs for the experiment binaries: each returns the
/// recorder of one representative seed-1 run of the experiment's system,
/// for `EXPLAIN ANALYZE` + JSONL export next to the report.
pub mod traces {
    use aida_core::{Context, Runtime};
    use aida_llm::SimLlm;
    use aida_obs::Recorder;
    use aida_optimizer::{Optimizer, OptimizerConfig, Policy, SamplerConfig};
    use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};
    use aida_synth::{enron, legal};

    /// The Table 1 system under trace: PZ compute on the legal workload.
    pub fn table1() -> Recorder {
        let workload = legal::generate(1);
        aida_eval::run_pz_compute_traced(&workload, 1).1
    }

    /// The Table 2 system under trace: PZ compute on the Enron workload.
    pub fn table2() -> Recorder {
        let workload = enron::generate(1);
        aida_eval::run_pz_compute_traced(&workload, 1).1
    }

    /// Figure 2's search → compute pipeline under trace.
    pub fn figure2() -> Recorder {
        aida_eval::figure2_traced(1).1
    }

    /// Ablation A under trace: two computes where the second reuses the
    /// first's materialized Context (reuse hit/miss events appear).
    pub fn ablation_reuse() -> Recorder {
        let rt = Runtime::builder().seed(1).tracing(true).build();
        let workload = legal::generate(1);
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let _ = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2001")
            .run();
        let _ = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2024")
            .run();
        rt.recorder().clone()
    }

    /// Ablation D under trace: the legal ratio compute with the
    /// split/merge rewrites on (rewrite events appear).
    pub fn ablation_rewrite() -> Recorder {
        let rt = Runtime::builder().seed(1).tracing(true).build();
        let workload = legal::generate(1);
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .description(workload.description.clone())
            .with_vector_index()
            .build(&rt);
        let _ = rt
            .query(&ctx)
            .compute(&workload.query)
            .with_rewrites(true)
            .run();
        rt.recorder().clone()
    }

    /// Ablation B under trace: the optimizer-chosen Enron plan.
    pub fn ablation_optimizer() -> Recorder {
        let recorder = Recorder::new();
        let env = ExecEnv::new(SimLlm::new(1)).with_recorder(recorder.clone());
        let workload = enron::generate(1);
        workload.install_oracle(&env.llm);
        let ds = aida_core::ProgramSynthesizer::synthesize(&workload.query, &workload.lake);
        let optimizer = Optimizer::new(&env, OptimizerConfig::default());
        let optimized = optimizer.optimize(
            ds.plan(),
            &Policy::MinCost {
                quality_floor: 0.85,
            },
        );
        let _ = Executor::new(&env).execute(&optimized.physical);
        recorder
    }

    /// Ablation E under trace: a small sampling budget, then execution.
    pub fn ablation_sampling() -> Recorder {
        let recorder = Recorder::new();
        let env = ExecEnv::new(SimLlm::new(1)).with_recorder(recorder.clone());
        let workload = enron::generate(1);
        workload.install_oracle(&env.llm);
        let ds = aida_core::ProgramSynthesizer::synthesize(&workload.query, &workload.lake);
        let config = OptimizerConfig {
            sampler: SamplerConfig {
                sample_records: 10,
                bandit_pulls: 12,
            },
            ..OptimizerConfig::default()
        };
        let optimizer = Optimizer::new(&env, config);
        let optimized = optimizer.optimize(
            ds.plan(),
            &Policy::MinCost {
                quality_floor: 0.85,
            },
        );
        let _ = Executor::new(&env).execute(&optimized.physical);
        recorder
    }

    /// Ablation C under trace: the full-scan semantic filter at the
    /// smallest lake size.
    pub fn ablation_access() -> Recorder {
        let recorder = Recorder::new();
        let env = ExecEnv::new(SimLlm::new(1)).with_recorder(recorder.clone());
        let workload = legal::generate_scaled(1, 10);
        workload.install_oracle(&env.llm);
        let ds = Dataset::scan(&workload.lake, "legal").sem_filter(
            "the file contains national statistics on the number of identity theft reports, \
             covering both the years 2001 and 2024",
        );
        let plan = PhysicalPlan::uniform(ds.plan(), aida_llm::ModelId::Flagship, 8);
        let _ = Executor::new(&env).execute(&plan);
        recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        std::env::set_var(
            "AIDA_RESULTS_DIR",
            std::env::temp_dir().join("aida_results_test"),
        );
        let dir = results_dir();
        assert!(dir.exists());
        std::env::remove_var("AIDA_RESULTS_DIR");
    }

    #[test]
    fn bench_result_renders_the_canonical_schema() {
        let result = BenchResult::new("soak", 42)
            .metric("p99_s", 1.5)
            .metric("queries", 20.0);
        assert_eq!(
            result.to_json().render(),
            r#"{"bench":"soak","seed":42,"metrics":{"p99_s":1.5,"queries":20}}"#
        );
    }

    #[test]
    fn bench_result_from_report_keys_metrics_by_system_and_column() {
        let report = ExperimentReport {
            name: "t".to_string(),
            title: "T".to_string(),
            columns: vec!["cost".to_string()],
            rows: vec![aida_eval::experiments::Row {
                system: "aida".to_string(),
                values: vec![("cost".to_string(), 0.25)],
            }],
            paper: Vec::new(),
            trials: 1,
        };
        let result = BenchResult::from_report(&report, 7);
        assert_eq!(result.bench, "t");
        assert_eq!(result.seed, 7);
        assert_eq!(result.metrics, vec![("aida/cost".to_string(), 0.25)]);
    }
}
