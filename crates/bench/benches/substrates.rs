//! Microbenchmarks of the substrate crates.

use aida_data::csv;
use aida_index::{KeywordIndex, TopK, VectorIndex};
use aida_llm::{Embedder, SimLlm};
use aida_script::Interpreter;
use aida_sql::Catalog;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn csv_text(rows: usize) -> String {
    let mut out = String::from("year,category,reports,rank\n");
    for i in 0..rows {
        out.push_str(&format!(
            "{},category {},{},{}\n",
            2001 + i % 24,
            i % 20,
            i * 137,
            i % 50
        ));
    }
    out
}

fn bench_csv(c: &mut Criterion) {
    let text = csv_text(1_000);
    c.bench_function("csv/parse_1k_rows", |b| {
        b.iter(|| black_box(csv::parse_table(&text).unwrap()))
    });
}

fn bench_embedder(c: &mut Criterion) {
    let embedder = Embedder::default();
    let text = "identity theft reports rose sharply between 2001 and 2024 according to the \
                consumer sentinel network data book"
        .repeat(8);
    c.bench_function("embed/1kb_text", |b| {
        b.iter(|| black_box(embedder.embed(&text)))
    });
}

fn bench_topk(c: &mut Criterion) {
    c.bench_function("topk/push_10k_keep_10", |b| {
        b.iter(|| {
            let mut topk = TopK::new(10);
            for i in 0..10_000u32 {
                topk.push((i % 977) as f32, i);
            }
            black_box(topk.into_sorted_vec())
        })
    });
}

fn bench_keyword_index(c: &mut Criterion) {
    let mut index = KeywordIndex::new();
    for i in 0..500 {
        index.add(
            &format!("doc{i}"),
            &format!(
                "report {i} identity theft fraud statistics for year {}",
                2001 + i % 24
            ),
        );
    }
    c.bench_function("keyword/bm25_search_500_docs", |b| {
        b.iter(|| black_box(index.search("identity theft 2024", 10)))
    });
}

fn bench_vector_index(c: &mut Criterion) {
    let embedder = Embedder::default();
    let mut index = aida_index::FlatIndex::new();
    for i in 0..500 {
        index.add(
            &format!("d{i}"),
            embedder.embed(&format!("topic {} body {}", i % 37, i)),
        );
    }
    let query = embedder.embed("topic 5 statistics");
    c.bench_function("vector/flat_search_500", |b| {
        b.iter(|| black_box(index.search(&query, 10)))
    });
}

fn bench_script(c: &mut Criterion) {
    let src =
        "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nfib(15)";
    c.bench_function("script/fib_15", |b| {
        b.iter(|| black_box(Interpreter::new().run(src).unwrap()))
    });
}

fn bench_sql(c: &mut Criterion) {
    let table = csv::parse_table(&csv_text(2_000)).unwrap();
    let mut catalog = Catalog::new();
    catalog.register("reports", table);
    let query = "SELECT category, SUM(reports) AS total FROM reports WHERE year >= 2010 \
                 GROUP BY category ORDER BY total DESC LIMIT 5";
    c.bench_function("sql/group_by_2k_rows", |b| {
        b.iter(|| black_box(aida_sql::execute(query, &catalog).unwrap()))
    });
}

fn bench_semops_filter(c: &mut Criterion) {
    use aida_llm::ModelId;
    use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};
    let workload = aida_synth::legal::generate(1);
    c.bench_function("semops/filter_132_files", |b| {
        b.iter(|| {
            let env = ExecEnv::new(SimLlm::new(1));
            workload.install_oracle(&env.llm);
            let ds = Dataset::scan(&workload.lake, "legal")
                .sem_filter("mentions identity theft statistics");
            let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Mini, 8);
            black_box(Executor::new(&env).execute(&plan))
        })
    });
}

criterion_group!(
    substrates,
    bench_csv,
    bench_embedder,
    bench_topk,
    bench_keyword_index,
    bench_vector_index,
    bench_script,
    bench_sql,
    bench_semops_filter
);
criterion_main!(substrates);
