//! Criterion benches over the paper's experiments.
//!
//! Each bench runs a single-trial variant of the corresponding experiment
//! end to end (workload generation + all systems). Wall-clock here measures
//! the *simulator*; the simulated dollars/seconds the paper reports come
//! from the table binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("single_trial", |b| {
        b.iter(|| black_box(aida_eval::table1(&[1])));
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("single_trial", |b| {
        b.iter(|| black_box(aida_eval::table2(&[1])));
    });
    group.finish();
}

fn bench_context_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reuse");
    group.sample_size(10);
    group.bench_function("single_trial", |b| {
        b.iter(|| black_box(aida_eval::ablation_reuse(&[1])));
    });
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_optimizer");
    group.sample_size(10);
    group.bench_function("single_trial", |b| {
        b.iter(|| black_box(aida_eval::ablation_optimizer(&[1])));
    });
    group.finish();
}

fn bench_access_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_access");
    group.sample_size(10);
    group.bench_function("sizes_10_50", |b| {
        b.iter(|| black_box(aida_eval::ablation_access(&[10, 50], 1)));
    });
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rewrite");
    group.sample_size(10);
    group.bench_function("single_trial", |b| {
        b.iter(|| black_box(aida_eval::ablation_rewrite(&[1])));
    });
    group.finish();
}

criterion_group!(
    paper_tables,
    bench_table1,
    bench_table2,
    bench_context_reuse,
    bench_optimizer,
    bench_access_paths,
    bench_rewrite
);
criterion_main!(paper_tables);
