//! Per-operator runtime statistics.
//!
//! Every executed operator reports rows in/out, LLM calls, dollars, and
//! virtual seconds. The optimizer's sampling phase consumes these to
//! estimate selectivities and per-model quality/cost trade-offs.

/// Statistics for one executed operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorStats {
    /// Operator name (`sem_filter`, …).
    pub op: String,
    /// Model used, if the operator is semantic.
    pub model: Option<String>,
    /// Records in.
    pub rows_in: usize,
    /// Records out.
    pub rows_out: usize,
    /// LLM calls issued.
    pub calls: usize,
    /// Dollars spent by this operator.
    pub cost_usd: f64,
    /// Virtual seconds consumed by this operator.
    pub time_s: f64,
}

impl OperatorStats {
    /// Output/input selectivity (1.0 for empty input).
    pub fn selectivity(&self) -> f64 {
        if self.rows_in == 0 {
            1.0
        } else {
            self.rows_out as f64 / self.rows_in as f64
        }
    }

    /// Dollars per input record (0 for empty input).
    pub fn cost_per_record(&self) -> f64 {
        if self.rows_in == 0 {
            0.0
        } else {
            self.cost_usd / self.rows_in as f64
        }
    }
}

/// Statistics for a full plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStats {
    /// Per-operator stats in pipeline order.
    pub operators: Vec<OperatorStats>,
}

impl PlanStats {
    /// Total dollars across operators.
    pub fn total_cost(&self) -> f64 {
        self.operators.iter().map(|o| o.cost_usd).sum()
    }

    /// Total virtual seconds across operators.
    pub fn total_time(&self) -> f64 {
        self.operators.iter().map(|o| o.time_s).sum()
    }

    /// Total LLM calls across operators.
    pub fn total_calls(&self) -> usize {
        self.operators.iter().map(|o| o.calls).sum()
    }

    /// Renders a compact table for traces.
    pub fn render(&self) -> String {
        let mut out =
            String::from("op               model        in -> out   calls   cost($)   time(s)\n");
        for o in &self.operators {
            out.push_str(&format!(
                "{:<16} {:<12} {:>4} -> {:<4} {:>5} {:>9.4} {:>9.1}\n",
                o.op,
                o.model.as_deref().unwrap_or("-"),
                o.rows_in,
                o.rows_out,
                o.calls,
                o.cost_usd,
                o.time_s
            ));
        }
        out.push_str(&format!(
            "total: ${:.4}, {:.1}s, {} calls\n",
            self.total_cost(),
            self.total_time(),
            self.total_calls()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(rows_in: usize, rows_out: usize, cost: f64, time: f64) -> OperatorStats {
        OperatorStats {
            op: "sem_filter".into(),
            model: Some("sim-4o".into()),
            rows_in,
            rows_out,
            calls: rows_in,
            cost_usd: cost,
            time_s: time,
        }
    }

    #[test]
    fn selectivity_and_unit_cost() {
        let s = op(100, 25, 2.0, 10.0);
        assert!((s.selectivity() - 0.25).abs() < 1e-12);
        assert!((s.cost_per_record() - 0.02).abs() < 1e-12);
        let empty = op(0, 0, 0.0, 0.0);
        assert_eq!(empty.selectivity(), 1.0);
        assert_eq!(empty.cost_per_record(), 0.0);
    }

    #[test]
    fn plan_totals_sum_operators() {
        let stats = PlanStats {
            operators: vec![op(100, 25, 2.0, 10.0), op(25, 25, 0.5, 3.0)],
        };
        assert!((stats.total_cost() - 2.5).abs() < 1e-12);
        assert!((stats.total_time() - 13.0).abs() < 1e-12);
        assert_eq!(stats.total_calls(), 125);
        let rendered = stats.render();
        assert!(rendered.contains("sem_filter"));
        assert!(rendered.contains("total:"));
    }
}
