//! `aida-semops`: Palimpzest-style semantic operators.
//!
//! Semantic operators are AI-powered analogs of relational operators,
//! specified in natural language instead of SQL expressions:
//!
//! * [`Dataset::sem_filter`] — keep records satisfying an NL predicate,
//! * [`Dataset::sem_extract`] — add fields extracted per an NL instruction,
//! * [`Dataset::sem_map`] — add a free-text transformation (summaries),
//! * [`Dataset::sem_agg`] — reduce all records to one NL-computed answer,
//! * [`Dataset::sem_topk`] — keep the `k` records most relevant to an NL
//!   query (embedding-proxy scored, LOTUS-style),
//! * [`Dataset::sem_group_by`] — cluster records into `k` semantic groups
//!   with one labelling call per group,
//! * [`Dataset::sem_join`] — NL-predicate join against another dataset,
//!
//! plus the classical `project`/`limit`/`count`.
//!
//! A [`Dataset`] is a lazy logical plan ([`plan::LogicalPlan`]); nothing
//! touches the (simulated) LLM until a [`physical::PhysicalPlan`] — which
//! assigns a model tier to every semantic operator — is executed by
//! [`exec::Executor`]. Execution has classic iterator semantics with
//! batched parallelism: every input record flows through every operator,
//! which is exactly the strength (exhaustive, high recall) and weakness
//! (cost scales with the lake, no early exit) the paper builds on.
//!
//! Per-operator runtime statistics ([`stats`]) feed the cost-based
//! optimizer in `aida-optimizer`.

pub mod dataset;
pub mod exec;
pub mod physical;
pub mod plan;
pub mod stats;

pub use dataset::Dataset;
pub use exec::{ExecEnv, ExecutionReport, Executor};
pub use physical::{PhysicalPlan, PhysicalStep};
pub use plan::{LogicalOp, LogicalPlan};
pub use stats::{OperatorStats, PlanStats};
