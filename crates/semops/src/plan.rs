//! Logical plans for semantic operator programs.

use aida_data::{DataLake, Field};
use std::fmt;
use std::sync::Arc;

/// A logical operator.
#[derive(Clone)]
pub enum LogicalOp {
    /// Scan a data lake, producing one record per document with `filename`
    /// and `contents` fields.
    Scan {
        /// The lake to scan.
        lake: Arc<DataLake>,
        /// Diagnostic name for the source.
        label: String,
    },
    /// Keep records satisfying a natural-language predicate.
    SemFilter {
        /// The predicate.
        instruction: String,
    },
    /// Extract typed fields per a natural-language instruction.
    SemExtract {
        /// The instruction.
        instruction: String,
        /// Fields to add to each record.
        fields: Vec<Field>,
    },
    /// Add one free-text field (e.g. a summary).
    SemMap {
        /// The instruction.
        instruction: String,
        /// Name of the output field.
        output: String,
        /// Completion-length budget in tokens.
        target_tokens: usize,
    },
    /// Reduce all records to a single answer record.
    SemAgg {
        /// The aggregation instruction.
        instruction: String,
    },
    /// Keep the `k` records most relevant to a query (embedding proxy).
    SemTopK {
        /// Relevance query.
        query: String,
        /// How many records to keep.
        k: usize,
    },
    /// Cluster records into `k` semantic groups (embedding k-means) and
    /// label each group with one LLM call; adds a `group` field.
    SemGroupBy {
        /// What the grouping should capture (guides the labels).
        instruction: String,
        /// Number of groups.
        k: usize,
    },
    /// Natural-language predicate join against a second plan.
    SemJoin {
        /// The join predicate, phrased over "the left item" and "the right
        /// item".
        instruction: String,
        /// Right-hand input (materialized eagerly).
        right: LogicalPlan,
    },
    /// Classical projection.
    Project {
        /// Columns to keep, in order.
        columns: Vec<String>,
    },
    /// Classical limit.
    Limit {
        /// Maximum records to pass through.
        n: usize,
    },
    /// Count records into a single `count` record.
    Count,
}

impl LogicalOp {
    /// Short operator name for plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Scan { .. } => "scan",
            LogicalOp::SemFilter { .. } => "sem_filter",
            LogicalOp::SemExtract { .. } => "sem_extract",
            LogicalOp::SemMap { .. } => "sem_map",
            LogicalOp::SemAgg { .. } => "sem_agg",
            LogicalOp::SemTopK { .. } => "sem_topk",
            LogicalOp::SemGroupBy { .. } => "sem_groupby",
            LogicalOp::SemJoin { .. } => "sem_join",
            LogicalOp::Project { .. } => "project",
            LogicalOp::Limit { .. } => "limit",
            LogicalOp::Count => "count",
        }
    }

    /// True when the operator invokes the LLM per record.
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            LogicalOp::SemFilter { .. }
                | LogicalOp::SemExtract { .. }
                | LogicalOp::SemMap { .. }
                | LogicalOp::SemAgg { .. }
                | LogicalOp::SemJoin { .. }
        )
    }

    /// The natural-language instruction, if the operator carries one.
    pub fn instruction(&self) -> Option<&str> {
        match self {
            LogicalOp::SemFilter { instruction }
            | LogicalOp::SemExtract { instruction, .. }
            | LogicalOp::SemMap { instruction, .. }
            | LogicalOp::SemAgg { instruction }
            | LogicalOp::SemJoin { instruction, .. } => Some(instruction),
            LogicalOp::SemTopK { query, .. } => Some(query),
            LogicalOp::SemGroupBy { instruction, .. } => Some(instruction),
            _ => None,
        }
    }
}

impl fmt::Debug for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalOp::Scan { label, lake } => {
                write!(f, "Scan({label}, {} docs)", lake.len())
            }
            LogicalOp::SemFilter { instruction } => {
                write!(f, "SemFilter({instruction:?})")
            }
            LogicalOp::SemExtract {
                instruction,
                fields,
            } => write!(
                f,
                "SemExtract({instruction:?}, fields={:?})",
                fields.iter().map(|x| x.name.as_str()).collect::<Vec<_>>()
            ),
            LogicalOp::SemMap {
                instruction,
                output,
                ..
            } => {
                write!(f, "SemMap({instruction:?} -> {output})")
            }
            LogicalOp::SemAgg { instruction } => write!(f, "SemAgg({instruction:?})"),
            LogicalOp::SemTopK { query, k } => write!(f, "SemTopK({query:?}, k={k})"),
            LogicalOp::SemGroupBy { instruction, k } => {
                write!(f, "SemGroupBy({instruction:?}, k={k})")
            }
            LogicalOp::SemJoin { instruction, .. } => {
                write!(f, "SemJoin({instruction:?})")
            }
            LogicalOp::Project { columns } => write!(f, "Project({columns:?})"),
            LogicalOp::Limit { n } => write!(f, "Limit({n})"),
            LogicalOp::Count => write!(f, "Count"),
        }
    }
}

/// A linear logical plan: a scan followed by a pipeline of operators.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    ops: Arc<Vec<LogicalOp>>,
}

impl LogicalPlan {
    /// Creates a plan from an operator pipeline. The first operator should
    /// be a [`LogicalOp::Scan`].
    pub fn new(ops: Vec<LogicalOp>) -> Self {
        LogicalPlan { ops: Arc::new(ops) }
    }

    /// The operator pipeline.
    pub fn ops(&self) -> &[LogicalOp] {
        &self.ops
    }

    /// Appends an operator, returning a new plan (plans are immutable).
    pub fn then(&self, op: LogicalOp) -> LogicalPlan {
        let mut ops = self.ops.as_ref().clone();
        ops.push(op);
        LogicalPlan { ops: Arc::new(ops) }
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Indices of the semantic operators.
    pub fn semantic_indices(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_semantic())
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the plan as an indented tree for traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            for _ in 0..i {
                out.push_str("  ");
            }
            out.push_str(&format!("{op:?}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::{DataLake, Document};

    fn scan() -> LogicalOp {
        LogicalOp::Scan {
            lake: Arc::new(DataLake::from_docs([Document::new("a.txt", "x")])),
            label: "test".into(),
        }
    }

    #[test]
    fn plan_construction_and_append() {
        let plan = LogicalPlan::new(vec![scan()])
            .then(LogicalOp::SemFilter {
                instruction: "about theft".into(),
            })
            .then(LogicalOp::Limit { n: 5 });
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.ops()[1].name(), "sem_filter");
        assert_eq!(plan.semantic_indices(), vec![1]);
    }

    #[test]
    fn then_does_not_mutate_original() {
        let base = LogicalPlan::new(vec![scan()]);
        let _extended = base.then(LogicalOp::Count);
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn render_shows_each_op() {
        let plan = LogicalPlan::new(vec![scan()]).then(LogicalOp::Count);
        let s = plan.render();
        assert!(s.contains("Scan"));
        assert!(s.contains("Count"));
    }

    #[test]
    fn instruction_access() {
        let op = LogicalOp::SemFilter {
            instruction: "p".into(),
        };
        assert_eq!(op.instruction(), Some("p"));
        assert!(LogicalOp::Count.instruction().is_none());
        assert!(op.is_semantic());
        assert!(!LogicalOp::Limit { n: 1 }.is_semantic());
        // TopK is proxy-scored, not LLM-per-record.
        assert!(!LogicalOp::SemTopK {
            query: "q".into(),
            k: 3
        }
        .is_semantic());
    }
}
