//! Physical plans: logical plans with execution parameters bound.
//!
//! The only physical knob per semantic operator (following Abacus) is the
//! model tier; the plan-wide knob is the execution parallelism. The
//! optimizer enumerates assignments; [`PhysicalPlan::default_for`] binds
//! everything to the flagship model, which is what an unoptimized
//! execution (the paper's CodeAgent+ tools) uses.

use crate::plan::{LogicalOp, LogicalPlan};
use aida_llm::ModelId;

/// Default bound on how many input records a semantic aggregate renders
/// into its prompt (see [`PhysicalStep::agg_input_cap`]).
pub const DEFAULT_AGG_INPUT_CAP: usize = 200;

/// One step of a physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalStep {
    /// The logical operator.
    pub op: LogicalOp,
    /// Model bound to the operator (meaningful only for semantic ops).
    pub model: ModelId,
    /// For `SemAgg`: how many input records are rendered into the
    /// aggregation prompt. Inputs past the cap are dropped — counted in
    /// the `agg.truncated_records` counter and surfaced as an execution
    /// warning, never silently.
    pub agg_input_cap: usize,
}

/// An executable physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Steps in pipeline order.
    pub steps: Vec<PhysicalStep>,
    /// Worker parallelism for batched LLM calls.
    pub parallelism: usize,
}

impl PhysicalPlan {
    /// Binds every operator to one model with the given parallelism.
    pub fn uniform(plan: &LogicalPlan, model: ModelId, parallelism: usize) -> PhysicalPlan {
        PhysicalPlan {
            steps: plan
                .ops()
                .iter()
                .map(|op| PhysicalStep {
                    op: op.clone(),
                    model,
                    agg_input_cap: DEFAULT_AGG_INPUT_CAP,
                })
                .collect(),
            parallelism: parallelism.max(1),
        }
    }

    /// The conventional unoptimized plan: flagship everywhere, modest
    /// parallelism.
    pub fn default_for(plan: &LogicalPlan) -> PhysicalPlan {
        PhysicalPlan::uniform(plan, ModelId::Flagship, 8)
    }

    /// Binds per-operator models; `models` must match the plan length.
    pub fn with_models(plan: &LogicalPlan, models: &[ModelId], parallelism: usize) -> PhysicalPlan {
        assert_eq!(models.len(), plan.len(), "one model per operator");
        PhysicalPlan {
            steps: plan
                .ops()
                .iter()
                .zip(models)
                .map(|(op, model)| PhysicalStep {
                    op: op.clone(),
                    model: *model,
                    agg_input_cap: DEFAULT_AGG_INPUT_CAP,
                })
                .collect(),
            parallelism: parallelism.max(1),
        }
    }

    /// Sets the aggregate input cap on every step (meaningful for
    /// `SemAgg` steps; see [`PhysicalStep::agg_input_cap`]).
    pub fn with_agg_input_cap(mut self, cap: usize) -> PhysicalPlan {
        for step in &mut self.steps {
            step.agg_input_cap = cap;
        }
        self
    }

    /// Models in step order.
    pub fn models(&self) -> Vec<ModelId> {
        self.steps.iter().map(|s| s.model).collect()
    }

    /// Renders the plan for traces.
    pub fn render(&self) -> String {
        let mut out = format!("physical plan (parallelism={})\n", self.parallelism);
        for step in &self.steps {
            if step.op.is_semantic() {
                out.push_str(&format!("  {:?} @ {}\n", step.op, step.model));
            } else {
                out.push_str(&format!("  {:?}\n", step.op));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use aida_data::{DataLake, Document};

    fn plan() -> LogicalPlan {
        let lake = DataLake::from_docs([Document::new("a.txt", "x")]);
        Dataset::scan(&lake, "t")
            .sem_filter("p")
            .limit(1)
            .plan()
            .clone()
    }

    #[test]
    fn uniform_binds_every_step() {
        let p = PhysicalPlan::uniform(&plan(), ModelId::Mini, 4);
        assert_eq!(p.steps.len(), 3);
        assert!(p.models().iter().all(|m| *m == ModelId::Mini));
        assert_eq!(p.parallelism, 4);
    }

    #[test]
    fn with_models_assigns_per_step() {
        let p = PhysicalPlan::with_models(
            &plan(),
            &[ModelId::Flagship, ModelId::Nano, ModelId::Flagship],
            2,
        );
        assert_eq!(p.steps[1].model, ModelId::Nano);
    }

    #[test]
    #[should_panic(expected = "one model per operator")]
    fn with_models_length_mismatch_panics() {
        let _ = PhysicalPlan::with_models(&plan(), &[ModelId::Nano], 2);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        let p = PhysicalPlan::uniform(&plan(), ModelId::Mini, 0);
        assert_eq!(p.parallelism, 1);
    }

    #[test]
    fn render_mentions_models_for_semantic_ops() {
        let p = PhysicalPlan::default_for(&plan());
        let s = p.render();
        assert!(s.contains("sim-4o"));
        assert!(s.contains("Limit"));
    }
}
