//! The semantic-operator execution engine.
//!
//! Iterator semantics with batched parallelism: every operator consumes its
//! full input batch, fanning LLM calls across `parallelism` workers. Wall
//! time is accounted on the shared virtual clock as the batch's critical
//! path (`ceil(n / parallelism)` waves); dollars flow through the shared
//! usage meter, snapshotted per operator.

use crate::physical::{PhysicalPlan, PhysicalStep};
use crate::plan::LogicalOp;
use crate::stats::{OperatorStats, PlanStats};
use aida_data::{DataLake, Record, Value};
use aida_llm::oracle::Subject;
use aida_llm::{Embedder, LlmTask, SimClock, SimLlm};
use aida_obs::{Recorder, SpanKind};
use std::borrow::Cow;
use std::sync::Arc;

/// Shared execution environment.
#[derive(Debug, Clone)]
pub struct ExecEnv {
    /// The (simulated) LLM service; carries the usage meter and oracle.
    pub llm: SimLlm,
    /// The virtual clock.
    pub clock: SimClock,
    /// Embedder for proxy-scored operators (top-k).
    pub embedder: Embedder,
    /// Trace recorder (disabled unless opted in via [`ExecEnv::with_recorder`]).
    pub recorder: Recorder,
    /// Ceiling on per-plan worker parallelism (plans request a level;
    /// the environment caps it at what the host should fan out).
    pub max_parallelism: usize,
}

/// Default ceiling on batched-call worker threads.
pub const DEFAULT_MAX_PARALLELISM: usize = 32;

impl ExecEnv {
    /// Creates an environment around an LLM service (tracing disabled).
    pub fn new(llm: SimLlm) -> Self {
        ExecEnv {
            llm,
            clock: SimClock::new(),
            embedder: Embedder::default(),
            recorder: Recorder::disabled(),
            max_parallelism: DEFAULT_MAX_PARALLELISM,
        }
    }

    /// Attaches a trace recorder to the environment *and* its LLM, so
    /// physical-operator spans and per-call events land in one trace.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.llm = self.llm.with_recorder(recorder.clone());
        self.recorder = recorder;
        self
    }

    /// Caps worker parallelism for batched LLM calls (floored at 1).
    pub fn with_max_parallelism(mut self, max_parallelism: usize) -> Self {
        self.max_parallelism = max_parallelism.max(1);
        self
    }

    /// The parallelism a plan's request resolves to under this
    /// environment's ceiling.
    pub fn effective_parallelism(&self, requested: usize) -> usize {
        requested.clamp(1, self.max_parallelism.max(1))
    }
}

/// The result of executing a physical plan.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Output records.
    pub records: Vec<Record>,
    /// Per-operator statistics.
    pub stats: PlanStats,
    /// Human-readable warnings raised during execution (e.g. a semantic
    /// aggregate truncating its input past the configured cap).
    pub warnings: Vec<String>,
}

impl ExecutionReport {
    /// Total dollars spent by the plan.
    pub fn cost(&self) -> f64 {
        self.stats.total_cost()
    }

    /// Total virtual seconds consumed by the plan.
    pub fn time(&self) -> f64 {
        self.stats.total_time()
    }
}

/// Executes physical plans against an environment.
pub struct Executor<'a> {
    env: &'a ExecEnv,
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    pub fn new(env: &'a ExecEnv) -> Self {
        Executor { env }
    }

    /// Runs the plan to completion.
    pub fn execute(&self, plan: &PhysicalPlan) -> ExecutionReport {
        let mut records: Vec<Record> = Vec::new();
        let mut lake: Option<Arc<DataLake>> = None;
        let mut stats = PlanStats::default();
        let mut warnings: Vec<String> = Vec::new();
        let parallelism = self.env.effective_parallelism(plan.parallelism);
        for step in &plan.steps {
            let rows_in = records.len();
            let before = self.env.llm.meter().snapshot();
            let t0 = self.env.clock.now();
            let span = self
                .env
                .recorder
                .span(SpanKind::PhysicalOp, step.op.name(), t0);
            if let Some(instruction) = step.op.instruction() {
                span.attr("instruction", aida_obs::clip(instruction, 80));
            }
            if step.op.is_semantic() {
                span.attr("model", step.model.name());
            }
            records = self.run_step(step, records, &mut lake, parallelism, &mut warnings);
            let delta = self.env.llm.meter().snapshot().delta_since(&before);
            span.rows(rows_in, records.len());
            span.finish(self.env.clock.now());
            let op_stats = OperatorStats {
                op: step.op.name().to_string(),
                model: step.op.is_semantic().then(|| step.model.name().to_string()),
                rows_in,
                rows_out: records.len(),
                calls: delta.total_calls() as usize,
                cost_usd: delta.cost(self.env.llm.catalog()),
                time_s: self.env.clock.now() - t0,
            };
            if rows_in > 0 {
                self.env.recorder.histogram_record(
                    aida_obs::registry::OPERATOR_SELECTIVITY,
                    op_stats.selectivity(),
                );
            }
            stats.operators.push(op_stats);
        }
        ExecutionReport {
            records,
            stats,
            warnings,
        }
    }

    fn run_step(
        &self,
        step: &PhysicalStep,
        records: Vec<Record>,
        lake: &mut Option<Arc<DataLake>>,
        parallelism: usize,
        warnings: &mut Vec<String>,
    ) -> Vec<Record> {
        match &step.op {
            LogicalOp::Scan {
                lake: source,
                label: _,
            } => {
                *lake = Some(Arc::clone(source));
                // Reading files is ~free next to LLM calls; charge a small
                // fixed I/O latency per wave.
                self.env.clock.advance_parallel(
                    0.002 * source.len() as f64,
                    source.len().max(1),
                    parallelism,
                );
                source
                    .docs()
                    .iter()
                    .map(|doc| {
                        Record::new(doc.name.clone())
                            .with("filename", doc.name.clone())
                            .with("contents", doc.text())
                    })
                    .collect()
            }
            LogicalOp::SemFilter { instruction } => {
                let verdicts =
                    self.parallel_llm(&records, lake.as_deref(), parallelism, |llm, subject| {
                        llm.invoke(
                            step.model,
                            &LlmTask::Filter {
                                instruction,
                                subject,
                            },
                        )
                    });
                records
                    .into_iter()
                    .zip(verdicts)
                    .filter(|(_, v)| v.truthy())
                    .map(|(r, _)| r)
                    .collect()
            }
            LogicalOp::SemExtract {
                instruction,
                fields,
            } => {
                let mut out = records;
                // One LLM pass per extracted field (documented API shape).
                for field in fields {
                    let values =
                        self.parallel_llm(&out, lake.as_deref(), parallelism, |llm, subject| {
                            llm.invoke(
                                step.model,
                                &LlmTask::Extract {
                                    instruction,
                                    field: &field.name,
                                    field_desc: &field.desc,
                                    subject,
                                },
                            )
                        });
                    for (rec, value) in out.iter_mut().zip(values) {
                        rec.set(field.name.clone(), value);
                    }
                }
                out
            }
            LogicalOp::SemMap {
                instruction,
                output,
                target_tokens,
            } => {
                let values =
                    self.parallel_llm(&records, lake.as_deref(), parallelism, |llm, subject| {
                        llm.invoke(
                            step.model,
                            &LlmTask::Map {
                                instruction,
                                subject,
                                target_tokens: *target_tokens,
                            },
                        )
                    });
                let mut out = records;
                for (rec, value) in out.iter_mut().zip(values) {
                    rec.set(output.clone(), value);
                }
                out
            }
            LogicalOp::SemAgg { instruction } => {
                // Aggregate over (bounded) renders of every record. The
                // cap is a physical-plan parameter; dropping inputs past
                // it is counted and warned about, never silent.
                let cap = step.agg_input_cap.max(1);
                let truncated = records.len().saturating_sub(cap);
                if truncated > 0 {
                    let msg = format!(
                        "sem_agg truncated {truncated} of {} input records \
                         (agg_input_cap={cap}); raise the cap to aggregate over more",
                        records.len()
                    );
                    eprintln!("warning: {msg}");
                    if self.env.recorder.is_enabled() {
                        self.env.recorder.counter_add(
                            aida_obs::registry::AGG_TRUNCATED_RECORDS,
                            truncated as u64,
                        );
                    }
                    warnings.push(msg);
                }
                let mut combined = String::new();
                for rec in records.iter().take(cap) {
                    let render = rec.render();
                    let take = render.len().min(600);
                    combined.push_str(&render[..floor_char_boundary(&render, take)]);
                    combined.push('\n');
                }
                let subject = Subject::text_only("aggregate-input", &combined);
                let resp = self.env.llm.invoke(
                    step.model,
                    &LlmTask::Map {
                        instruction,
                        subject,
                        target_tokens: 120,
                    },
                );
                self.env.clock.advance(resp.latency_s);
                vec![Record::new("sem_agg").with("answer", resp.value)]
            }
            LogicalOp::SemTopK { query, k } => {
                let q = self.env.embedder.embed(query);
                let mut scored: Vec<(f32, Record)> = records
                    .into_iter()
                    .map(|rec| {
                        let text = subject_text(&rec);
                        let score = aida_llm::embed::cosine(&q, &self.env.embedder.embed(&text));
                        (score, rec)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                scored.truncate(*k);
                // Proxy scoring is cheap but not free: small per-record time.
                let n = scored.len().max(1);
                self.env
                    .clock
                    .advance_parallel(0.003 * n as f64, n, parallelism);
                scored.into_iter().map(|(_, r)| r).collect()
            }
            LogicalOp::SemGroupBy { instruction, k } => {
                if records.is_empty() {
                    return records;
                }
                let k = (*k).clamp(1, records.len());
                // Embed every record and run a few Lloyd iterations.
                let vectors: Vec<Vec<f32>> = records
                    .iter()
                    .map(|rec| self.env.embedder.embed(&subject_text(rec)))
                    .collect();
                let assignments = kmeans_assign(&vectors, k);
                // One labelling call per cluster over a bounded sample of
                // its members.
                let mut labels: Vec<String> = Vec::with_capacity(k);
                let mut total_latency = 0.0;
                for cluster in 0..k {
                    let mut sample = String::new();
                    for (rec, &a) in records.iter().zip(&assignments) {
                        if a == cluster && sample.len() < 1_500 {
                            let text = subject_text(rec);
                            let take = text.len().min(300);
                            sample.push_str(&text[..floor_char_boundary(&text, take)]);
                            sample.push('\n');
                        }
                    }
                    if sample.is_empty() {
                        labels.push(format!("group {cluster}"));
                        continue;
                    }
                    let prompt = format!(
                        "name the common theme of these items, with respect to: {instruction}"
                    );
                    let subject = Subject::text_only("groupby-cluster", &sample);
                    let resp = self.env.llm.invoke(
                        step.model,
                        &LlmTask::Map {
                            instruction: &prompt,
                            subject,
                            target_tokens: 12,
                        },
                    );
                    total_latency += resp.latency_s;
                    labels.push(resp.text);
                }
                self.env
                    .clock
                    .advance_parallel(total_latency, k, parallelism);
                let mut out = records;
                for (rec, a) in out.iter_mut().zip(assignments) {
                    rec.set("group", Value::Str(labels[a].clone()));
                }
                out
            }
            LogicalOp::SemJoin { instruction, right } => {
                // Materialize the right side with the same model/parallelism.
                let right_plan = PhysicalPlan::uniform(right, step.model, parallelism);
                let right_report = self.execute(&right_plan);
                warnings.extend(right_report.warnings.iter().cloned());
                let mut out = Vec::new();
                // Quadratic NL-predicate join.
                let mut pair_subjects: Vec<(usize, usize, String)> = Vec::new();
                for (i, l) in records.iter().enumerate() {
                    for (j, r) in right_report.records.iter().enumerate() {
                        pair_subjects.push((
                            i,
                            j,
                            format!("LEFT: {}\nRIGHT: {}", subject_text(l), subject_text(r)),
                        ));
                    }
                }
                let verdicts = self.coalesced_parallel(
                    pair_subjects.len(),
                    |i| pair_subjects[i].2.as_str(),
                    parallelism,
                    |i| {
                        let subject = Subject::text_only("join-pair", &pair_subjects[i].2);
                        self.env.llm.invoke(
                            step.model,
                            &LlmTask::Filter {
                                instruction,
                                subject,
                            },
                        )
                    },
                );
                let total_latency: f64 = verdicts.iter().map(|r| r.latency_s).sum();
                self.env
                    .clock
                    .advance_parallel(total_latency, verdicts.len(), parallelism);
                for ((i, j, _), verdict) in pair_subjects.iter().zip(&verdicts) {
                    if verdict.value.truthy() {
                        let mut merged = records[*i].clone();
                        for (name, value) in right_report.records[*j].iter() {
                            merged.set(format!("right_{name}"), value.clone());
                        }
                        out.push(merged);
                    }
                }
                out
            }
            LogicalOp::Project { columns } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                records.iter().map(|r| r.project(&cols)).collect()
            }
            LogicalOp::Limit { n } => records.into_iter().take(*n).collect(),
            LogicalOp::Count => {
                vec![Record::new("count").with("count", Value::Int(records.len() as i64))]
            }
        }
    }

    /// Runs one LLM call per record across workers, advancing the clock by
    /// the batch critical path; returns per-record values in input order.
    fn parallel_llm<F>(
        &self,
        records: &[Record],
        lake: Option<&DataLake>,
        parallelism: usize,
        call: F,
    ) -> Vec<Value>
    where
        F: Fn(&SimLlm, Subject<'_>) -> aida_llm::LlmResponse + Sync,
    {
        let llm = &self.env.llm;
        let texts: Vec<String> = records.iter().map(subject_text).collect();
        let subject_of = |i: usize| {
            let rec = &records[i];
            let origin = lake.and_then(|l| l.get(&rec.source)).map(Arc::as_ref);
            Subject {
                name: Cow::Borrowed(rec.source.as_str()),
                text: Cow::Borrowed(texts[i].as_str()),
                labels: origin.map(|d| &d.labels),
            }
        };
        let responses = self.coalesced_parallel(
            records.len(),
            |i| (records[i].source.as_str(), texts[i].as_str()),
            parallelism,
            |i| call(llm, subject_of(i)),
        );
        let total_latency: f64 = responses.iter().map(|r| r.latency_s).sum();
        self.env
            .clock
            .advance_parallel(total_latency, responses.len(), parallelism);
        responses.into_iter().map(|r| r.value).collect()
    }

    /// Fans `call` over `0..n` on worker threads. With the semantic
    /// cache enabled, duplicate calls inside one virtually-simultaneous
    /// batch are deduplicated *before* dispatch: whether a record is the
    /// computing miss or a coalesced duplicate must not depend on thread
    /// timing, or seeded replay would stop being byte-identical. The
    /// first occurrence of each key computes; duplicates share its
    /// response and are counted as `coalesced` hits.
    fn coalesced_parallel<K, KF, F>(
        &self,
        n: usize,
        key_of: KF,
        parallelism: usize,
        call: F,
    ) -> Vec<aida_llm::LlmResponse>
    where
        K: Eq + std::hash::Hash,
        KF: Fn(usize) -> K,
        F: Fn(usize) -> aida_llm::LlmResponse + Sync,
    {
        if self.env.llm.cache().is_none() {
            let indices: Vec<usize> = (0..n).collect();
            return parallel_map(&indices, parallelism, |&i| call(i));
        }
        let (rep, uniques) = dedup_indices((0..n).map(key_of));
        let unique_responses = parallel_map(&uniques, parallelism, |&i| call(i));
        let mut resp_of: Vec<Option<aida_llm::LlmResponse>> = vec![None; n];
        for (&i, resp) in uniques.iter().zip(unique_responses) {
            resp_of[i] = Some(resp);
        }
        let coalesced = (n - uniques.len()) as u64;
        if coalesced > 0 {
            if let Some(cache) = self.env.llm.cache() {
                cache.record_coalesced(coalesced);
            }
            if self.env.recorder.is_enabled() {
                self.env
                    .recorder
                    .counter_add(aida_obs::registry::CACHE_COALESCED, coalesced);
            }
        }
        rep.into_iter()
            .map(|r| resp_of[r].clone().expect("representative computed"))
            .collect()
    }
}

/// Maps each index to its first occurrence by key. Returns the
/// representative index per position and the list of unique (first
/// occurrence) indices in order.
fn dedup_indices<K: Eq + std::hash::Hash>(
    keys: impl Iterator<Item = K>,
) -> (Vec<usize>, Vec<usize>) {
    let mut first: std::collections::HashMap<K, usize> = std::collections::HashMap::new();
    let mut rep = Vec::new();
    let mut uniques = Vec::new();
    for (i, key) in keys.enumerate() {
        match first.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => rep.push(*slot.get()),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(i);
                rep.push(i);
                uniques.push(i);
            }
        }
    }
    (rep, uniques)
}

/// The text a model "reads" for a record: the raw document contents when
/// the record still carries them, otherwise the rendered fields.
pub fn subject_text(rec: &Record) -> String {
    match rec.get("contents") {
        Some(Value::Str(contents)) => contents.clone(),
        _ => rec.render(),
    }
}

fn floor_char_boundary(s: &str, mut idx: usize) -> usize {
    idx = idx.min(s.len());
    while idx > 0 && !s.is_char_boundary(idx) {
        idx -= 1;
    }
    idx
}

/// Deterministic k-means assignment (Lloyd's algorithm, 6 iterations,
/// farthest-point initialization) used by the semantic group-by.
fn kmeans_assign(vectors: &[Vec<f32>], k: usize) -> Vec<usize> {
    // Farthest-point initialization (deterministic k-means++ flavour):
    // start from the first vector, then repeatedly add the point farthest
    // from its nearest chosen centroid.
    let mut centroids: Vec<Vec<f32>> = vec![vectors[0].clone()];
    while centroids.len() < k {
        let (mut best_i, mut best_d) = (0usize, -1.0f32);
        for (i, v) in vectors.iter().enumerate() {
            let nearest = centroids
                .iter()
                .map(|c| aida_llm::embed::l2_sq(v, c))
                .fold(f32::INFINITY, f32::min);
            if nearest > best_d {
                best_d = nearest;
                best_i = i;
            }
        }
        centroids.push(vectors[best_i].clone());
    }
    let mut assignments = vec![0usize; vectors.len()];
    for _ in 0..6 {
        for (i, v) in vectors.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = aida_llm::embed::l2_sq(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f32>> = vectors
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(v, _)| v)
                .collect();
            if members.is_empty() {
                continue;
            }
            for (dim, slot) in centroid.iter_mut().enumerate() {
                *slot = members.iter().map(|m| m[dim]).sum::<f32>() / members.len() as f32;
            }
        }
    }
    assignments
}

/// Deterministic fork-join map: splits `items` into `parallelism` chunks,
/// processes them on scoped threads, and returns results in input order.
/// The ceiling on `parallelism` is the caller's job — the execution
/// engine clamps plan parallelism to [`ExecEnv::max_parallelism`].
pub fn parallel_map<T, R, F>(items: &[T], parallelism: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let p = parallelism.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    if p == 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(p);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let mut slots: &mut [Option<R>] = &mut results;
    std::thread::scope(|scope| {
        let mut offset = 0usize;
        let mut handles = Vec::new();
        while offset < items.len() {
            let end = (offset + chunk).min(items.len());
            let (head, tail) = slots.split_at_mut(end - offset);
            slots = tail;
            let batch = &items[offset..end];
            let f = &f;
            handles.push(scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(batch) {
                    *slot = Some(f(item));
                }
            }));
            offset = end;
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use aida_data::{DataLake, Document, Field};
    use aida_llm::ModelId;

    fn env() -> ExecEnv {
        ExecEnv::new(SimLlm::new(7))
    }

    fn theft_lake() -> DataLake {
        DataLake::from_docs([
            Document::new(
                "national.csv",
                "year,identity_theft_reports\n2001,86250\n2005,200000\n2024,1135291\n",
            )
            .with_label("difficulty", 0.0),
            Document::new("pipeline.txt", "natural gas pipeline maintenance schedule")
                .with_label("difficulty", 0.0),
            Document::new("trends.txt", "identity theft trends rose through 2024")
                .with_label("difficulty", 0.0),
        ])
    }

    #[test]
    fn recorder_spans_mirror_operator_stats() {
        let recorder = Recorder::new();
        let env = ExecEnv::new(SimLlm::new(7)).with_recorder(recorder.clone());
        let ds = Dataset::scan(&theft_lake(), "lake").sem_filter("mentions identity theft");
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        let trace = recorder.trace();
        assert_eq!(trace.spans.len(), report.stats.operators.len());
        for (span, stats) in trace.spans.iter().zip(&report.stats.operators) {
            assert_eq!(span.name, stats.op);
            assert_eq!(span.rows_in, Some(stats.rows_in));
            assert_eq!(span.rows_out, Some(stats.rows_out));
            assert_eq!(span.calls as usize, stats.calls);
            assert!((span.cost_usd - stats.cost_usd).abs() < 1e-9);
            assert!((span.duration_s() - stats.time_s).abs() < 1e-9);
        }
        // The filter's model attribute and selectivity histogram landed.
        let filter = &trace.spans[1];
        assert!(filter
            .attrs
            .iter()
            .any(|(k, v)| k == "model" && !v.is_empty()));
        assert!(trace.histograms["operator.selectivity"].count >= 1);
    }

    #[test]
    fn scan_produces_filename_and_contents() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake");
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        assert_eq!(report.records.len(), 3);
        assert_eq!(
            report.records[0].get("filename"),
            Some(&Value::Str("national.csv".into()))
        );
        assert!(report.records[0].get("contents").is_some());
    }

    #[test]
    fn filter_keeps_matching_records_and_bills() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake").sem_filter("mentions identity theft");
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        let names: Vec<&str> = report.records.iter().map(|r| r.source.as_str()).collect();
        assert!(names.contains(&"national.csv"));
        assert!(names.contains(&"trends.txt"));
        assert!(!names.contains(&"pipeline.txt"));
        assert!(report.cost() > 0.0);
        assert!(report.time() > 0.0);
        // Filter stats: 3 in, 2 out, 3 calls.
        let filter = &report.stats.operators[1];
        assert_eq!(filter.rows_in, 3);
        assert_eq!(filter.rows_out, 2);
        assert_eq!(filter.calls, 3);
    }

    #[test]
    fn extract_reads_table_values() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake")
            .sem_filter("mentions identity theft reports by year in a table")
            .sem_extract(
                "find the number of identity theft reports in 2024",
                vec![Field::described(
                    "thefts_2024",
                    "identity theft reports in 2024",
                )],
            );
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        let national = report
            .records
            .iter()
            .find(|r| r.source == "national.csv")
            .expect("national file survives filter");
        assert_eq!(national.get("thefts_2024"), Some(&Value::Int(1_135_291)));
    }

    #[test]
    fn map_adds_summary_field() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake").sem_map("summarize", "summary", 20);
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        for rec in &report.records {
            let summary = rec.get("summary").unwrap().as_str().unwrap();
            assert!(!summary.is_empty());
        }
    }

    #[test]
    fn agg_reduces_to_single_answer() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake").sem_agg("how many files mention theft");
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].get("answer").is_some());
    }

    #[test]
    fn topk_keeps_most_relevant_without_llm_cost() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake").sem_topk("identity theft statistics", 1);
        let plan = PhysicalPlan::default_for(ds.plan());
        let before = env.llm.meter().snapshot();
        let report = Executor::new(&env).execute(&plan);
        assert_eq!(report.records.len(), 1);
        assert_ne!(report.records[0].source, "pipeline.txt");
        let delta = env.llm.meter().snapshot().since(&before);
        assert_eq!(delta.total_calls(), 0, "top-k is proxy scored");
    }

    #[test]
    fn group_by_labels_semantic_clusters() {
        let env = env();
        let lake = DataLake::from_docs([
            Document::new(
                "t1.txt",
                "identity theft reports fraud statistics consumer sentinel",
            ),
            Document::new(
                "t2.txt",
                "identity theft reports fraud statistics yearly trends",
            ),
            Document::new(
                "g1.txt",
                "natural gas pipeline maintenance schedule compressor station",
            ),
            Document::new(
                "g2.txt",
                "natural gas pipeline maintenance schedule capacity notes",
            ),
        ]);
        let ds = Dataset::scan(&lake, "docs").sem_group_by("topic of the document", 2);
        let report = Executor::new(&env).execute(&PhysicalPlan::default_for(ds.plan()));
        assert_eq!(report.records.len(), 4);
        // Every record gets a group label; the theft docs share one and the
        // gas docs share the other.
        let group_of = |name: &str| {
            report
                .records
                .iter()
                .find(|r| r.source == name)
                .and_then(|r| r.get("group"))
                .cloned()
                .unwrap()
        };
        assert_eq!(group_of("t1.txt"), group_of("t2.txt"));
        assert_eq!(group_of("g1.txt"), group_of("g2.txt"));
        assert_ne!(group_of("t1.txt"), group_of("g1.txt"));
        // One labelling call per cluster.
        let gb = report
            .stats
            .operators
            .iter()
            .find(|o| o.op == "sem_groupby")
            .unwrap();
        assert_eq!(gb.calls, 2);
    }

    #[test]
    fn group_by_handles_degenerate_inputs() {
        let env = env();
        let lake = DataLake::from_docs([Document::new("only.txt", "one document")]);
        let ds = Dataset::scan(&lake, "docs").sem_group_by("topic", 5);
        let report = Executor::new(&env).execute(&PhysicalPlan::default_for(ds.plan()));
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].get("group").is_some());
        // Empty input passes through untouched.
        let empty = DataLake::new();
        let ds = Dataset::scan(&empty, "docs").sem_group_by("topic", 3);
        let report = Executor::new(&env).execute(&PhysicalPlan::default_for(ds.plan()));
        assert!(report.records.is_empty());
    }

    #[test]
    fn join_merges_matching_pairs() {
        let env = env();
        let left_lake = DataLake::from_docs([
            Document::new("q1.txt", "identity theft question"),
            Document::new("q2.txt", "pipeline maintenance question"),
        ]);
        let left = Dataset::scan(&left_lake, "questions");
        let right = Dataset::scan(&theft_lake(), "docs");
        let ds = left.sem_join(
            "the left item and right item discuss identity theft topics",
            &right,
        );
        let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
        let report = Executor::new(&env).execute(&plan);
        // Matching pairs carry fields from both sides.
        assert!(report
            .records
            .iter()
            .any(|r| r.get("right_filename").is_some()));
    }

    #[test]
    fn project_limit_count() {
        let env = env();
        let ds = Dataset::scan(&theft_lake(), "lake")
            .project(&["filename"])
            .limit(2)
            .count();
        let plan = PhysicalPlan::default_for(ds.plan());
        let report = Executor::new(&env).execute(&plan);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].get("count"), Some(&Value::Int(2)));
    }

    #[test]
    fn parallelism_reduces_virtual_time_not_results() {
        let lake = theft_lake();
        let run = |parallelism: usize| {
            let env = ExecEnv::new(SimLlm::new(7));
            let ds = Dataset::scan(&lake, "lake").sem_filter("mentions identity theft");
            let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, parallelism);
            let report = Executor::new(&env).execute(&plan);
            (
                report
                    .records
                    .iter()
                    .map(|r| r.source.clone())
                    .collect::<Vec<_>>(),
                report.time(),
            )
        };
        let (seq_records, seq_time) = run(1);
        let (par_records, par_time) = run(3);
        assert_eq!(
            seq_records, par_records,
            "parallelism must not change results"
        );
        assert!(
            par_time < seq_time,
            "parallel {par_time} vs sequential {seq_time}"
        );
    }

    #[test]
    fn cheaper_model_costs_less() {
        let lake = theft_lake();
        let cost_with = |model: ModelId| {
            let env = ExecEnv::new(SimLlm::new(7));
            let ds = Dataset::scan(&lake, "lake").sem_filter("mentions identity theft");
            let plan = PhysicalPlan::uniform(ds.plan(), model, 4);
            Executor::new(&env).execute(&plan).cost()
        };
        assert!(cost_with(ModelId::Nano) < cost_with(ModelId::Flagship));
    }

    mod properties {
        use super::*;
        use crate::dataset::Dataset;
        use proptest::prelude::*;

        fn lake_of(n: usize, relevant_every: usize) -> DataLake {
            DataLake::from_docs((0..n).map(|i| {
                let content = if relevant_every > 0 && i % relevant_every == 0 {
                    format!("memo {i}: identity theft statistics")
                } else {
                    format!("memo {i}: cafeteria menu")
                };
                Document::new(format!("m{i}.txt"), content).with_label("difficulty", 0.0)
            }))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            #[test]
            fn filter_output_is_subset_of_scan(n in 1usize..30, every in 1usize..5, seed in 0u64..50) {
                let lake = lake_of(n, every);
                let env = ExecEnv::new(SimLlm::new(seed));
                let ds = Dataset::scan(&lake, "memos").sem_filter("mentions identity theft");
                let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
                let report = Executor::new(&env).execute(&plan);
                let names: std::collections::HashSet<&str> =
                    lake.names().into_iter().collect();
                prop_assert!(report.records.len() <= n);
                for rec in &report.records {
                    prop_assert!(names.contains(rec.source.as_str()));
                }
                // Stats invariants: filters call once per input record.
                let filter = &report.stats.operators[1];
                prop_assert_eq!(filter.rows_in, n);
                prop_assert_eq!(filter.calls, n);
                prop_assert!(filter.rows_out <= filter.rows_in);
                prop_assert!(filter.cost_usd > 0.0);
            }

            #[test]
            fn limit_truncates_exactly(n in 1usize..30, k in 0usize..35) {
                let lake = lake_of(n, 1);
                let env = ExecEnv::new(SimLlm::new(1));
                let ds = Dataset::scan(&lake, "memos").limit(k);
                let report = Executor::new(&env)
                    .execute(&PhysicalPlan::default_for(ds.plan()));
                prop_assert_eq!(report.records.len(), k.min(n));
            }

            #[test]
            fn topk_never_exceeds_k(n in 1usize..25, k in 0usize..30) {
                let lake = lake_of(n, 2);
                let env = ExecEnv::new(SimLlm::new(1));
                let ds = Dataset::scan(&lake, "memos").sem_topk("identity theft", k);
                let report = Executor::new(&env)
                    .execute(&PhysicalPlan::default_for(ds.plan()));
                prop_assert_eq!(report.records.len(), k.min(n));
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 7, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
    }

    #[test]
    fn parallel_map_order_stable_with_excess_parallelism() {
        // More workers than items: every chunk holds one item.
        let items: Vec<usize> = (0..5).collect();
        let out = parallel_map(&items, 64, |x| x + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        // Empty input with huge parallelism spawns nothing.
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(&empty, 1000, |x| *x).is_empty());
        // Single item short-circuits to the sequential path.
        assert_eq!(parallel_map(&[9usize], 64, |x| x * 3), vec![27]);
    }

    #[test]
    fn env_ceiling_caps_plan_parallelism() {
        let lake = theft_lake();
        let run = |max_parallelism: usize| {
            let env = ExecEnv::new(SimLlm::new(7)).with_max_parallelism(max_parallelism);
            assert_eq!(env.effective_parallelism(64), max_parallelism.min(64));
            let ds = Dataset::scan(&lake, "lake").sem_filter("mentions identity theft");
            let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 64);
            let report = Executor::new(&env).execute(&plan);
            let names: Vec<String> = report.records.iter().map(|r| r.source.clone()).collect();
            (names, report.time())
        };
        let (capped_records, capped_time) = run(1);
        let (wide_records, wide_time) = run(64);
        assert_eq!(
            capped_records, wide_records,
            "ceiling must not change results"
        );
        assert!(
            capped_time > wide_time,
            "capped {capped_time} vs wide {wide_time}"
        );
    }

    #[test]
    fn agg_truncation_is_counted_and_warned() {
        let recorder = Recorder::new();
        let env = ExecEnv::new(SimLlm::new(7)).with_recorder(recorder.clone());
        let lake = DataLake::from_docs(
            (0..6).map(|i| Document::new(format!("d{i}.txt"), format!("memo {i} theft"))),
        );
        let ds = Dataset::scan(&lake, "docs").sem_agg("how many mention theft");
        let plan = PhysicalPlan::default_for(ds.plan()).with_agg_input_cap(4);
        let report = Executor::new(&env).execute(&plan);
        assert_eq!(report.warnings.len(), 1);
        assert!(
            report.warnings[0].contains("truncated 2 of 6"),
            "{}",
            report.warnings[0]
        );
        assert_eq!(recorder.trace().counters["agg.truncated_records"], 2);
        // Under the cap: no warning, no counter.
        let env = ExecEnv::new(SimLlm::new(7)).with_recorder(Recorder::new());
        let plan = PhysicalPlan::default_for(ds.plan()).with_agg_input_cap(100);
        let report = Executor::new(&env).execute(&plan);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn cache_dedups_duplicate_batch_records_deterministically() {
        use aida_llm::cache::{CacheConfig, SemanticCache};
        // Four copies of one document plus two distinct ones: with the
        // cache on, one batch bills only the unique calls and counts the
        // duplicates as coalesced — identically on every run.
        let lake = DataLake::from_docs([
            Document::new("a.txt", "identity theft memo"),
            Document::new("a2.txt", "identity theft memo"),
            Document::new("a3.txt", "identity theft memo"),
            Document::new("b.txt", "cafeteria menu"),
        ]);
        let run = || {
            let llm = SimLlm::new(7).with_cache(SemanticCache::new(CacheConfig::default()));
            let env = ExecEnv::new(llm);
            let ds = Dataset::scan(&lake, "docs").sem_filter("mentions identity theft");
            let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
            let report = Executor::new(&env).execute(&plan);
            let stats = env.llm.cache().unwrap().stats();
            let names: Vec<String> = report.records.iter().map(|r| r.source.clone()).collect();
            (names, env.llm.meter().snapshot().total_calls(), stats)
        };
        let (names, billed, stats) = run();
        // Distinct sources are distinct subjects (the subject name feeds
        // the noise channel), so all four still bill — but coalescing is
        // exercised through the join path below. Here: no duplicates by
        // key (source differs), so 4 misses.
        assert_eq!(billed, 4);
        assert_eq!(stats.misses, 4);
        assert_eq!(names.len(), 3, "{names:?}");
        assert_eq!(run(), run(), "replay is byte-identical");
    }

    #[test]
    fn join_dedups_identical_pairs_when_cached() {
        use aida_llm::cache::{CacheConfig, SemanticCache};
        // Two identical left records produce identical join-pair texts:
        // the cache-aware path bills each unique pair once.
        let left_lake = DataLake::from_docs([
            Document::new("q1.txt", "identity theft question"),
            Document::new("q2.txt", "identity theft question"),
        ]);
        let right_lake = DataLake::from_docs([Document::new("d.txt", "identity theft stats")]);
        let run = |cached: bool| {
            let mut llm = SimLlm::new(7);
            if cached {
                llm = llm.with_cache(SemanticCache::new(CacheConfig::default()));
            }
            let env = ExecEnv::new(llm);
            let left = Dataset::scan(&left_lake, "questions");
            let right = Dataset::scan(&right_lake, "docs");
            let ds = left.sem_join("both discuss identity theft", &right);
            let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
            let report = Executor::new(&env).execute(&plan);
            let join_calls: u64 = env.llm.meter().snapshot().total_calls();
            let coalesced = env.llm.cache().map(|c| c.stats().coalesced).unwrap_or(0);
            (report.records.len(), join_calls, coalesced)
        };
        let (rows_plain, calls_plain, _) = run(false);
        let (rows_cached, calls_cached, coalesced) = run(true);
        assert_eq!(rows_plain, rows_cached, "dedup must not change results");
        assert_eq!(coalesced, 1, "one duplicate pair coalesced");
        assert_eq!(calls_cached + 1, calls_plain, "one call saved");
    }
}
