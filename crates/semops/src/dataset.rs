//! The fluent `Dataset` builder.

use crate::plan::{LogicalOp, LogicalPlan};
use aida_data::{DataLake, Field};
use std::sync::Arc;

/// A lazy, immutable semantic-operator pipeline over a data lake.
///
/// Mirrors Palimpzest's `Dataset`: construction is free; nothing executes
/// until the plan is optimized and run.
///
/// ```
/// use aida_semops::Dataset;
/// use aida_data::{DataLake, Document, Field};
///
/// let lake = DataLake::from_docs([Document::new("a.eml", "body")]);
/// let ds = Dataset::scan(&lake, "emails")
///     .sem_filter("mentions the Raptor transaction")
///     .sem_extract("get the sender", vec![Field::new("sender")])
///     .limit(10);
/// assert_eq!(ds.plan().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    plan: LogicalPlan,
}

impl Dataset {
    /// Starts a pipeline by scanning a lake. Each document becomes a record
    /// with `filename` and `contents` fields.
    pub fn scan(lake: &DataLake, label: impl Into<String>) -> Dataset {
        Dataset {
            plan: LogicalPlan::new(vec![LogicalOp::Scan {
                lake: Arc::new(lake.clone()),
                label: label.into(),
            }]),
        }
    }

    /// Wraps an existing logical plan.
    pub fn from_plan(plan: LogicalPlan) -> Dataset {
        Dataset { plan }
    }

    /// The underlying logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Keep records satisfying a natural-language predicate.
    pub fn sem_filter(&self, instruction: impl Into<String>) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemFilter {
                instruction: instruction.into(),
            }),
        }
    }

    /// Extract typed fields per a natural-language instruction.
    pub fn sem_extract(&self, instruction: impl Into<String>, fields: Vec<Field>) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemExtract {
                instruction: instruction.into(),
                fields,
            }),
        }
    }

    /// Add one free-text output field (e.g. a summary), budgeted at
    /// `target_tokens` completion tokens.
    pub fn sem_map(
        &self,
        instruction: impl Into<String>,
        output: impl Into<String>,
        target_tokens: usize,
    ) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemMap {
                instruction: instruction.into(),
                output: output.into(),
                target_tokens,
            }),
        }
    }

    /// Reduce all records to a single answer record.
    pub fn sem_agg(&self, instruction: impl Into<String>) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemAgg {
                instruction: instruction.into(),
            }),
        }
    }

    /// Keep the `k` records most relevant to a query.
    pub fn sem_topk(&self, query: impl Into<String>, k: usize) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemTopK {
                query: query.into(),
                k,
            }),
        }
    }

    /// Cluster records into `k` semantic groups, labelling each with an
    /// LLM call; adds a `group` field to every record.
    pub fn sem_group_by(&self, instruction: impl Into<String>, k: usize) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemGroupBy {
                instruction: instruction.into(),
                k,
            }),
        }
    }

    /// Natural-language predicate join against another dataset.
    pub fn sem_join(&self, instruction: impl Into<String>, right: &Dataset) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::SemJoin {
                instruction: instruction.into(),
                right: right.plan.clone(),
            }),
        }
    }

    /// Classical projection.
    pub fn project(&self, columns: &[&str]) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::Project {
                columns: columns.iter().map(|c| c.to_string()).collect(),
            }),
        }
    }

    /// Classical limit.
    pub fn limit(&self, n: usize) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::Limit { n }),
        }
    }

    /// Count records into a single `count` record.
    pub fn count(&self) -> Dataset {
        Dataset {
            plan: self.plan.then(LogicalOp::Count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::Document;

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("a.txt", "alpha"),
            Document::new("b.txt", "beta"),
        ])
    }

    #[test]
    fn builder_chains_ops_in_order() {
        let ds = Dataset::scan(&lake(), "files")
            .sem_filter("about alpha")
            .sem_map("summarize", "summary", 50)
            .project(&["filename", "summary"])
            .limit(3);
        let names: Vec<&str> = ds.plan().ops().iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec!["scan", "sem_filter", "sem_map", "project", "limit"]
        );
    }

    #[test]
    fn builder_is_persistent() {
        let base = Dataset::scan(&lake(), "files");
        let a = base.sem_filter("a");
        let b = base.sem_filter("b");
        assert_eq!(base.plan().len(), 1);
        assert_eq!(a.plan().len(), 2);
        assert_eq!(b.plan().ops()[1].instruction(), Some("b"));
    }

    #[test]
    fn join_embeds_right_plan() {
        let left = Dataset::scan(&lake(), "l");
        let right = Dataset::scan(&lake(), "r").sem_filter("keep");
        let joined = left.sem_join("left matches right", &right);
        match &joined.plan().ops()[1] {
            LogicalOp::SemJoin { right, .. } => assert_eq!(right.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
