//! UCB1 multi-armed bandit.
//!
//! Abacus gathers statistics on (operator, model) performance with a
//! bandit-driven sampling phase: arms whose quality is still uncertain get
//! pulled more, arms that are clearly good or clearly bad stop consuming
//! sample budget. This module is the allocation policy; the sampler in
//! [`crate::sampler`] supplies the rewards.

/// One bandit arm's running statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArmStats {
    /// Number of pulls.
    pub pulls: u64,
    /// Sum of observed rewards.
    pub reward_sum: f64,
}

impl ArmStats {
    /// Mean observed reward (0 when never pulled).
    pub fn mean(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.reward_sum / self.pulls as f64
        }
    }
}

/// A UCB1 bandit over a fixed set of arms.
#[derive(Debug, Clone)]
pub struct Ucb1 {
    arms: Vec<ArmStats>,
    total_pulls: u64,
    exploration: f64,
}

impl Ucb1 {
    /// Creates a bandit with `n_arms` arms and the classic √2 exploration
    /// constant.
    pub fn new(n_arms: usize) -> Self {
        Ucb1 {
            arms: vec![ArmStats::default(); n_arms],
            total_pulls: 0,
            exploration: std::f64::consts::SQRT_2,
        }
    }

    /// Overrides the exploration constant (higher explores more).
    pub fn with_exploration(mut self, c: f64) -> Self {
        self.exploration = c.max(0.0);
        self
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.arms.len()
    }

    /// Selects the next arm to pull: any never-pulled arm first (in index
    /// order, deterministic), then the arm maximizing the UCB index.
    pub fn select(&self) -> usize {
        if let Some(idx) = self.arms.iter().position(|a| a.pulls == 0) {
            return idx;
        }
        let ln_t = (self.total_pulls.max(1) as f64).ln();
        let mut best = 0usize;
        let mut best_index = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let bonus = self.exploration * (ln_t / arm.pulls as f64).sqrt();
            let index = arm.mean() + bonus;
            if index > best_index {
                best_index = index;
                best = i;
            }
        }
        best
    }

    /// Records a reward for an arm.
    pub fn update(&mut self, arm: usize, reward: f64) {
        assert!(arm < self.arms.len(), "arm out of range");
        self.arms[arm].pulls += 1;
        self.arms[arm].reward_sum += reward.clamp(0.0, 1.0);
        self.total_pulls += 1;
    }

    /// The arm's running stats.
    pub fn stats(&self, arm: usize) -> &ArmStats {
        &self.arms[arm]
    }

    /// Mean reward per arm.
    pub fn means(&self) -> Vec<f64> {
        self.arms.iter().map(ArmStats::mean).collect()
    }

    /// Total pulls across arms.
    pub fn total_pulls(&self) -> u64 {
        self.total_pulls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_llm::noise::KeyedRng;

    #[test]
    fn explores_every_arm_first() {
        let mut bandit = Ucb1::new(3);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let arm = bandit.select();
            seen.push(arm);
            bandit.update(arm, 0.5);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn converges_to_best_arm() {
        // Arm rewards: 0.2, 0.8, 0.5 (deterministic Bernoulli streams).
        let mut bandit = Ucb1::new(3);
        let probs = [0.2, 0.8, 0.5];
        let mut rng = KeyedRng::new(42);
        let mut pulls = [0usize; 3];
        for _ in 0..400 {
            let arm = bandit.select();
            pulls[arm] += 1;
            let reward = if rng.chance(probs[arm]) { 1.0 } else { 0.0 };
            bandit.update(arm, reward);
        }
        assert!(
            pulls[1] > pulls[0] * 2,
            "best arm should dominate: {pulls:?}"
        );
        assert!(
            pulls[1] > pulls[2],
            "best arm should beat middle: {pulls:?}"
        );
        let means = bandit.means();
        assert!((means[1] - 0.8).abs() < 0.15);
    }

    #[test]
    fn rewards_clamp_to_unit_interval() {
        let mut bandit = Ucb1::new(1);
        bandit.update(0, 5.0);
        bandit.update(0, -3.0);
        assert!((bandit.stats(0).mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arm out of range")]
    fn update_checks_bounds() {
        let mut bandit = Ucb1::new(2);
        bandit.update(5, 1.0);
    }

    #[test]
    fn zero_exploration_is_greedy() {
        let mut bandit = Ucb1::new(2).with_exploration(0.0);
        bandit.update(0, 1.0);
        bandit.update(1, 0.0);
        for _ in 0..10 {
            assert_eq!(bandit.select(), 0);
            bandit.update(0, 1.0);
        }
    }
}
