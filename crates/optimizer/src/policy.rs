//! Optimization policies: how to pick one plan from the Pareto frontier.

use crate::cost::PlanEstimate;

/// A plan-selection policy (Abacus-style).
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Maximize quality, optionally under a dollar budget.
    MaxQuality {
        /// Reject plans predicted to cost more than this.
        cost_budget: Option<f64>,
    },
    /// Minimize dollars among plans meeting a quality floor.
    MinCost {
        /// Minimum acceptable predicted quality.
        quality_floor: f64,
    },
    /// Minimize time among plans meeting a quality floor.
    MinTime {
        /// Minimum acceptable predicted quality.
        quality_floor: f64,
    },
}

impl Policy {
    /// Chooses the best estimate from a frontier. Returns `None` only when
    /// the frontier is empty; if no plan meets the constraint, the policy
    /// relaxes it (best-effort) rather than failing.
    pub fn choose<'a>(&self, frontier: &'a [PlanEstimate]) -> Option<&'a PlanEstimate> {
        if frontier.is_empty() {
            return None;
        }
        match self {
            Policy::MaxQuality { cost_budget } => {
                let eligible: Vec<&PlanEstimate> = match cost_budget {
                    Some(budget) => frontier.iter().filter(|e| e.cost <= *budget).collect(),
                    None => frontier.iter().collect(),
                };
                let pool: Vec<&PlanEstimate> = if eligible.is_empty() {
                    frontier.iter().collect()
                } else {
                    eligible
                };
                pool.into_iter().max_by(|a, b| {
                    a.quality
                        .partial_cmp(&b.quality)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Tie-break: cheaper, then faster.
                        .then(
                            b.cost
                                .partial_cmp(&a.cost)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(
                            b.time
                                .partial_cmp(&a.time)
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                })
            }
            Policy::MinCost { quality_floor } => pick_min(frontier, *quality_floor, |e| e.cost),
            Policy::MinTime { quality_floor } => pick_min(frontier, *quality_floor, |e| e.time),
        }
    }
}

fn pick_min(
    frontier: &[PlanEstimate],
    quality_floor: f64,
    key: impl Fn(&PlanEstimate) -> f64,
) -> Option<&PlanEstimate> {
    let eligible: Vec<&PlanEstimate> = frontier
        .iter()
        .filter(|e| e.quality >= quality_floor)
        .collect();
    let pool: Vec<&PlanEstimate> = if eligible.is_empty() {
        // Constraint unmeetable: fall back to the highest-quality plans.
        let best_q = frontier
            .iter()
            .map(|e| e.quality)
            .fold(f64::NEG_INFINITY, f64::max);
        frontier
            .iter()
            .filter(|e| (e.quality - best_q).abs() < 1e-9)
            .collect()
    } else {
        eligible
    };
    pool.into_iter().min_by(|a, b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cost: f64, time: f64, quality: f64) -> PlanEstimate {
        PlanEstimate {
            order: vec![],
            models: vec![],
            cost,
            time,
            quality,
        }
    }

    fn frontier() -> Vec<PlanEstimate> {
        vec![est(0.1, 5.0, 0.7), est(0.5, 8.0, 0.9), est(2.0, 20.0, 0.99)]
    }

    #[test]
    fn max_quality_unbounded_takes_best() {
        let f = frontier();
        let chosen = Policy::MaxQuality { cost_budget: None }.choose(&f).unwrap();
        assert_eq!(chosen.quality, 0.99);
    }

    #[test]
    fn max_quality_respects_budget() {
        let f = frontier();
        let chosen = Policy::MaxQuality {
            cost_budget: Some(1.0),
        }
        .choose(&f)
        .unwrap();
        assert_eq!(chosen.quality, 0.9);
    }

    #[test]
    fn max_quality_relaxes_impossible_budget() {
        let f = frontier();
        let chosen = Policy::MaxQuality {
            cost_budget: Some(0.01),
        }
        .choose(&f)
        .unwrap();
        assert_eq!(chosen.quality, 0.99, "falls back to unconstrained best");
    }

    #[test]
    fn min_cost_meets_quality_floor() {
        let f = frontier();
        let chosen = Policy::MinCost {
            quality_floor: 0.85,
        }
        .choose(&f)
        .unwrap();
        assert_eq!(chosen.cost, 0.5);
        let cheap = Policy::MinCost { quality_floor: 0.0 }.choose(&f).unwrap();
        assert_eq!(cheap.cost, 0.1);
    }

    #[test]
    fn min_cost_relaxes_to_best_quality() {
        let f = frontier();
        let chosen = Policy::MinCost { quality_floor: 1.5 }.choose(&f).unwrap();
        assert_eq!(chosen.quality, 0.99);
    }

    #[test]
    fn min_time_picks_fastest_eligible() {
        let f = frontier();
        let chosen = Policy::MinTime {
            quality_floor: 0.85,
        }
        .choose(&f)
        .unwrap();
        assert_eq!(chosen.time, 8.0);
    }

    #[test]
    fn empty_frontier_is_none() {
        assert!(Policy::MaxQuality { cost_budget: None }
            .choose(&[])
            .is_none());
    }
}
