//! The bandit-driven sampling phase.
//!
//! Before choosing a physical plan, the optimizer spends a small, real
//! budget of LLM calls estimating how each (operator, model) pair behaves
//! on *this* data: quality relative to the flagship reference model
//! (LOTUS-style proxy validation), dollars per record, seconds per record,
//! and operator selectivity. Sample calls are billed to the shared meter —
//! optimization is not free, exactly as in Abacus.

use crate::bandit::Ucb1;
use aida_data::{Record, Value};
use aida_llm::oracle::Subject;
use aida_llm::{LlmTask, ModelId};
use aida_semops::plan::{LogicalOp, LogicalPlan};
use aida_semops::{exec::subject_text, ExecEnv};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Estimated behaviour of one model on one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEstimate {
    /// Agreement with the flagship reference in `[0, 1]`.
    pub quality: f64,
    /// Dollars per processed record.
    pub cost_per_record: f64,
    /// Seconds per processed record.
    pub time_per_record: f64,
    /// Number of sample observations behind the estimate (0 = prior only).
    pub observations: u64,
}

/// Estimates for one semantic operator.
#[derive(Debug, Clone)]
pub struct OpEstimate {
    /// Index of the operator in the logical plan.
    pub op_index: usize,
    /// Estimated selectivity (filters; 1.0 for non-filters).
    pub selectivity: f64,
    /// Per-model estimates.
    pub per_model: BTreeMap<ModelId, ModelEstimate>,
}

/// The full sampling result for a plan.
#[derive(Debug, Clone, Default)]
pub struct SampleMatrix {
    /// One entry per semantic operator, in plan order.
    pub ops: Vec<OpEstimate>,
    /// Mean input tokens per scanned record (drives coarse cost guesses).
    pub avg_record_tokens: f64,
    /// Dollars spent on sampling itself.
    pub sampling_cost: f64,
    /// Virtual seconds spent sampling.
    pub sampling_time: f64,
}

impl SampleMatrix {
    /// The estimate for an operator index, if it was sampled.
    pub fn for_op(&self, op_index: usize) -> Option<&OpEstimate> {
        self.ops.iter().find(|o| o.op_index == op_index)
    }
}

/// Quality priors used for unsampled arms and unsampleable operators.
pub fn quality_prior(model: ModelId) -> f64 {
    match model {
        ModelId::Flagship => 0.98,
        ModelId::Mini => 0.88,
        ModelId::Nano => 0.76,
    }
}

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Records drawn from the scan for sampling.
    pub sample_records: usize,
    /// Total bandit pulls across all non-reference arms.
    pub bandit_pulls: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            sample_records: 10,
            bandit_pulls: 36,
        }
    }
}

/// Runs the sampling phase for a logical plan.
pub struct Sampler<'a> {
    env: &'a ExecEnv,
    config: SamplerConfig,
}

impl<'a> Sampler<'a> {
    /// Creates a sampler.
    pub fn new(env: &'a ExecEnv, config: SamplerConfig) -> Self {
        Sampler { env, config }
    }

    /// Estimates the sample matrix for a plan. Returns a prior-only matrix
    /// when the plan has no scan or no semantic operators.
    pub fn sample(&self, plan: &LogicalPlan) -> SampleMatrix {
        let before_usage = self.env.llm.meter().snapshot();
        let t0 = self.env.clock.now();

        let lake = plan.ops().iter().find_map(|op| match op {
            LogicalOp::Scan { lake, .. } => Some(Arc::clone(lake)),
            _ => None,
        });
        let sample: Vec<Record> = match &lake {
            Some(lake) if !lake.is_empty() => {
                let n = lake.len();
                let k = self.config.sample_records.clamp(1, n);
                let stride = n / k;
                (0..k)
                    .map(|i| {
                        let doc = &lake.docs()[(i * stride).min(n - 1)];
                        Record::new(doc.name.clone())
                            .with("filename", doc.name.clone())
                            .with("contents", doc.text())
                    })
                    .collect()
            }
            _ => Vec::new(),
        };

        let avg_record_tokens = if sample.is_empty() {
            0.0
        } else {
            sample
                .iter()
                .map(|r| aida_llm::tokens::count(&subject_text(r)) as f64)
                .sum::<f64>()
                / sample.len() as f64
        };

        let mut ops = Vec::new();
        let sem_indices = plan.semantic_indices();
        if !sample.is_empty() && !sem_indices.is_empty() {
            // Arms: (op, candidate model) for the two non-reference tiers.
            let candidates = [ModelId::Mini, ModelId::Nano];
            let arms: Vec<(usize, ModelId)> = sem_indices
                .iter()
                .flat_map(|&op| candidates.iter().map(move |&m| (op, m)))
                .collect();

            // Reference pass: flagship on every (op, sample record).
            let mut references: BTreeMap<usize, Vec<ReferenceObs>> = BTreeMap::new();
            for &op_idx in &sem_indices {
                let op = &plan.ops()[op_idx];
                let obs: Vec<ReferenceObs> = sample
                    .iter()
                    .map(|rec| self.observe(op, rec, lake.as_deref(), ModelId::Flagship))
                    .collect();
                references.insert(op_idx, obs);
            }

            // Per-op pull order: filter disagreements concentrate on the
            // records the reference judges *positive* (a model that never
            // sees a positive looks flawless), so visit those first.
            let mut pull_order: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &op_idx in &sem_indices {
                let refs = &references[&op_idx];
                let mut order: Vec<usize> = Vec::with_capacity(sample.len());
                if matches!(plan.ops()[op_idx], LogicalOp::SemFilter { .. }) {
                    order.extend((0..sample.len()).filter(|&i| refs[i].value.truthy()));
                    order.extend((0..sample.len()).filter(|&i| !refs[i].value.truthy()));
                } else {
                    order.extend(0..sample.len());
                }
                pull_order.insert(op_idx, order);
            }

            // Bandit pass over candidate arms.
            let mut bandit = Ucb1::new(arms.len());
            let mut arm_obs: Vec<Vec<ReferenceObs>> = vec![Vec::new(); arms.len()];
            let pulls = self.config.bandit_pulls.max(arms.len());
            for _ in 0..pulls {
                let arm = bandit.select();
                let (op_idx, model) = arms[arm];
                let op = &plan.ops()[op_idx];
                let pull_no = arm_obs[arm].len();
                let sample_idx = pull_order[&op_idx][pull_no % sample.len()];
                let rec = &sample[sample_idx];
                let obs = self.observe(op, rec, lake.as_deref(), model);
                let reference = &references[&op_idx][sample_idx];
                let reward = agreement(&obs.value, &reference.value, self.env);
                bandit.update(arm, reward);
                arm_obs[arm].push(obs);
            }

            // Assemble per-op estimates.
            for &op_idx in &sem_indices {
                let refs = &references[&op_idx];
                let selectivity = match &plan.ops()[op_idx] {
                    LogicalOp::SemFilter { .. } => {
                        let trues = refs.iter().filter(|o| o.value.truthy()).count();
                        // Laplace smoothing keeps estimates off the walls.
                        (trues as f64 + 0.5) / (refs.len() as f64 + 1.0)
                    }
                    _ => 1.0,
                };
                let mut per_model = BTreeMap::new();
                per_model.insert(
                    ModelId::Flagship,
                    ModelEstimate {
                        quality: quality_prior(ModelId::Flagship),
                        cost_per_record: mean(refs.iter().map(|o| o.cost)),
                        time_per_record: mean(refs.iter().map(|o| o.latency)),
                        observations: refs.len() as u64,
                    },
                );
                for (arm, &(arm_op, model)) in arms.iter().enumerate() {
                    if arm_op != op_idx {
                        continue;
                    }
                    let stats = bandit.stats(arm);
                    let obs = &arm_obs[arm];
                    // Blend the (small-sample) measurement with the tier
                    // prior so a handful of lucky pulls can't make a noisy
                    // tier look flawless. PRIOR_WEIGHT pseudo-observations.
                    const PRIOR_WEIGHT: f64 = 2.0;
                    let blend = |mean: f64, pulls: u64| {
                        (quality_prior(model) * PRIOR_WEIGHT + mean * pulls as f64)
                            / (PRIOR_WEIGHT + pulls as f64)
                    };
                    let (quality, cost, latency, n) = if stats.pulls == 0 {
                        // Never pulled: prior quality, cost scaled from the
                        // flagship observation by the price ratio.
                        let ratio = self.price_ratio(model);
                        (
                            quality_prior(model),
                            mean(refs.iter().map(|o| o.cost)) * ratio,
                            mean(refs.iter().map(|o| o.latency)) * 0.7,
                            0,
                        )
                    } else {
                        (
                            blend(stats.mean(), stats.pulls),
                            mean(obs.iter().map(|o| o.cost)),
                            mean(obs.iter().map(|o| o.latency)),
                            stats.pulls,
                        )
                    };
                    per_model.insert(
                        model,
                        ModelEstimate {
                            quality,
                            cost_per_record: cost,
                            time_per_record: latency,
                            observations: n,
                        },
                    );
                }
                ops.push(OpEstimate {
                    op_index: op_idx,
                    selectivity,
                    per_model,
                });
            }
        }

        let delta = self.env.llm.meter().snapshot().since(&before_usage);
        SampleMatrix {
            ops,
            avg_record_tokens,
            sampling_cost: delta.cost(self.env.llm.catalog()),
            sampling_time: self.env.clock.now() - t0,
        }
    }

    fn price_ratio(&self, model: ModelId) -> f64 {
        let catalog = self.env.llm.catalog();
        let f = catalog.spec(ModelId::Flagship).input_price;
        (catalog.spec(model).input_price / f).max(1e-3)
    }

    fn observe(
        &self,
        op: &LogicalOp,
        rec: &Record,
        lake: Option<&aida_data::DataLake>,
        model: ModelId,
    ) -> ReferenceObs {
        let origin = lake.and_then(|l| l.get(&rec.source)).map(Arc::as_ref);
        let subject = Subject {
            name: Cow::Borrowed(rec.source.as_str()),
            text: Cow::Owned(subject_text(rec)),
            labels: origin.map(|d| &d.labels),
        };
        let resp = match op {
            LogicalOp::SemFilter { instruction } => self.env.llm.invoke(
                model,
                &LlmTask::Filter {
                    instruction,
                    subject,
                },
            ),
            LogicalOp::SemExtract {
                instruction,
                fields,
            } => {
                let field = fields.first();
                self.env.llm.invoke(
                    model,
                    &LlmTask::Extract {
                        instruction,
                        field: field.map(|f| f.name.as_str()).unwrap_or("value"),
                        field_desc: field.map(|f| f.desc.as_str()).unwrap_or(""),
                        subject,
                    },
                )
            }
            LogicalOp::SemMap {
                instruction,
                target_tokens,
                ..
            } => self.env.llm.invoke(
                model,
                &LlmTask::Map {
                    instruction,
                    subject,
                    target_tokens: *target_tokens,
                },
            ),
            // Agg/join are sampled like maps over the record.
            other => {
                let instruction = other.instruction().unwrap_or("process the item");
                self.env.llm.invoke(
                    model,
                    &LlmTask::Map {
                        instruction,
                        subject,
                        target_tokens: 60,
                    },
                )
            }
        };
        self.env.clock.advance(resp.latency_s * 0.25); // sampling overlaps with setup
        let catalog = self.env.llm.catalog();
        let cost = catalog
            .spec(model)
            .cost(resp.input_tokens, resp.output_tokens);
        ReferenceObs {
            value: resp.value,
            cost,
            latency: resp.latency_s,
        }
    }
}

#[derive(Clone)]
struct ReferenceObs {
    value: Value,
    cost: f64,
    latency: f64,
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Agreement between a candidate answer and the flagship reference.
fn agreement(candidate: &Value, reference: &Value, env: &ExecEnv) -> f64 {
    match (candidate, reference) {
        (Value::Bool(a), Value::Bool(b)) => {
            if a == b {
                1.0
            } else {
                0.0
            }
        }
        (Value::Str(a), Value::Str(b)) => {
            let sim = aida_llm::embed::cosine(&env.embedder.embed(a), &env.embedder.embed(b));
            f64::from(sim).clamp(0.0, 1.0)
        }
        (a, b) => {
            if a.loose_eq(b) {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::{DataLake, Document};
    use aida_llm::SimLlm;
    use aida_semops::Dataset;

    fn lake() -> DataLake {
        DataLake::from_docs((0..20).map(|i| {
            let relevant = i % 4 == 0;
            let content = if relevant {
                format!("report {i}: identity theft statistics for the year")
            } else {
                format!("report {i}: pipeline maintenance notes")
            };
            Document::new(format!("doc{i}.txt",), content).with_label("difficulty", 0.6)
        }))
    }

    fn sampled() -> SampleMatrix {
        let env = ExecEnv::new(SimLlm::new(3));
        let ds = Dataset::scan(&lake(), "docs").sem_filter("mentions identity theft");
        Sampler::new(&env, SamplerConfig::default()).sample(ds.plan())
    }

    #[test]
    fn matrix_covers_every_model_tier() {
        let m = sampled();
        assert_eq!(m.ops.len(), 1);
        let op = &m.ops[0];
        for model in ModelId::ALL {
            assert!(op.per_model.contains_key(&model), "missing {model}");
        }
    }

    #[test]
    fn flagship_is_most_expensive_per_record() {
        let m = sampled();
        let op = &m.ops[0];
        let f = op.per_model[&ModelId::Flagship].cost_per_record;
        let n = op.per_model[&ModelId::Nano].cost_per_record;
        assert!(f > n, "flagship {f} vs nano {n}");
    }

    #[test]
    fn selectivity_reflects_data() {
        let m = sampled();
        // A quarter of documents are relevant; smoothing pulls toward 0.5.
        let s = m.ops[0].selectivity;
        assert!((0.05..=0.6).contains(&s), "selectivity {s}");
    }

    #[test]
    fn sampling_bills_the_meter() {
        let env = ExecEnv::new(SimLlm::new(3));
        let ds = Dataset::scan(&lake(), "docs").sem_filter("mentions identity theft");
        let m = Sampler::new(&env, SamplerConfig::default()).sample(ds.plan());
        assert!(m.sampling_cost > 0.0);
        assert!(m.sampling_time > 0.0);
        assert!(env.llm.meter().snapshot().total_calls() > 0);
    }

    #[test]
    fn noisy_tier_scores_lower_quality_on_hard_data() {
        let m = sampled();
        let op = &m.ops[0];
        let nano = &op.per_model[&ModelId::Nano];
        let flagship = &op.per_model[&ModelId::Flagship];
        // Difficulty 0.6 data: nano disagrees with flagship noticeably.
        assert!(
            nano.quality <= flagship.quality + 1e-9,
            "nano {} vs flagship {}",
            nano.quality,
            flagship.quality
        );
    }

    #[test]
    fn empty_plan_yields_prior_only_matrix() {
        let env = ExecEnv::new(SimLlm::new(3));
        let empty_lake = DataLake::new();
        let ds = Dataset::scan(&empty_lake, "empty").sem_filter("anything");
        let m = Sampler::new(&env, SamplerConfig::default()).sample(ds.plan());
        assert!(m.ops.is_empty());
        assert_eq!(m.avg_record_tokens, 0.0);
    }

    #[test]
    fn priors_are_tier_ordered() {
        assert!(quality_prior(ModelId::Flagship) > quality_prior(ModelId::Mini));
        assert!(quality_prior(ModelId::Mini) > quality_prior(ModelId::Nano));
    }
}
