//! `aida-optimizer`: a cost-based optimizer for semantic operator plans.
//!
//! Reproduces the Abacus optimization loop the paper's prototype relies on:
//!
//! 1. **Sampling** ([`sampler`]): a UCB1 bandit ([`bandit`]) spends a small
//!    real budget of LLM calls measuring how each (operator, model) pair
//!    behaves on this data — quality vs. the flagship reference, dollars
//!    and seconds per record, and filter selectivity.
//! 2. **Enumeration**: candidate plans vary per-operator model assignment
//!    and the order of adjacent semantic filters.
//! 3. **Costing** ([`cost`]): each candidate gets a predicted (cost, time,
//!    quality); dominated candidates are dropped (Pareto frontier).
//! 4. **Policy** ([`policy`]): `MaxQuality`/`MinCost`/`MinTime` picks the
//!    final physical plan.
//!
//! ```no_run
//! use aida_optimizer::{Optimizer, OptimizerConfig, Policy};
//! use aida_semops::{Dataset, ExecEnv, Executor};
//! use aida_llm::SimLlm;
//! # let lake = aida_data::DataLake::new();
//!
//! let env = ExecEnv::new(SimLlm::new(42));
//! let ds = Dataset::scan(&lake, "emails")
//!     .sem_filter("mentions a business transaction")
//!     .sem_filter("contains firsthand discussion");
//! let optimizer = Optimizer::new(&env, OptimizerConfig::default());
//! let optimized = optimizer.optimize(ds.plan(), &Policy::MaxQuality { cost_budget: None });
//! let report = Executor::new(&env).execute(&optimized.physical);
//! ```

pub mod bandit;
pub mod cost;
pub mod policy;
pub mod sampler;

pub use cost::{pareto_frontier, PlanEstimate, StaticPrior};
pub use policy::Policy;
pub use sampler::{SampleMatrix, Sampler, SamplerConfig};

use aida_llm::ModelId;
use aida_semops::plan::{LogicalOp, LogicalPlan};
use aida_semops::{ExecEnv, PhysicalPlan};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Sampling-phase configuration.
    pub sampler: SamplerConfig,
    /// Parallelism bound into the chosen physical plan.
    pub parallelism: usize,
    /// Whether to enumerate reorderings of adjacent semantic filters.
    pub reorder_filters: bool,
    /// Skip the sampling phase entirely (priors only) — used by ablations.
    pub skip_sampling: bool,
    /// Static cost-bound priors from `aida_script::bounds`: sound
    /// worst-case dollar ceilings per tier that cap sampled cost
    /// extrapolations (see [`cost::StaticPrior`]).
    pub static_prior: StaticPrior,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            sampler: SamplerConfig::default(),
            parallelism: 8,
            reorder_filters: true,
            skip_sampling: false,
            static_prior: StaticPrior::new(),
        }
    }
}

/// The result of optimization.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The executable physical plan.
    pub physical: PhysicalPlan,
    /// The optimizer's prediction for it.
    pub estimate: PlanEstimate,
    /// The sampling matrix behind the decision.
    pub matrix: SampleMatrix,
    /// How many candidate plans were considered.
    pub candidates_considered: usize,
}

/// The cost-based optimizer.
pub struct Optimizer<'a> {
    env: &'a ExecEnv,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over an execution environment.
    pub fn new(env: &'a ExecEnv, config: OptimizerConfig) -> Self {
        Optimizer { env, config }
    }

    /// Optimizes a logical plan under a policy.
    pub fn optimize(&self, plan: &LogicalPlan, policy: &Policy) -> OptimizedPlan {
        let matrix = if self.config.skip_sampling {
            SampleMatrix::default()
        } else {
            Sampler::new(self.env, self.config.sampler.clone()).sample(plan)
        };

        let input_cardinality = plan
            .ops()
            .iter()
            .find_map(|op| match op {
                LogicalOp::Scan { lake, .. } => Some(lake.len()),
                _ => None,
            })
            .unwrap_or(0);

        let orders = if self.config.reorder_filters {
            candidate_orders(plan)
        } else {
            vec![(0..plan.len()).collect::<Vec<_>>()]
        };
        let assignments = model_assignments(plan);

        let mut candidates = Vec::new();
        for order in &orders {
            for models in &assignments {
                // Align the model list with the order: models are assigned
                // per original operator index.
                let ordered_models: Vec<ModelId> = order.iter().map(|&idx| models[idx]).collect();
                candidates.push(cost::estimate_with_prior(
                    plan,
                    order,
                    &ordered_models,
                    &matrix,
                    input_cardinality,
                    self.config.parallelism,
                    &self.config.static_prior,
                ));
            }
        }
        let considered = candidates.len();
        let frontier = pareto_frontier(candidates);
        let chosen = policy.choose(&frontier).cloned().unwrap_or_else(|| {
            cost::estimate_with_prior(
                plan,
                &(0..plan.len()).collect::<Vec<_>>(),
                &vec![ModelId::Flagship; plan.len()],
                &matrix,
                input_cardinality,
                self.config.parallelism,
                &self.config.static_prior,
            )
        });

        // Materialize the chosen (order, models) into a physical plan.
        let reordered = LogicalPlan::new(
            chosen
                .order
                .iter()
                .map(|&i| plan.ops()[i].clone())
                .collect(),
        );
        let physical =
            PhysicalPlan::with_models(&reordered, &chosen.models, self.config.parallelism);

        OptimizedPlan {
            physical,
            estimate: chosen,
            matrix,
            candidates_considered: considered,
        }
    }
}

/// Enumerates valid operator orders: the identity order plus permutations
/// of each maximal run of adjacent `SemFilter`s (filters commute; nothing
/// else is moved). Capped at 24 orders.
pub fn candidate_orders(plan: &LogicalPlan) -> Vec<Vec<usize>> {
    let n = plan.len();
    let identity: Vec<usize> = (0..n).collect();
    // Find maximal runs of consecutive SemFilters.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, end)
    let mut i = 0;
    while i < n {
        if matches!(plan.ops()[i], LogicalOp::SemFilter { .. }) {
            let start = i;
            while i < n && matches!(plan.ops()[i], LogicalOp::SemFilter { .. }) {
                i += 1;
            }
            if i - start >= 2 {
                runs.push((start, i));
            }
        } else {
            i += 1;
        }
    }
    if runs.is_empty() {
        return vec![identity];
    }
    let mut orders = vec![identity];
    for (start, end) in runs {
        let segment: Vec<usize> = (start..end).collect();
        let perms = permutations(&segment);
        let mut expanded = Vec::new();
        for order in &orders {
            for perm in &perms {
                let mut new_order = order.clone();
                for (offset, &idx) in perm.iter().enumerate() {
                    // Positions of the run within the order are stable
                    // (only filters inside the run are permuted).
                    let pos = order.iter().position(|&x| x == segment[offset]).unwrap();
                    new_order[pos] = idx;
                }
                expanded.push(new_order);
                if expanded.len() >= 24 {
                    break;
                }
            }
            if expanded.len() >= 24 {
                break;
            }
        }
        orders = expanded;
    }
    orders.dedup();
    orders
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Enumerates per-operator model assignments: the cartesian product of
/// tiers over semantic operators (non-semantic operators pin to flagship;
/// the model is unused there). Falls back to uniform assignments when the
/// product explodes.
pub fn model_assignments(plan: &LogicalPlan) -> Vec<Vec<ModelId>> {
    let sem = plan.semantic_indices();
    if sem.len() > 5 {
        // 3^6+ candidates: just offer the three uniform assignments.
        return ModelId::ALL
            .iter()
            .map(|&m| {
                (0..plan.len())
                    .map(|i| {
                        if plan.ops()[i].is_semantic() {
                            m
                        } else {
                            ModelId::Flagship
                        }
                    })
                    .collect()
            })
            .collect();
    }
    let mut assignments: Vec<Vec<ModelId>> = vec![vec![ModelId::Flagship; plan.len()]];
    for &idx in &sem {
        let mut expanded = Vec::with_capacity(assignments.len() * ModelId::ALL.len());
        for assignment in &assignments {
            for &model in &ModelId::ALL {
                let mut next = assignment.clone();
                next[idx] = model;
                expanded.push(next);
            }
        }
        assignments = expanded;
    }
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::{DataLake, Document};
    use aida_llm::SimLlm;
    use aida_semops::{Dataset, Executor};

    fn lake(n: usize) -> DataLake {
        DataLake::from_docs((0..n).map(|i| {
            let relevant = i % 5 == 0;
            let content = if relevant {
                format!("memo {i}: identity theft case statistics and yearly trends")
            } else {
                format!("memo {i}: cafeteria menu and parking assignments")
            };
            Document::new(format!("m{i}.txt"), content).with_label("difficulty", 0.1)
        }))
    }

    #[test]
    fn optimizer_produces_runnable_plan() {
        let env = ExecEnv::new(SimLlm::new(5));
        let ds = Dataset::scan(&lake(25), "memos").sem_filter("mentions identity theft");
        let optimizer = Optimizer::new(&env, OptimizerConfig::default());
        let optimized = optimizer.optimize(ds.plan(), &Policy::MaxQuality { cost_budget: None });
        assert!(optimized.candidates_considered >= 3);
        let report = Executor::new(&env).execute(&optimized.physical);
        assert_eq!(report.records.len(), 5);
    }

    #[test]
    fn min_cost_picks_cheaper_models_than_max_quality() {
        let run = |policy: Policy| {
            let env = ExecEnv::new(SimLlm::new(5));
            let ds = Dataset::scan(&lake(25), "memos").sem_filter("mentions identity theft");
            let optimizer = Optimizer::new(&env, OptimizerConfig::default());
            optimizer.optimize(ds.plan(), &policy).estimate
        };
        let cheap = run(Policy::MinCost { quality_floor: 0.0 });
        let best = run(Policy::MaxQuality { cost_budget: None });
        assert!(cheap.cost <= best.cost + 1e-12);
        assert!(best.quality >= cheap.quality - 1e-12);
    }

    #[test]
    fn filter_reordering_is_enumerated() {
        let env_lake = lake(10);
        let ds = Dataset::scan(&env_lake, "m")
            .sem_filter("first predicate about theft")
            .sem_filter("second predicate about statistics");
        let orders = candidate_orders(ds.plan());
        assert_eq!(orders.len(), 2);
        assert!(orders.contains(&vec![0, 1, 2]));
        assert!(orders.contains(&vec![0, 2, 1]));
    }

    #[test]
    fn non_adjacent_filters_are_not_reordered() {
        let env_lake = lake(10);
        let ds = Dataset::scan(&env_lake, "m")
            .sem_filter("first")
            .sem_map("summarize", "s", 30)
            .sem_filter("second");
        let orders = candidate_orders(ds.plan());
        assert_eq!(orders, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn model_assignment_count_is_exponential_in_sem_ops() {
        let env_lake = lake(4);
        let ds = Dataset::scan(&env_lake, "m")
            .sem_filter("a")
            .sem_filter("b");
        assert_eq!(model_assignments(ds.plan()).len(), 9);
        let ds6 = Dataset::scan(&env_lake, "m")
            .sem_filter("a")
            .sem_filter("b")
            .sem_filter("c")
            .sem_filter("d")
            .sem_filter("e")
            .sem_filter("f");
        assert_eq!(
            model_assignments(ds6.plan()).len(),
            3,
            "falls back to uniform"
        );
    }

    #[test]
    fn skip_sampling_avoids_llm_calls() {
        let env = ExecEnv::new(SimLlm::new(5));
        let ds = Dataset::scan(&lake(25), "memos").sem_filter("mentions identity theft");
        let config = OptimizerConfig {
            skip_sampling: true,
            ..OptimizerConfig::default()
        };
        let optimizer = Optimizer::new(&env, config);
        let before = env.llm.meter().snapshot();
        let _ = optimizer.optimize(ds.plan(), &Policy::MaxQuality { cost_budget: None });
        assert_eq!(env.llm.meter().snapshot().since(&before).total_calls(), 0);
    }

    #[test]
    fn selective_filter_first_is_preferred() {
        // Filter A keeps ~everything; filter B keeps ~nothing. The cost
        // model should prefer running B first so A processes fewer records.
        let env = ExecEnv::new(SimLlm::new(9));
        env.llm
            .oracle()
            .register(std::sync::Arc::new(aida_llm::oracle::FnRule::new(
                "broad",
                |instruction: &str, _subject: &aida_llm::oracle::Subject<'_>| {
                    instruction
                        .contains("written in english")
                        .then_some(aida_llm::oracle::OracleAnswer::Bool(true))
                },
            )));
        env.llm
            .oracle()
            .register(std::sync::Arc::new(aida_llm::oracle::FnRule::new(
                "selective",
                |instruction: &str, subject: &aida_llm::oracle::Subject<'_>| {
                    instruction.contains("identity theft").then_some(
                        aida_llm::oracle::OracleAnswer::Bool(
                            subject.text.contains("identity theft"),
                        ),
                    )
                },
            )));
        let big_lake = lake(60);
        let ds = Dataset::scan(&big_lake, "memos")
            .sem_filter("the memo is written in english")
            .sem_filter("mentions identity theft statistics");
        let optimizer = Optimizer::new(&env, OptimizerConfig::default());
        let optimized = optimizer.optimize(ds.plan(), &Policy::MinCost { quality_floor: 0.0 });
        // Order should put the selective (theft) filter before the broad one.
        let first_filter = optimized
            .physical
            .steps
            .iter()
            .find_map(|s| match &s.op {
                LogicalOp::SemFilter { instruction } => Some(instruction.clone()),
                _ => None,
            })
            .unwrap();
        assert!(
            first_filter.contains("theft"),
            "expected selective filter first, got {first_filter:?}"
        );
    }
}
