//! The plan cost model.
//!
//! Given a candidate physical configuration (operator order + per-operator
//! models) and the sampled estimates, predict total dollars, virtual
//! seconds, and output quality. Cardinalities chain through filter
//! selectivities; quality is the product of per-operator qualities (an
//! error anywhere corrupts the output).

use crate::sampler::{quality_prior, SampleMatrix};
use aida_llm::ModelId;
use aida_semops::plan::{LogicalOp, LogicalPlan};

/// A predicted outcome for one candidate plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEstimate {
    /// Operator order (indices into the *original* logical plan).
    pub order: Vec<usize>,
    /// Model per operator (aligned with `order`).
    pub models: Vec<ModelId>,
    /// Predicted dollars.
    pub cost: f64,
    /// Predicted virtual seconds.
    pub time: f64,
    /// Predicted quality in `[0, 1]`.
    pub quality: f64,
}

impl PlanEstimate {
    /// True when `self` is at least as good as `other` on every axis and
    /// strictly better on one (Pareto dominance; lower cost/time, higher
    /// quality).
    pub fn dominates(&self, other: &PlanEstimate) -> bool {
        let no_worse = self.cost <= other.cost + 1e-12
            && self.time <= other.time + 1e-12
            && self.quality >= other.quality - 1e-12;
        let better = self.cost < other.cost - 1e-12
            || self.time < other.time - 1e-12
            || self.quality > other.quality + 1e-12;
        no_worse && better
    }
}

/// Predicts cost/time/quality for a candidate (order, models) pair.
///
/// `order` is a permutation of `0..plan.len()` (non-semantic operators must
/// keep their relative positions for correctness; the enumerator guarantees
/// this). `parallelism` divides per-batch latency.
pub fn estimate(
    plan: &LogicalPlan,
    order: &[usize],
    models: &[ModelId],
    matrix: &SampleMatrix,
    input_cardinality: usize,
    parallelism: usize,
) -> PlanEstimate {
    let p = parallelism.max(1) as f64;
    let mut card = input_cardinality as f64;
    let mut cost = matrix.sampling_cost;
    let mut time = matrix.sampling_time;
    let mut quality = 1.0;

    for (&op_idx, &model) in order.iter().zip(models) {
        let op = &plan.ops()[op_idx];
        match op {
            LogicalOp::Scan { lake, .. } => {
                card = lake.len() as f64;
                time += 0.002 * card / p;
            }
            LogicalOp::SemFilter { .. } => {
                let (unit_cost, unit_time, q, sel) = op_params(matrix, op_idx, model);
                cost += card * unit_cost;
                time += waves(card, p) * unit_time;
                quality *= q;
                card *= sel;
            }
            LogicalOp::SemExtract { fields, .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let k = fields.len().max(1) as f64;
                cost += card * unit_cost * k;
                time += waves(card, p) * unit_time * k;
                quality *= q;
            }
            LogicalOp::SemMap { .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                cost += card * unit_cost;
                time += waves(card, p) * unit_time;
                quality *= q;
            }
            LogicalOp::SemAgg { .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                // One call over the combined input.
                cost += unit_cost * card.clamp(1.0, 50.0);
                time += unit_time;
                quality *= q;
                card = 1.0;
            }
            LogicalOp::SemTopK { k, .. } => {
                time += 0.003 * card / p;
                card = card.min(*k as f64);
            }
            LogicalOp::SemGroupBy { k, .. } => {
                // Embedding is cheap; one labelling call per cluster.
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let clusters = (*k as f64).min(card).max(1.0);
                cost += clusters * unit_cost;
                time += 0.003 * card / p + waves(clusters, p) * unit_time;
                quality *= q;
            }
            LogicalOp::SemJoin { right, .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let right_card = right
                    .ops()
                    .iter()
                    .find_map(|o| match o {
                        LogicalOp::Scan { lake, .. } => Some(lake.len() as f64),
                        _ => None,
                    })
                    .unwrap_or(1.0);
                let pairs = card * right_card;
                cost += pairs * unit_cost;
                time += waves(pairs, p) * unit_time;
                quality *= q;
                card = pairs * 0.1; // default join selectivity
            }
            LogicalOp::Project { .. } => {}
            LogicalOp::Limit { n } => card = card.min(*n as f64),
            LogicalOp::Count => card = 1.0,
        }
    }

    PlanEstimate {
        order: order.to_vec(),
        models: models.to_vec(),
        cost,
        time,
        quality: quality.clamp(0.0, 1.0),
    }
}

fn waves(card: f64, parallelism: f64) -> f64 {
    (card / parallelism).ceil().max(0.0)
}

/// Per-(op, model) parameters: (cost/record, time/record, quality,
/// selectivity), falling back to priors when unsampled.
fn op_params(matrix: &SampleMatrix, op_idx: usize, model: ModelId) -> (f64, f64, f64, f64) {
    if let Some(op_est) = matrix.for_op(op_idx) {
        if let Some(m) = op_est.per_model.get(&model) {
            return (
                m.cost_per_record,
                m.time_per_record.max(1e-3),
                m.quality,
                op_est.selectivity,
            );
        }
        return (0.0, 1e-3, quality_prior(model), op_est.selectivity);
    }
    // Unsampled (no scan or sampling skipped): coarse token-based guess.
    let tokens = matrix.avg_record_tokens.max(50.0);
    let per_tok = match model {
        ModelId::Flagship => 2.5e-6,
        ModelId::Mini => 0.15e-6,
        ModelId::Nano => 0.05e-6,
    };
    (tokens * per_tok, 1.0, quality_prior(model), 0.5)
}

/// Filters a set of candidate estimates down to the Pareto frontier
/// (deterministic order preserved).
pub fn pareto_frontier(candidates: Vec<PlanEstimate>) -> Vec<PlanEstimate> {
    let mut frontier: Vec<PlanEstimate> = Vec::new();
    for cand in candidates {
        if frontier.iter().any(|f| f.dominates(&cand)) {
            continue;
        }
        frontier.retain(|f| !cand.dominates(f));
        frontier.push(cand);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cost: f64, time: f64, quality: f64) -> PlanEstimate {
        PlanEstimate {
            order: vec![],
            models: vec![],
            cost,
            time,
            quality,
        }
    }

    #[test]
    fn dominance_requires_strictly_better_somewhere() {
        let a = est(1.0, 10.0, 0.9);
        let b = est(2.0, 10.0, 0.9);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn pareto_frontier_drops_dominated() {
        let frontier = pareto_frontier(vec![
            est(1.0, 10.0, 0.9),
            est(2.0, 10.0, 0.9),  // dominated by first
            est(0.5, 20.0, 0.8),  // cheaper but slower/worse: kept
            est(1.0, 10.0, 0.95), // dominates first
        ]);
        assert_eq!(frontier.len(), 2);
        assert!(frontier.iter().any(|e| e.quality == 0.95));
        assert!(frontier.iter().any(|e| e.cost == 0.5));
    }

    #[test]
    fn pareto_is_deterministic() {
        let cands = vec![est(1.0, 1.0, 0.5), est(1.0, 1.0, 0.5)];
        // Identical candidates: neither dominates, both kept, order stable.
        let frontier = pareto_frontier(cands.clone());
        assert_eq!(frontier, cands);
    }
}
