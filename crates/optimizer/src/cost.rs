//! The plan cost model.
//!
//! Given a candidate physical configuration (operator order + per-operator
//! models) and the sampled estimates, predict total dollars, virtual
//! seconds, and output quality. Cardinalities chain through filter
//! selectivities; quality is the product of per-operator qualities (an
//! error anywhere corrupts the output).

use crate::sampler::{quality_prior, SampleMatrix};
use aida_llm::ModelId;
use aida_semops::plan::{LogicalOp, LogicalPlan};

/// A predicted outcome for one candidate plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEstimate {
    /// Operator order (indices into the *original* logical plan).
    pub order: Vec<usize>,
    /// Model per operator (aligned with `order`).
    pub models: Vec<ModelId>,
    /// Predicted dollars.
    pub cost: f64,
    /// Predicted virtual seconds.
    pub time: f64,
    /// Predicted quality in `[0, 1]`.
    pub quality: f64,
}

impl PlanEstimate {
    /// True when `self` is at least as good as `other` on every axis and
    /// strictly better on one (Pareto dominance; lower cost/time, higher
    /// quality).
    pub fn dominates(&self, other: &PlanEstimate) -> bool {
        let no_worse = self.cost <= other.cost + 1e-12
            && self.time <= other.time + 1e-12
            && self.quality >= other.quality - 1e-12;
        let better = self.cost < other.cost - 1e-12
            || self.time < other.time - 1e-12
            || self.quality > other.quality + 1e-12;
        no_worse && better
    }
}

/// Static worst-case dollar bounds per execution tier, fed to the cost
/// model as priors alongside the sampled estimates.
///
/// The bounds come from `aida_script::bounds` — a sound abstract
/// interpretation of the compiled plan, so `usd_max(tier)` is a hard
/// ceiling on what the plan can spend with every billable call priced at
/// `tier`. The model uses them as caps: a sampled extrapolation that
/// overshoots the proven worst case is clamped down to it, because a
/// sound bound beats a noisy guess. Tiers with no finite bound simply
/// contribute no cap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StaticPrior {
    usd_max: Vec<(ModelId, f64)>,
}

impl StaticPrior {
    /// An empty prior (no caps anywhere).
    pub fn new() -> StaticPrior {
        StaticPrior::default()
    }

    /// Records the static worst case at `tier`. Non-finite bounds (the
    /// analyzer degraded to `unbounded`) are ignored — they cap nothing.
    pub fn bound(mut self, tier: ModelId, usd_max: f64) -> StaticPrior {
        if usd_max.is_finite() {
            self.usd_max.retain(|(t, _)| *t != tier);
            self.usd_max.push((tier, usd_max));
        }
        self
    }

    /// The recorded worst case at `tier`, if finite.
    pub fn usd_max(&self, tier: ModelId) -> Option<f64> {
        self.usd_max
            .iter()
            .find(|(t, _)| *t == tier)
            .map(|(_, v)| *v)
    }

    /// The sound dollar cap for a candidate that runs its operators on
    /// `models`: the worst bound over the tiers the candidate actually
    /// uses. A mixed assignment spends no more than running everything
    /// at its most expensive used tier, so that tier's bound still
    /// holds. `None` when any used tier has no finite bound (then
    /// nothing sound can be said about the whole candidate).
    pub fn cap_for(&self, models: &[ModelId]) -> Option<f64> {
        if models.is_empty() {
            return None;
        }
        let mut cap: f64 = 0.0;
        for &model in models {
            cap = cap.max(self.usd_max(model)?);
        }
        Some(cap)
    }
}

/// [`estimate`] with a static-bound prior applied: the predicted dollars
/// are clamped to the prior's sound cap for the candidate's model
/// assignment (when one exists). Time and quality are untouched — the
/// static analysis bounds spend, not latency or accuracy.
#[allow(clippy::too_many_arguments)]
pub fn estimate_with_prior(
    plan: &LogicalPlan,
    order: &[usize],
    models: &[ModelId],
    matrix: &SampleMatrix,
    input_cardinality: usize,
    parallelism: usize,
    prior: &StaticPrior,
) -> PlanEstimate {
    let mut est = estimate(plan, order, models, matrix, input_cardinality, parallelism);
    if let Some(cap) = prior.cap_for(models) {
        est.cost = est.cost.min(cap);
    }
    est
}

/// Predicts cost/time/quality for a candidate (order, models) pair.
///
/// `order` is a permutation of `0..plan.len()` (non-semantic operators must
/// keep their relative positions for correctness; the enumerator guarantees
/// this). `parallelism` divides per-batch latency.
pub fn estimate(
    plan: &LogicalPlan,
    order: &[usize],
    models: &[ModelId],
    matrix: &SampleMatrix,
    input_cardinality: usize,
    parallelism: usize,
) -> PlanEstimate {
    let p = parallelism.max(1) as f64;
    let mut card = input_cardinality as f64;
    let mut cost = matrix.sampling_cost;
    let mut time = matrix.sampling_time;
    let mut quality = 1.0;

    for (&op_idx, &model) in order.iter().zip(models) {
        let op = &plan.ops()[op_idx];
        match op {
            LogicalOp::Scan { lake, .. } => {
                card = lake.len() as f64;
                time += 0.002 * card / p;
            }
            LogicalOp::SemFilter { .. } => {
                let (unit_cost, unit_time, q, sel) = op_params(matrix, op_idx, model);
                cost += card * unit_cost;
                time += waves(card, p) * unit_time;
                quality *= q;
                card *= sel;
            }
            LogicalOp::SemExtract { fields, .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let k = fields.len().max(1) as f64;
                cost += card * unit_cost * k;
                time += waves(card, p) * unit_time * k;
                quality *= q;
            }
            LogicalOp::SemMap { .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                cost += card * unit_cost;
                time += waves(card, p) * unit_time;
                quality *= q;
            }
            LogicalOp::SemAgg { .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                // One call over the combined input.
                cost += unit_cost * card.clamp(1.0, 50.0);
                time += unit_time;
                quality *= q;
                card = 1.0;
            }
            LogicalOp::SemTopK { k, .. } => {
                time += 0.003 * card / p;
                card = card.min(*k as f64);
            }
            LogicalOp::SemGroupBy { k, .. } => {
                // Embedding is cheap; one labelling call per cluster.
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let clusters = (*k as f64).min(card).max(1.0);
                cost += clusters * unit_cost;
                time += 0.003 * card / p + waves(clusters, p) * unit_time;
                quality *= q;
            }
            LogicalOp::SemJoin { right, .. } => {
                let (unit_cost, unit_time, q, _) = op_params(matrix, op_idx, model);
                let right_card = right
                    .ops()
                    .iter()
                    .find_map(|o| match o {
                        LogicalOp::Scan { lake, .. } => Some(lake.len() as f64),
                        _ => None,
                    })
                    .unwrap_or(1.0);
                let pairs = card * right_card;
                cost += pairs * unit_cost;
                time += waves(pairs, p) * unit_time;
                quality *= q;
                card = pairs * 0.1; // default join selectivity
            }
            LogicalOp::Project { .. } => {}
            LogicalOp::Limit { n } => card = card.min(*n as f64),
            LogicalOp::Count => card = 1.0,
        }
    }

    PlanEstimate {
        order: order.to_vec(),
        models: models.to_vec(),
        cost,
        time,
        quality: quality.clamp(0.0, 1.0),
    }
}

fn waves(card: f64, parallelism: f64) -> f64 {
    (card / parallelism).ceil().max(0.0)
}

/// Per-(op, model) parameters: (cost/record, time/record, quality,
/// selectivity), falling back to priors when unsampled.
fn op_params(matrix: &SampleMatrix, op_idx: usize, model: ModelId) -> (f64, f64, f64, f64) {
    if let Some(op_est) = matrix.for_op(op_idx) {
        if let Some(m) = op_est.per_model.get(&model) {
            return (
                m.cost_per_record,
                m.time_per_record.max(1e-3),
                m.quality,
                op_est.selectivity,
            );
        }
        return (0.0, 1e-3, quality_prior(model), op_est.selectivity);
    }
    // Unsampled (no scan or sampling skipped): coarse token-based guess.
    let tokens = matrix.avg_record_tokens.max(50.0);
    let per_tok = match model {
        ModelId::Flagship => 2.5e-6,
        ModelId::Mini => 0.15e-6,
        ModelId::Nano => 0.05e-6,
    };
    (tokens * per_tok, 1.0, quality_prior(model), 0.5)
}

/// Filters a set of candidate estimates down to the Pareto frontier
/// (deterministic order preserved).
pub fn pareto_frontier(candidates: Vec<PlanEstimate>) -> Vec<PlanEstimate> {
    let mut frontier: Vec<PlanEstimate> = Vec::new();
    for cand in candidates {
        if frontier.iter().any(|f| f.dominates(&cand)) {
            continue;
        }
        frontier.retain(|f| !cand.dominates(f));
        frontier.push(cand);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(cost: f64, time: f64, quality: f64) -> PlanEstimate {
        PlanEstimate {
            order: vec![],
            models: vec![],
            cost,
            time,
            quality,
        }
    }

    #[test]
    fn dominance_requires_strictly_better_somewhere() {
        let a = est(1.0, 10.0, 0.9);
        let b = est(2.0, 10.0, 0.9);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn pareto_frontier_drops_dominated() {
        let frontier = pareto_frontier(vec![
            est(1.0, 10.0, 0.9),
            est(2.0, 10.0, 0.9),  // dominated by first
            est(0.5, 20.0, 0.8),  // cheaper but slower/worse: kept
            est(1.0, 10.0, 0.95), // dominates first
        ]);
        assert_eq!(frontier.len(), 2);
        assert!(frontier.iter().any(|e| e.quality == 0.95));
        assert!(frontier.iter().any(|e| e.cost == 0.5));
    }

    #[test]
    fn pareto_is_deterministic() {
        let cands = vec![est(1.0, 1.0, 0.5), est(1.0, 1.0, 0.5)];
        // Identical candidates: neither dominates, both kept, order stable.
        let frontier = pareto_frontier(cands.clone());
        assert_eq!(frontier, cands);
    }

    #[test]
    fn static_prior_caps_at_the_worst_used_tier() {
        let prior = StaticPrior::new()
            .bound(ModelId::Flagship, 1.0)
            .bound(ModelId::Mini, 0.1);
        assert_eq!(prior.usd_max(ModelId::Flagship), Some(1.0));
        assert_eq!(prior.usd_max(ModelId::Nano), None);
        // A mixed assignment spends no more than all-Flagship.
        assert_eq!(
            prior.cap_for(&[ModelId::Mini, ModelId::Flagship]),
            Some(1.0)
        );
        assert_eq!(prior.cap_for(&[ModelId::Mini, ModelId::Mini]), Some(0.1));
        // A used tier with no bound: nothing sound to say.
        assert_eq!(prior.cap_for(&[ModelId::Mini, ModelId::Nano]), None);
        assert_eq!(StaticPrior::new().cap_for(&[ModelId::Flagship]), None);
        // Unbounded analyses contribute no cap.
        let unbounded = StaticPrior::new().bound(ModelId::Flagship, f64::INFINITY);
        assert_eq!(unbounded.usd_max(ModelId::Flagship), None);
    }

    #[test]
    fn estimate_with_prior_clamps_overshooting_cost() {
        use aida_data::{DataLake, Document};
        use aida_semops::Dataset;
        let lake = DataLake::from_docs(
            (0..50).map(|i| Document::new(format!("d{i}.txt"), format!("doc {i}"))),
        );
        let ds = Dataset::scan(&lake, "docs").sem_filter("is relevant");
        let plan = ds.plan();
        let order: Vec<usize> = (0..plan.len()).collect();
        let models = vec![ModelId::Flagship; plan.len()];
        let matrix = SampleMatrix::default();
        let plain = estimate(plan, &order, &models, &matrix, 50, 8);
        assert!(plain.cost > 0.0);
        let cap = plain.cost / 2.0;
        let prior = StaticPrior::new().bound(ModelId::Flagship, cap);
        let capped = estimate_with_prior(plan, &order, &models, &matrix, 50, 8, &prior);
        assert_eq!(capped.cost, cap, "sampled overshoot clamps to the bound");
        assert_eq!(capped.time, plain.time, "the bound says nothing about time");
        assert_eq!(capped.quality, plain.quality);
        // A generous bound leaves the sampled estimate alone.
        let loose = StaticPrior::new().bound(ModelId::Flagship, plain.cost * 2.0);
        let kept = estimate_with_prior(plan, &order, &models, &matrix, 50, 8, &loose);
        assert_eq!(kept.cost, plain.cost);
    }
}
