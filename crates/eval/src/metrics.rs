//! Evaluation metrics.

use std::collections::HashSet;

/// Precision / recall / F1 for a retrieved set against a truth set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    /// Fraction of returned items that are relevant.
    pub precision: f64,
    /// Fraction of relevant items that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes precision/recall/F1. Conventions: empty-returned has precision
/// 0 unless the truth is also empty (then everything is 1).
pub fn f1_score<S: AsRef<str>>(returned: &[S], truth: &[S]) -> Prf {
    let truth_set: HashSet<&str> = truth.iter().map(AsRef::as_ref).collect();
    let returned_set: HashSet<&str> = returned.iter().map(AsRef::as_ref).collect();
    if truth_set.is_empty() && returned_set.is_empty() {
        return Prf {
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
    }
    let hits = returned_set.intersection(&truth_set).count() as f64;
    let precision = if returned_set.is_empty() {
        0.0
    } else {
        hits / returned_set.len() as f64
    };
    let recall = if truth_set.is_empty() {
        0.0
    } else {
        hits / truth_set.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

/// Relative error of `answer` against `truth`, as a fraction (0.02 = 2%).
/// A missing/garbage answer scores 1.0 (100% error), matching how the
/// paper treats trials that return nothing usable.
pub fn percent_error(answer: Option<f64>, truth: f64) -> f64 {
    match answer {
        Some(a) if a.is_finite() && truth != 0.0 => ((a - truth) / truth).abs().min(1.0),
        _ => 1.0,
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_retrieval() {
        let prf = f1_score(&["a", "b"], &["a", "b"]);
        assert_eq!(
            prf,
            Prf {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0
            }
        );
    }

    #[test]
    fn partial_retrieval() {
        // Returned 2, one right; truth has 4.
        let prf = f1_score(&["a", "x"], &["a", "b", "c", "d"]);
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert!((prf.recall - 0.25).abs() < 1e-12);
        assert!((prf.f1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(f1_score::<&str>(&[], &[]).f1, 1.0);
        assert_eq!(f1_score(&[], &["a"]).f1, 0.0);
        assert_eq!(f1_score(&["a"], &[]).f1, 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let prf = f1_score(&["a", "a", "a"], &["a", "b"]);
        assert!((prf.precision - 1.0).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percent_error_basics() {
        assert!((percent_error(Some(13.0), 13.0)).abs() < 1e-12);
        assert!((percent_error(Some(11.0), 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(percent_error(None, 10.0), 1.0);
        assert_eq!(percent_error(Some(f64::NAN), 10.0), 1.0);
        // Errors cap at 100%.
        assert_eq!(percent_error(Some(1e9), 1.0), 1.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }
}
