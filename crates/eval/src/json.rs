//! A minimal JSON writer (keeps serde out of the dependency tree).
//!
//! The implementation lives in `aida-obs` (the trace exporter needs it
//! below this crate in the dependency graph); this module re-exports it so
//! existing `aida_eval::json::Json` paths keep working.

pub use aida_obs::Json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_json_renders() {
        let v = Json::obj()
            .field("name", "aida")
            .field("n", 3i64)
            .field("ok", true);
        assert_eq!(v.render(), r#"{"name":"aida","n":3,"ok":true}"#);
    }
}
