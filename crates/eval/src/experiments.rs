//! Experiment drivers: one per table/figure of the paper (plus ablations).

use crate::json::Json;
use crate::metrics::{self, f1_score, percent_error};
use crate::systems::{run_code_agent, run_pz_compute, run_semops_handcrafted, SystemAnswer};
use aida_core::{Context, Runtime};
use aida_synth::{enron, legal, Workload};

/// One row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: String,
    /// `(metric name, value)` pairs in column order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Value of a metric by name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| n == metric)
            .map(|(_, v)| *v)
    }
}

/// A completed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `table1`.
    pub name: String,
    /// Human title.
    pub title: String,
    /// Column names (metrics).
    pub columns: Vec<String>,
    /// One row per system.
    pub rows: Vec<Row>,
    /// Paper-reported values for the same cells, where applicable.
    pub paper: Vec<Row>,
    /// Trials averaged.
    pub trials: usize,
}

impl ExperimentReport {
    /// Row lookup by system name.
    pub fn row(&self, system: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.system == system)
    }

    /// Renders an aligned ASCII table (measured, then paper reference).
    pub fn render(&self) -> String {
        let mut out = format!("## {} ({} trials)\n\n", self.title, self.trials);
        let render_rows = |out: &mut String, rows: &[Row]| {
            let mut widths = vec![12usize];
            for c in &self.columns {
                widths.push(c.len().max(9));
            }
            *out += &format!("{:<12}", "System");
            for (c, w) in self.columns.iter().zip(&widths[1..]) {
                *out += &format!(" | {c:>w$}", w = w);
            }
            out.push('\n');
            *out += &"-".repeat(
                13 + self
                    .columns
                    .iter()
                    .map(|c| c.len().max(9) + 3)
                    .sum::<usize>(),
            );
            out.push('\n');
            for row in rows {
                *out += &format!("{:<12}", row.system);
                for (c, w) in self.columns.iter().zip(&widths[1..]) {
                    match row.get(c) {
                        Some(v) => *out += &format!(" | {v:>w$.4}", w = w),
                        None => *out += &format!(" | {:>w$}", "-", w = w),
                    }
                }
                out.push('\n');
            }
        };
        out.push_str("Measured:\n");
        render_rows(&mut out, &self.rows);
        if !self.paper.is_empty() {
            out.push_str("\nPaper reported:\n");
            render_rows(&mut out, &self.paper);
        }
        out
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut obj = Json::obj().field("system", r.system.clone());
                for (name, value) in &r.values {
                    obj = obj.field(name, *value);
                }
                obj
            })
            .collect();
        Json::obj()
            .field("name", self.name.clone())
            .field("title", self.title.clone())
            .field("trials", self.trials)
            .field("rows", Json::Arr(rows))
    }
}

/// Default trial seeds (the paper averages three runs).
pub const TRIAL_SEEDS: [u64; 3] = [1, 2, 3];

fn legal_error(answer: &SystemAnswer) -> f64 {
    let truth = legal::true_ratio();
    match answer {
        SystemAnswer::Numbers(ratios) if !ratios.is_empty() => metrics::mean(
            &ratios
                .iter()
                .map(|r| percent_error(Some(*r), truth))
                .collect::<Vec<_>>(),
        ),
        _ => 1.0,
    }
}

fn enron_prf(answer: &SystemAnswer, workload: &Workload) -> crate::metrics::Prf {
    let truth = workload.truth.as_doc_set().unwrap_or(&[]).to_vec();
    match answer {
        SystemAnswer::Docs(docs) => f1_score(docs, &truth),
        _ => f1_score(&Vec::<String>::new(), &truth),
    }
}

/// Per-system accumulators: `(name, metric trials, cost trials, time trials)`.
type ErrSlots<'a> = Vec<(&'a str, Vec<f64>, Vec<f64>, Vec<f64>)>;
/// Per-system accumulators with precision/recall/F1 metrics.
type PrfSlots<'a> = Vec<(&'a str, Vec<crate::metrics::Prf>, Vec<f64>, Vec<f64>)>;

/// **Table 1**: `compute` vs. handcrafted semantic operators vs. CodeAgent
/// on the Kramabench `legal-easy-3` ratio query. Columns: mean percent
/// error (fraction), dollars, virtual seconds.
pub fn table1(seeds: &[u64]) -> ExperimentReport {
    let mut systems: ErrSlots = vec![
        ("Sem. Ops", vec![], vec![], vec![]),
        ("CodeAgent", vec![], vec![], vec![]),
        ("PZ compute", vec![], vec![], vec![]),
    ];
    for &seed in seeds {
        let workload = legal::generate(seed);
        let runs = [
            run_semops_handcrafted(&workload, seed),
            run_code_agent(&workload, seed, false),
            run_pz_compute(&workload, seed),
        ];
        for (slot, run) in systems.iter_mut().zip(runs) {
            slot.1.push(legal_error(&run.answer));
            slot.2.push(run.cost);
            slot.3.push(run.time);
        }
    }
    let rows = systems
        .into_iter()
        .map(|(name, errs, costs, times)| Row {
            system: name.to_string(),
            values: vec![
                ("pct_err".into(), metrics::mean(&errs)),
                ("cost".into(), metrics::mean(&costs)),
                ("time_s".into(), metrics::mean(&times)),
            ],
        })
        .collect();
    ExperimentReport {
        name: "table1".into(),
        title: "Table 1: Kramabench legal-easy-3 (identity-theft ratio)".into(),
        columns: vec!["pct_err".into(), "cost".into(), "time_s".into()],
        rows,
        paper: vec![
            paper_row(
                "Sem. Ops",
                &[("pct_err", 0.17), ("cost", 1.66), ("time_s", 215.2)],
            ),
            paper_row(
                "CodeAgent",
                &[("pct_err", 0.2756), ("cost", 0.03), ("time_s", 77.0)],
            ),
            paper_row(
                "PZ compute",
                &[("pct_err", 0.0002), ("cost", 1.17), ("time_s", 583.0)],
            ),
        ],
        trials: seeds.len(),
    }
}

/// **Table 2**: `compute` vs. CodeAgent vs. CodeAgent+ on the Enron email
/// filtering task. Columns: F1/recall/precision (fractions), dollars,
/// virtual seconds.
pub fn table2(seeds: &[u64]) -> ExperimentReport {
    let mut systems: PrfSlots = vec![
        ("CodeAgent", vec![], vec![], vec![]),
        ("CodeAgent+", vec![], vec![], vec![]),
        ("PZ compute", vec![], vec![], vec![]),
    ];
    for &seed in seeds {
        let workload = enron::generate(seed);
        let runs = [
            run_code_agent(&workload, seed, false),
            run_code_agent(&workload, seed, true),
            run_pz_compute(&workload, seed),
        ];
        for (slot, run) in systems.iter_mut().zip(runs) {
            slot.1.push(enron_prf(&run.answer, &workload));
            slot.2.push(run.cost);
            slot.3.push(run.time);
        }
    }
    let rows = systems
        .into_iter()
        .map(|(name, prfs, costs, times)| {
            let f1s: Vec<f64> = prfs.iter().map(|p| p.f1).collect();
            let recalls: Vec<f64> = prfs.iter().map(|p| p.recall).collect();
            let precisions: Vec<f64> = prfs.iter().map(|p| p.precision).collect();
            Row {
                system: name.to_string(),
                values: vec![
                    ("f1".into(), metrics::mean(&f1s)),
                    ("recall".into(), metrics::mean(&recalls)),
                    ("precision".into(), metrics::mean(&precisions)),
                    ("cost".into(), metrics::mean(&costs)),
                    ("time_s".into(), metrics::mean(&times)),
                ],
            }
        })
        .collect();
    ExperimentReport {
        name: "table2".into(),
        title: "Table 2: Enron email filtering (two NL predicates)".into(),
        columns: vec![
            "f1".into(),
            "recall".into(),
            "precision".into(),
            "cost".into(),
            "time_s".into(),
        ],
        rows,
        paper: vec![
            paper_row(
                "CodeAgent",
                &[
                    ("f1", 0.5053),
                    ("recall", 0.4615),
                    ("precision", 0.8889),
                    ("cost", 0.08),
                    ("time_s", 37.0),
                ],
            ),
            paper_row(
                "CodeAgent+",
                &[
                    ("f1", 0.9867),
                    ("recall", 0.9744),
                    ("precision", 1.0),
                    ("cost", 3.76),
                    ("time_s", 1999.9),
                ],
            ),
            paper_row(
                "PZ compute",
                &[
                    ("f1", 0.9867),
                    ("recall", 0.9744),
                    ("precision", 1.0),
                    ("cost", 0.87),
                    ("time_s", 546.2),
                ],
            ),
        ],
        trials: seeds.len(),
    }
}

/// **Ablation A** (§3 physical optimization): the ContextManager's
/// materialized-Context reuse. Runs "thefts in 2001" then "thefts in 2024"
/// with reuse on vs. off; reports the second query's cost/time.
pub fn ablation_reuse(seeds: &[u64]) -> ExperimentReport {
    let mut on = (Vec::new(), Vec::new());
    let mut off = (Vec::new(), Vec::new());
    for &seed in seeds {
        for (enable, slot) in [(true, &mut on), (false, &mut off)] {
            let rt = Runtime::builder().seed(seed).context_reuse(enable).build();
            let workload = legal::generate(seed);
            workload.install_oracle(&rt.env().llm);
            let ctx = Context::builder("legal", workload.lake.clone())
                .description(workload.description.clone())
                .with_vector_index()
                .build(&rt);
            let _ = rt
                .query(&ctx)
                .compute("find the number of identity theft reports in 2001")
                .run();
            let second = rt
                .query(&ctx)
                .compute("find the number of identity theft reports in 2024")
                .run();
            slot.0.push(second.cost);
            slot.1.push(second.time);
        }
    }
    ExperimentReport {
        name: "ablation_reuse".into(),
        title: "Ablation A: ContextManager reuse (second query cost/time)".into(),
        columns: vec!["cost".into(), "time_s".into()],
        rows: vec![
            Row {
                system: "reuse on".into(),
                values: vec![
                    ("cost".into(), metrics::mean(&on.0)),
                    ("time_s".into(), metrics::mean(&on.1)),
                ],
            },
            Row {
                system: "reuse off".into(),
                values: vec![
                    ("cost".into(), metrics::mean(&off.0)),
                    ("time_s".into(), metrics::mean(&off.1)),
                ],
            },
        ],
        paper: Vec::new(),
        trials: seeds.len(),
    }
}

/// **Ablation B** (§3 physical optimization): what the cost-based model
/// selection buys. Executes the synthesized Enron program under three
/// configurations — optimizer-chosen models, all-flagship, all-nano — and
/// reports F1/cost/time of each.
pub fn ablation_optimizer(seeds: &[u64]) -> ExperimentReport {
    use aida_llm::ModelId;
    use aida_optimizer::{Optimizer, Policy};
    use aida_semops::{ExecEnv, Executor, PhysicalPlan};

    let mut slots: PrfSlots = vec![
        ("optimized", vec![], vec![], vec![]),
        ("flagship", vec![], vec![], vec![]),
        ("nano", vec![], vec![], vec![]),
    ];
    for &seed in seeds {
        let workload = enron::generate(seed);
        let ds = aida_core::ProgramSynthesizer::synthesize(&workload.query, &workload.lake);
        for (i, slot) in slots.iter_mut().enumerate() {
            let env = ExecEnv::new(aida_llm::SimLlm::new(seed));
            workload.install_oracle(&env.llm);
            let plan = match i {
                0 => {
                    let optimizer =
                        Optimizer::new(&env, aida_optimizer::OptimizerConfig::default());
                    optimizer
                        .optimize(
                            ds.plan(),
                            &Policy::MinCost {
                                quality_floor: 0.85,
                            },
                        )
                        .physical
                }
                1 => PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 8),
                _ => PhysicalPlan::uniform(ds.plan(), ModelId::Nano, 8),
            };
            let before = env.llm.meter().snapshot();
            let t0 = env.clock.now();
            let report = Executor::new(&env).execute(&plan);
            let delta = env.llm.meter().snapshot().since(&before);
            let docs: Vec<String> = report.records.iter().map(|r| r.source.clone()).collect();
            slot.1.push(enron_prf(&SystemAnswer::Docs(docs), &workload));
            slot.2.push(delta.cost(env.llm.catalog()));
            slot.3.push(env.clock.now() - t0);
        }
    }
    let rows = slots
        .into_iter()
        .map(|(name, prfs, costs, times)| Row {
            system: name.to_string(),
            values: vec![
                (
                    "f1".into(),
                    metrics::mean(&prfs.iter().map(|p| p.f1).collect::<Vec<_>>()),
                ),
                ("cost".into(), metrics::mean(&costs)),
                ("time_s".into(), metrics::mean(&times)),
            ],
        })
        .collect();
    ExperimentReport {
        name: "ablation_optimizer".into(),
        title: "Ablation B: cost-based model selection (Enron program)".into(),
        columns: vec!["f1".into(), "cost".into(), "time_s".into()],
        rows,
        paper: Vec::new(),
        trials: seeds.len(),
    }
}

/// **Ablation E** (Abacus §): how much sampling the optimizer needs.
/// Sweeps the bandit pull budget (0 = priors only) on the Enron program and
/// reports quality and total cost (sampling included).
pub fn ablation_sampling(seeds: &[u64], budgets: &[usize]) -> ExperimentReport {
    use aida_optimizer::{Optimizer, OptimizerConfig, Policy, SamplerConfig};
    use aida_semops::{ExecEnv, Executor};

    let mut rows = Vec::new();
    for &pulls in budgets {
        let mut prfs = Vec::new();
        let mut costs = Vec::new();
        let mut sampling_costs = Vec::new();
        for &seed in seeds {
            let workload = enron::generate(seed);
            let ds = aida_core::ProgramSynthesizer::synthesize(&workload.query, &workload.lake);
            let env = ExecEnv::new(aida_llm::SimLlm::new(seed));
            workload.install_oracle(&env.llm);
            let config = OptimizerConfig {
                sampler: SamplerConfig {
                    sample_records: 10,
                    bandit_pulls: pulls,
                },
                skip_sampling: pulls == 0,
                ..OptimizerConfig::default()
            };
            let optimizer = Optimizer::new(&env, config);
            let optimized = optimizer.optimize(
                ds.plan(),
                &Policy::MinCost {
                    quality_floor: 0.85,
                },
            );
            let before = env.llm.meter().snapshot();
            let report = Executor::new(&env).execute(&optimized.physical);
            let exec_cost = env
                .llm
                .meter()
                .snapshot()
                .since(&before)
                .cost(env.llm.catalog());
            let docs: Vec<String> = report.records.iter().map(|r| r.source.clone()).collect();
            prfs.push(enron_prf(&SystemAnswer::Docs(docs), &workload));
            costs.push(exec_cost + optimized.matrix.sampling_cost);
            sampling_costs.push(optimized.matrix.sampling_cost);
        }
        rows.push(Row {
            system: format!("pulls={pulls}"),
            values: vec![
                (
                    "f1".into(),
                    metrics::mean(&prfs.iter().map(|p| p.f1).collect::<Vec<_>>()),
                ),
                ("cost".into(), metrics::mean(&costs)),
                ("sampling_cost".into(), metrics::mean(&sampling_costs)),
            ],
        });
    }
    ExperimentReport {
        name: "ablation_sampling".into(),
        title: "Ablation E: optimizer sampling budget (Enron program)".into(),
        columns: vec!["f1".into(), "cost".into(), "sampling_cost".into()],
        rows,
        paper: Vec::new(),
        trials: seeds.len(),
    }
}

/// **Ablation C** (§2.1 motivation): iterator semantics vs. indexed access
/// as the lake grows. Compares a full semantic-filter scan against
/// vector-search narrowing + filter on the shortlist, at several lake
/// sizes. Rows are `scan@N` / `index@N`.
pub fn ablation_access(sizes: &[usize], seed: u64) -> ExperimentReport {
    use aida_llm::ModelId;
    use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};

    let mut rows = Vec::new();
    for &n_states in sizes {
        let workload = legal::generate_scaled(seed, n_states);
        let n_files = workload.lake.len();
        // Full scan.
        let env = ExecEnv::new(aida_llm::SimLlm::new(seed));
        workload.install_oracle(&env.llm);
        let ds = Dataset::scan(&workload.lake, "legal").sem_filter(
            "the file contains national statistics on the number of identity theft reports, \
             covering both the years 2001 and 2024",
        );
        let report =
            Executor::new(&env).execute(&PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 8));
        rows.push(Row {
            system: format!("scan@{n_files}"),
            values: vec![
                ("cost".into(), report.cost()),
                ("time_s".into(), report.time()),
                ("llm_calls".into(), report.stats.total_calls() as f64),
            ],
        });
        // Index-narrowed access through a Context.
        let rt = Runtime::builder().seed(seed).build();
        workload.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", workload.lake.clone())
            .with_vector_index()
            .build(&rt);
        let before = rt.usage();
        let t0 = rt.elapsed();
        let shortlist = ctx.vector_search(&rt, "national identity theft reports by year", 8);
        let docs: Vec<_> = shortlist
            .iter()
            .filter_map(|name| workload.lake.get(name))
            .map(|d| d.as_ref().clone())
            .collect();
        let narrowed = aida_data::DataLake::from_docs(docs);
        let ds = Dataset::scan(&narrowed, "shortlist").sem_filter(
            "the file contains national statistics on the number of identity theft reports, \
             covering both the years 2001 and 2024",
        );
        let report = Executor::new(rt.env()).execute(&PhysicalPlan::uniform(
            ds.plan(),
            ModelId::Flagship,
            8,
        ));
        let delta = rt.usage().since(&before);
        rows.push(Row {
            system: format!("index@{n_files}"),
            values: vec![
                ("cost".into(), delta.cost(rt.env().llm.catalog())),
                ("time_s".into(), rt.elapsed() - t0),
                ("llm_calls".into(), report.stats.total_calls() as f64),
            ],
        });
    }
    ExperimentReport {
        name: "ablation_access".into(),
        title: "Ablation C: full-scan vs. index-narrowed access by lake size".into(),
        columns: vec!["cost".into(), "time_s".into(), "llm_calls".into()],
        rows,
        paper: Vec::new(),
        trials: 1,
    }
}

/// **Ablation D** (§3 logical optimization): directive splitting. Runs the
/// legal ratio compute with and without the split/merge rewrites.
pub fn ablation_rewrite(seeds: &[u64]) -> ExperimentReport {
    let mut on = (Vec::new(), Vec::new(), Vec::new());
    let mut off = (Vec::new(), Vec::new(), Vec::new());
    for &seed in seeds {
        for (enable, slot) in [(true, &mut on), (false, &mut off)] {
            let rt = Runtime::builder().seed(seed).build();
            let workload = legal::generate(seed);
            workload.install_oracle(&rt.env().llm);
            let ctx = Context::builder("legal", workload.lake.clone())
                .description(workload.description.clone())
                .with_vector_index()
                .build(&rt);
            let outcome = rt
                .query(&ctx)
                .compute(&workload.query)
                .with_rewrites(enable)
                .run();
            let err = legal_error(&SystemAnswer::from_value(outcome.answer));
            slot.0.push(err);
            slot.1.push(outcome.cost);
            slot.2.push(outcome.time);
        }
    }
    let row = |name: &str, s: &(Vec<f64>, Vec<f64>, Vec<f64>)| Row {
        system: name.to_string(),
        values: vec![
            ("pct_err".into(), metrics::mean(&s.0)),
            ("cost".into(), metrics::mean(&s.1)),
            ("time_s".into(), metrics::mean(&s.2)),
        ],
    };
    ExperimentReport {
        name: "ablation_rewrite".into(),
        title: "Ablation D: split/merge rewrites on the legal ratio query".into(),
        columns: vec!["pct_err".into(), "cost".into(), "time_s".into()],
        rows: vec![row("rewrites on", &on), row("rewrites off", &off)],
        paper: Vec::new(),
        trials: seeds.len(),
    }
}

/// **Figure 1**: qualitative per-system traces on both workloads.
pub fn figure1(seed: u64) -> String {
    let mut out = String::from(
        "# Figure 1 — execution traces\n\n\
         ## Left: Kramabench legal-easy-3 (ratio of identity theft reports 2024/2001)\n\n",
    );
    let legal_w = legal::generate(seed);
    let semops = run_semops_handcrafted(&legal_w, seed);
    out += &format!(
        "### Handcrafted semantic-operator program (err {:.1}%, ${:.2}, {:.0}s)\n{}\n",
        legal_error(&semops.answer) * 100.0,
        semops.cost,
        semops.time,
        semops.detail
    );
    let compute = run_pz_compute(&legal_w, seed);
    out += &format!(
        "### Prototype compute operator (err {:.2}%, ${:.2}, {:.0}s)\n{}\n",
        legal_error(&compute.answer) * 100.0,
        compute.cost,
        compute.time,
        compute.detail
    );
    out += "\n## Right: Enron email filtering (firsthand transaction discussion)\n\n";
    let enron_w = enron::generate(seed);
    let agent = run_code_agent(&enron_w, seed, false);
    let prf = enron_prf(&agent.answer, &enron_w);
    out += &format!(
        "### Open Deep Research CodeAgent (F1 {:.1}%, recall {:.1}%, ${:.2}, {:.0}s)\n{}\n",
        prf.f1 * 100.0,
        prf.recall * 100.0,
        agent.cost,
        agent.time,
        agent.detail
    );
    let compute = run_pz_compute(&enron_w, seed);
    let prf = enron_prf(&compute.answer, &enron_w);
    out += &format!(
        "### Prototype compute operator (F1 {:.1}%, recall {:.1}%, ${:.2}, {:.0}s)\n{}\n",
        prf.f1 * 100.0,
        prf.recall * 100.0,
        compute.cost,
        compute.time,
        compute.detail
    );
    out
}

/// **Figure 2**: the search → compute pipeline over a Context, with the
/// Context description before/after each operator.
pub fn figure2(seed: u64) -> String {
    figure2_traced(seed).0
}

/// Like [`figure2`], but with span tracing enabled; returns the recorder
/// alongside the rendered figure. Recording never touches the clock or
/// meter, so the rendered text is identical to the untraced run.
pub fn figure2_traced(seed: u64) -> (String, aida_obs::Recorder) {
    let rt = Runtime::builder().seed(seed).tracing(true).build();
    let workload = legal::generate(seed);
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder("legal", workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let mut out = String::from("# Figure 2 — a PZ program and its physical plan\n\n");
    out += &format!(
        "Initial Context: {} docs\ndescription: {}\n\n",
        ctx.len(),
        ctx.description
    );
    out += "Logical pipeline:\n  ctx = Context(legal_lake, desc=..., index=vector)\n  \
            ctx = ctx.search(\"look for information on identity thefts\")\n  \
            out = ctx.compute(\"compute the number of identity theft reports in 2024\")\n\n";
    let outcome = rt
        .query(&ctx)
        .search("look for information on identity thefts")
        .compute("compute the number of identity theft reports in 2024")
        .run();
    for t in &outcome.trace {
        out += &format!(
            "== {} \"{}\" (reused={}, {} agent steps, ${:.3}, {:.0}s)\n",
            t.op, t.instruction, t.reused, t.agent_steps, t.cost, t.time
        );
        for p in &t.programs {
            out += &format!("  synthesized program for {:?}:\n", p.instruction);
            for line in p.plan.lines() {
                out += &format!("    {line}\n");
            }
            out += &format!("  -> {} records\n", p.records.len());
        }
    }
    out += &format!(
        "\nFinal Context: {} docs\ndescription (enriched): {}\n",
        outcome.context.len(),
        outcome.context.description
    );
    out += &format!(
        "\nanswer: {}   (total ${:.3}, {:.0}s)\n",
        outcome
            .answer
            .map(|v| v.to_string())
            .unwrap_or_else(|| "<none>".into()),
        outcome.cost,
        outcome.time
    );
    (out, rt.recorder().clone())
}

fn paper_row(system: &str, values: &[(&str, f64)]) -> Row {
    Row {
        system: system.to_string(),
        values: values.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_lookup() {
        let row = paper_row("x", &[("a", 1.0)]);
        assert_eq!(row.get("a"), Some(1.0));
        assert_eq!(row.get("b"), None);
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = ExperimentReport {
            name: "t".into(),
            title: "Test".into(),
            columns: vec!["m".into()],
            rows: vec![paper_row("sys", &[("m", 0.5)])],
            paper: vec![paper_row("sys", &[("m", 0.6)])],
            trials: 3,
        };
        let text = report.render();
        assert!(text.contains("sys"));
        assert!(text.contains("0.5"));
        assert!(text.contains("Paper reported"));
        let json = report.to_json().render();
        assert!(json.contains("\"system\":\"sys\""));
    }

    // Single-trial smoke runs of the table experiments (the full 3-trial
    // versions run in aida-bench binaries).
    #[test]
    fn table1_single_trial_shape_holds() {
        let report = table1(&[1]);
        let semops = report.row("Sem. Ops").unwrap();
        let agent = report.row("CodeAgent").unwrap();
        let compute = report.row("PZ compute").unwrap();
        // Quality: compute best.
        assert!(
            compute.get("pct_err").unwrap() <= semops.get("pct_err").unwrap() + 1e-9,
            "compute {} vs semops {}",
            compute.get("pct_err").unwrap(),
            semops.get("pct_err").unwrap()
        );
        // Cost: agent cheapest.
        assert!(agent.get("cost").unwrap() < compute.get("cost").unwrap());
        assert!(agent.get("cost").unwrap() < semops.get("cost").unwrap());
        // Time: agent fastest.
        assert!(agent.get("time_s").unwrap() < compute.get("time_s").unwrap());
    }

    #[test]
    fn table2_single_trial_shape_holds() {
        let report = table2(&[1]);
        let agent = report.row("CodeAgent").unwrap();
        let plus = report.row("CodeAgent+").unwrap();
        let compute = report.row("PZ compute").unwrap();
        // Quality: compute and CodeAgent+ far above plain CodeAgent.
        assert!(compute.get("f1").unwrap() > agent.get("f1").unwrap() + 0.2);
        assert!(plus.get("f1").unwrap() > agent.get("f1").unwrap() + 0.2);
        // Cost/time: compute much cheaper and faster than CodeAgent+.
        assert!(compute.get("cost").unwrap() < plus.get("cost").unwrap() * 0.6);
        assert!(compute.get("time_s").unwrap() < plus.get("time_s").unwrap() * 0.6);
    }

    #[test]
    fn ablation_reuse_single_trial_saves() {
        let report = ablation_reuse(&[1]);
        let on = report.row("reuse on").unwrap().get("cost").unwrap();
        let off = report.row("reuse off").unwrap().get("cost").unwrap();
        assert!(on < off, "reuse on ${on} vs off ${off}");
    }
}

#[cfg(test)]
mod figure_tests {
    #[test]
    fn figure1_trace_contains_all_four_systems() {
        let text = super::figure1(1);
        assert!(text.contains("Handcrafted semantic-operator program"));
        assert!(text.contains("Open Deep Research CodeAgent"));
        assert!(text.contains("Prototype compute operator"));
        assert!(text.contains("physical plan"));
        assert!(text.contains("final_answer"));
        assert!(
            text.len() > 2_000,
            "trace should be substantial: {}",
            text.len()
        );
    }

    #[test]
    fn figure2_shows_pipeline_and_enrichment() {
        let text = super::figure2(1);
        assert!(text.contains("search"));
        assert!(text.contains("compute"));
        assert!(text.contains("FINDINGS"));
        assert!(text.contains("1135291"), "the answer appears in the trace");
        assert!(text.contains("synthesized program"));
    }
}
