//! `aida-eval`: the evaluation harness for the paper's experiments.
//!
//! Defines the metrics (percent error, precision/recall/F1), the four
//! evaluated systems (handcrafted semantic-operator program, CodeAgent,
//! CodeAgent+, and the prototype's `compute` operator), the trial runner,
//! and the per-table/figure experiment drivers used by `aida-bench` and
//! `EXPERIMENTS.md`.
//!
//! Every experiment runs N independent trials (fresh runtime, fresh seed)
//! and reports averages — matching the paper's "ran each system three
//! times and report the average" protocol.

pub mod experiments;
pub mod json;
pub mod metrics;
pub mod systems;

pub use experiments::{
    ablation_access, ablation_optimizer, ablation_reuse, ablation_rewrite, ablation_sampling,
    figure1, figure2, figure2_traced, table1, table2, ExperimentReport, Row,
};
pub use metrics::{f1_score, percent_error, Prf};
pub use systems::{run_pz_compute, run_pz_compute_traced, SystemAnswer, SystemRun};
