//! The four evaluated systems.
//!
//! Each runner takes a workload and a trial seed, builds a *fresh*
//! environment (meter, clock, caches), runs the system end-to-end, and
//! reports its answer plus the dollars and virtual seconds it consumed.

use aida_agents::{tools, AgentConfig, AgentRuntime, CodeAgent, Persona, ToolRegistry};
use aida_core::{Context, Runtime};
use aida_data::{Field, Value};
use aida_llm::{ModelId, SimLlm};
use aida_semops::{Dataset, ExecEnv, Executor, PhysicalPlan};
use aida_synth::Workload;

/// A system's answer, normalized per task family.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemAnswer {
    /// One or more numeric answers (ratio queries; several when the system
    /// produced multiple candidate ratios, as the paper's semantic-operator
    /// baseline did).
    Numbers(Vec<f64>),
    /// A set of document names (filter queries).
    Docs(Vec<String>),
    /// The system produced nothing usable.
    None,
}

impl SystemAnswer {
    /// Converts a raw agent/compute answer value.
    pub fn from_value(value: Option<Value>) -> SystemAnswer {
        match value {
            Some(Value::Float(f)) if f.is_finite() => SystemAnswer::Numbers(vec![f]),
            Some(Value::Int(i)) => SystemAnswer::Numbers(vec![i as f64]),
            Some(Value::List(items)) => {
                let docs: Vec<String> = items
                    .iter()
                    .filter_map(|v| v.as_str().ok().map(str::to_string))
                    .collect();
                if docs.is_empty() && !items.is_empty() {
                    let nums: Vec<f64> = items.iter().filter_map(|v| v.as_float().ok()).collect();
                    if nums.is_empty() {
                        SystemAnswer::None
                    } else {
                        SystemAnswer::Numbers(nums)
                    }
                } else {
                    SystemAnswer::Docs(docs)
                }
            }
            Some(Value::Str(s)) => match s.trim().parse::<f64>() {
                Ok(f) if f.is_finite() => SystemAnswer::Numbers(vec![f]),
                _ => SystemAnswer::None,
            },
            _ => SystemAnswer::None,
        }
    }
}

/// The result of one system trial.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// The system's answer.
    pub answer: SystemAnswer,
    /// Dollars spent.
    pub cost: f64,
    /// Virtual seconds elapsed.
    pub time: f64,
    /// Free-form execution detail (plans, traces) for figures.
    pub detail: String,
}

/// Runs the handcrafted semantic-operator program (the paper's "Sem. Ops"
/// baseline): a fixed Palimpzest-style pipeline executed with the flagship
/// model — exhaustive iterator semantics, no agentic planning.
pub fn run_semops_handcrafted(workload: &Workload, seed: u64) -> SystemRun {
    let env = ExecEnv::new(SimLlm::new(seed));
    workload.install_oracle(&env.llm);
    if workload.name.starts_with("legal") {
        // filter(files with national id-theft stats) -> extract both years.
        let ds = Dataset::scan(&workload.lake, "legal")
            .sem_filter(
                "the file contains national statistics on the number of identity theft \
                 reports, covering both the years 2001 and 2024",
            )
            .sem_extract(
                "find the number of identity theft reports in 2024",
                vec![Field::described(
                    "thefts_2024",
                    "identity theft reports in 2024",
                )],
            )
            .sem_extract(
                "find the number of identity theft reports in 2001",
                vec![Field::described(
                    "thefts_2001",
                    "identity theft reports in 2001",
                )],
            );
        let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
        let report = Executor::new(&env).execute(&plan);
        let mut ratios = Vec::new();
        for rec in &report.records {
            let hi = rec.get("thefts_2024").and_then(|v| v.as_float().ok());
            let lo = rec.get("thefts_2001").and_then(|v| v.as_float().ok());
            if let (Some(hi), Some(lo)) = (hi, lo) {
                if lo > 0.0 {
                    ratios.push(hi / lo);
                }
            }
        }
        SystemRun {
            answer: if ratios.is_empty() {
                SystemAnswer::None
            } else {
                SystemAnswer::Numbers(ratios)
            },
            cost: report.cost(),
            time: report.time(),
            detail: format!("{}\n{}", plan.render(), report.stats.render()),
        }
    } else {
        // Two filters + the three extractions, flagship everywhere.
        let ds = Dataset::scan(&workload.lake, "emails")
            .sem_filter(
                "the email mentions one or more of the Raptor, Chewco, LJM, Talon, or \
                 Condor business transactions",
            )
            .sem_filter(
                "the email contains firsthand discussion of one or more of the Raptor, \
                 Chewco, LJM, Talon, or Condor business transactions",
            )
            .sem_extract(
                "extract the sender email address",
                vec![Field::new("sender")],
            )
            .sem_extract("extract the subject line", vec![Field::new("subject")])
            .sem_map("write a one-sentence summary of the email", "summary", 60);
        let plan = PhysicalPlan::uniform(ds.plan(), ModelId::Flagship, 4);
        let report = Executor::new(&env).execute(&plan);
        SystemRun {
            answer: SystemAnswer::Docs(report.records.iter().map(|r| r.source.clone()).collect()),
            cost: report.cost(),
            time: report.time(),
            detail: format!("{}\n{}", plan.render(), report.stats.render()),
        }
    }
}

/// Runs an open Deep Research CodeAgent. With `sem_tools` the agent also
/// gets the unoptimized semantic-operator tools (the paper's CodeAgent+).
pub fn run_code_agent(workload: &Workload, seed: u64, sem_tools: bool) -> SystemRun {
    let env = ExecEnv::new(SimLlm::new(seed));
    workload.install_oracle(&env.llm);
    let mut registry = ToolRegistry::new();
    for tool in tools::lake_tools(&workload.lake) {
        registry.register(tool);
    }
    if sem_tools {
        registry.register(tools::sem_filter_tool(
            &env,
            &workload.lake,
            ModelId::Flagship,
        ));
        registry.register(tools::sem_extract_tool(
            &env,
            &workload.lake,
            ModelId::Flagship,
        ));
    }
    let agent = CodeAgent::deep_research(AgentConfig {
        model: ModelId::Flagship,
        max_steps: 10,
        persona: Persona {
            shortcut_bias: 0.8,
            premature_stop: 0.15,
            verify_budget: 6,
        },
        seed,
        ..AgentConfig::default()
    });
    let runtime = AgentRuntime::new(&env, registry, Some(workload.lake.clone()));
    let outcome = runtime.run(&agent, &workload.query);
    SystemRun {
        answer: SystemAnswer::from_value(outcome.answer.clone()),
        cost: outcome.cost_usd,
        time: outcome.time_s,
        detail: outcome.render(),
    }
}

/// Runs the prototype's `compute` operator (our system, "PZ compute").
pub fn run_pz_compute(workload: &Workload, seed: u64) -> SystemRun {
    run_pz_compute_inner(workload, seed, false).0
}

/// Like [`run_pz_compute`], but with span tracing enabled; returns the
/// recorder alongside the run for `EXPLAIN ANALYZE` / JSONL export. The
/// run itself is unchanged: recording never touches the clock or meter, so
/// answers, cost, and time are byte-identical to the untraced run.
pub fn run_pz_compute_traced(workload: &Workload, seed: u64) -> (SystemRun, aida_obs::Recorder) {
    run_pz_compute_inner(workload, seed, true)
}

fn run_pz_compute_inner(
    workload: &Workload,
    seed: u64,
    tracing: bool,
) -> (SystemRun, aida_obs::Recorder) {
    let rt = Runtime::builder().seed(seed).tracing(tracing).build();
    workload.install_oracle(&rt.env().llm);
    let ctx = Context::builder(workload.name.clone(), workload.lake.clone())
        .description(workload.description.clone())
        .with_vector_index()
        .build(&rt);
    let outcome = rt.query(&ctx).compute(&workload.query).run();
    let mut detail = String::new();
    for t in &outcome.trace {
        detail.push_str(&format!(
            "{} \"{}\" reused={} steps={} ${:.4} {:.1}s\n",
            t.op, t.instruction, t.reused, t.agent_steps, t.cost, t.time
        ));
        for p in &t.programs {
            detail.push_str(&format!(
                "  program: {} -> {} records\n{}",
                p.instruction,
                p.records.len(),
                indent(&p.plan, 4)
            ));
        }
    }
    let run = SystemRun {
        answer: SystemAnswer::from_value(outcome.answer.clone()),
        cost: outcome.cost,
        time: outcome.time,
        detail,
    };
    (run, rt.recorder().clone())
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_normalization() {
        assert_eq!(
            SystemAnswer::from_value(Some(Value::Float(13.2))),
            SystemAnswer::Numbers(vec![13.2])
        );
        assert_eq!(
            SystemAnswer::from_value(Some(Value::from(vec!["a.eml", "b.eml"]))),
            SystemAnswer::Docs(vec!["a.eml".into(), "b.eml".into()])
        );
        assert_eq!(SystemAnswer::from_value(None), SystemAnswer::None);
        assert_eq!(
            SystemAnswer::from_value(Some(Value::Str("13.5".into()))),
            SystemAnswer::Numbers(vec![13.5])
        );
        assert_eq!(
            SystemAnswer::from_value(Some(Value::List(vec![Value::Int(3)]))),
            SystemAnswer::Numbers(vec![3.0])
        );
        // An empty list is an empty doc set (valid: "no matches").
        assert_eq!(
            SystemAnswer::from_value(Some(Value::List(vec![]))),
            SystemAnswer::Docs(vec![])
        );
    }

    #[test]
    fn handcrafted_semops_finds_legal_ratio() {
        let w = aida_synth::legal::generate(1);
        let run = run_semops_handcrafted(&w, 1);
        match &run.answer {
            SystemAnswer::Numbers(ratios) => {
                assert!(!ratios.is_empty());
                let truth = aida_synth::legal::true_ratio();
                // At least one ratio must be the true one.
                assert!(
                    ratios.iter().any(|r| ((r - truth) / truth).abs() < 0.02),
                    "{ratios:?} vs {truth}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.cost > 0.0);
        assert!(run.time > 0.0);
    }

    #[test]
    fn code_agent_runs_legal_query() {
        let w = aida_synth::legal::generate(2);
        let run = run_code_agent(&w, 2, false);
        // The agent answers *something* cheap; correctness varies by trial.
        assert!(run.cost < 0.5, "CodeAgent should be cheap: ${}", run.cost);
        assert!(run.detail.contains("list_files"));
    }

    #[test]
    fn handcrafted_semops_works_on_enron_too() {
        let w = aida_synth::enron::generate(3);
        let run = run_semops_handcrafted(&w, 3);
        match &run.answer {
            SystemAnswer::Docs(docs) => {
                let truth = w.truth.as_doc_set().unwrap().to_vec();
                let prf = crate::metrics::f1_score(docs, &truth);
                assert!(prf.f1 > 0.9, "handcrafted program F1 {:.3}", prf.f1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn code_agent_plus_uses_semantic_tools_on_enron() {
        let w = aida_synth::enron::generate(1);
        let run = run_code_agent(&w, 1, true);
        match &run.answer {
            SystemAnswer::Docs(docs) => assert!(!docs.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(run.detail.contains("sem_filter_tool"));
        // Unoptimized tools are expensive: two full-corpus filter passes.
        assert!(run.cost > 1.0, "CodeAgent+ cost ${}", run.cost);
    }
}
