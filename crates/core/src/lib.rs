//! `aida-core`: the runtime for AI-driven analytics.
//!
//! This crate is the paper's contribution, assembled from the substrate
//! crates:
//!
//! * [`Context`] — the generalized data-access abstraction. A `Context`
//!   *is a* semantic-operator dataset (iterator execution keeps working),
//!   and additionally carries a natural-language description, key-based
//!   point lookups, vector search, and user-defined tools.
//! * [`ops`] — the agentic **`search`** and **`compute`** logical
//!   operators, physically implemented with CodeAgents that hold a
//!   `run_semantic_program` tool: the agent plans dynamically, and when it
//!   needs exhaustive processing it writes a semantic-operator program
//!   that the cost-based optimizer compiles and the batched executor runs.
//! * [`ContextManager`] — materialized-view-style reuse: every executed
//!   `search`/`compute` materializes a new Context whose description is
//!   embedded and indexed; sufficiently-similar future instructions are
//!   answered from the materialized Context instead of re-running agents.
//! * [`rewrite`] — logical optimizations over agentic pipelines: splitting
//!   overloaded compute directives, merging near-duplicate searches, and
//!   (at runtime) inserting a `search` before a failing `compute`.
//! * SQL reuse — tables materialized from unstructured data during query
//!   execution are registered in a [`aida_sql::Catalog`] and can be
//!   re-queried with plain SQL via [`Runtime::sql`].

pub mod context;
pub mod manager;
pub mod ops;
pub mod program;
pub mod rewrite;
pub mod runtime;

pub use context::{Context, ContextBuilder};
pub use manager::{ContextManager, MaterializedContext};
pub use ops::{AgenticOp, ComputeOutcome, Query};
pub use program::{ProgramRun, ProgramSynthesizer};
pub use runtime::{Runtime, RuntimeBuilder, RuntimeConfig};
