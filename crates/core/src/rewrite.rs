//! Logical optimizations over agentic pipelines (§3 of the paper).
//!
//! * **Split** — an overloaded `compute` directive that needs several
//!   distinct pieces of information (e.g. a ratio between two years) is
//!   rewritten into scoped `search` operators followed by the original
//!   compute, DocETL-style.
//! * **Merge** — adjacent `search` operators whose instructions are
//!   near-duplicates (embedding similarity above a threshold) collapse
//!   into one.
//!
//! A third optimization — inserting a `search` in front of a *failing*
//! compute at runtime — lives in [`crate::ops::Query::run`] because it is
//! dynamic, not static.

use crate::ops::AgenticOp;
use crate::runtime::Runtime;
use aida_agents::policy::task_years;
use aida_llm::embed::cosine;
use aida_obs::{clip, Event};

/// Similarity above which two adjacent searches are considered duplicates.
pub const MERGE_THRESHOLD: f32 = 0.92;

/// Applies all static rewrites: judge-gated splitting, then merging.
pub fn optimize_pipeline(runtime: &Runtime, ops: Vec<AgenticOp>) -> Vec<AgenticOp> {
    let recorder = runtime.env().recorder.clone();
    let gated: Vec<AgenticOp> = ops
        .into_iter()
        .flat_map(|op| match &op {
            AgenticOp::Compute(instr) if judge_needs_split(runtime, instr) => {
                let instr = instr.clone();
                let out = split_computes(vec![op]);
                if out.len() > 1 && recorder.is_enabled() {
                    recorder.event(Event::Rewrite {
                        rule: "split_computes".into(),
                        detail: format!(
                            "{} scoped searches inserted before \"{}\"",
                            out.len() - 1,
                            clip(&instr, 80)
                        ),
                    });
                    recorder.counter_add(aida_obs::registry::REWRITES_SPLIT_COMPUTES, 1);
                }
                out
            }
            _ => vec![op],
        })
        .collect();
    merge_searches(runtime, gated)
}

/// Asks an LLM judge whether a compute directive is overloaded and should
/// be split into scoped operations (the paper's §3 DocETL-style logical
/// optimization, proposed as future work; implemented here with the
/// simulated judge). The judge call is billed like any other.
pub fn judge_needs_split(runtime: &Runtime, instruction: &str) -> bool {
    use aida_llm::LlmTask;
    let options = [
        "the directive asks for one piece of information and can run as-is".to_string(),
        "the directive needs several distinct pieces of information and should be split"
            .to_string(),
    ];
    // The structural ground truth the judge is graded against: multiple
    // distinct information needs (here: a ratio across two years).
    let years = task_years(instruction);
    let structurally_overloaded =
        instruction.to_ascii_lowercase().contains("ratio") && years.len() >= 2;
    let question = format!(
        "Does this analytics directive need to be decomposed before execution? \
         Directive: {instruction}"
    );
    let resp = runtime.env().llm.invoke(
        runtime.config().agent_model,
        &LlmTask::Choose {
            question: &question,
            options: &options,
            correct: Some(usize::from(structurally_overloaded)),
        },
    );
    runtime.env().clock.advance(resp.latency_s);
    resp.value
        .as_int()
        .map(|i| i == 1)
        .unwrap_or(structurally_overloaded)
}

/// Splits overloaded compute directives.
///
/// Current rule: a `compute` that mentions a ratio across two years — and
/// is not already preceded by a `search` — gets one scoped `search` per
/// year inserted in front of it.
pub fn split_computes(ops: Vec<AgenticOp>) -> Vec<AgenticOp> {
    let mut out: Vec<AgenticOp> = Vec::with_capacity(ops.len());
    for op in ops {
        match &op {
            AgenticOp::Compute(instr) => {
                let preceded_by_search = matches!(out.last(), Some(AgenticOp::Search(_)));
                let years = task_years(instr);
                let lower = instr.to_ascii_lowercase();
                if !preceded_by_search && lower.contains("ratio") && years.len() >= 2 {
                    let phrase = crate::program::number_of_phrase(instr)
                        .unwrap_or_else(|| "the relevant statistics".to_string());
                    let mut sorted = years.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    for year in &sorted {
                        out.push(AgenticOp::Search(format!(
                            "look for information on {phrase} in {year}"
                        )));
                    }
                }
                out.push(op);
            }
            AgenticOp::Search(_) => out.push(op),
        }
    }
    out
}

/// Merges adjacent near-duplicate searches (keeping the first).
pub fn merge_searches(runtime: &Runtime, ops: Vec<AgenticOp>) -> Vec<AgenticOp> {
    let embedder = &runtime.env().embedder;
    let mut out: Vec<AgenticOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if let (AgenticOp::Search(new_instr), Some(AgenticOp::Search(prev_instr))) =
            (&op, out.last())
        {
            let sim = cosine(&embedder.embed(prev_instr), &embedder.embed(new_instr));
            if sim >= MERGE_THRESHOLD {
                let recorder = &runtime.env().recorder;
                if recorder.is_enabled() {
                    recorder.event(Event::Rewrite {
                        rule: "merge_searches".into(),
                        detail: format!(
                            "dropped \"{}\" (similarity {sim:.3} to its predecessor)",
                            clip(new_instr, 80)
                        ),
                    });
                    recorder.counter_add(aida_obs::registry::REWRITES_MERGE_SEARCHES, 1);
                }
                continue; // duplicate of the previous search
            }
        }
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_compute_gets_scoped_searches() {
        let ops = vec![AgenticOp::Compute(
            "What is the ratio between the number of identity theft reports in 2024 and the \
             number of identity theft reports in 2001?"
                .into(),
        )];
        let out = split_computes(ops);
        assert_eq!(out.len(), 3);
        assert!(matches!(&out[0], AgenticOp::Search(s) if s.contains("2001")));
        assert!(matches!(&out[1], AgenticOp::Search(s) if s.contains("2024")));
        assert!(matches!(&out[2], AgenticOp::Compute(_)));
    }

    #[test]
    fn compute_already_preceded_by_search_is_untouched() {
        let ops = vec![
            AgenticOp::Search("look for theft data".into()),
            AgenticOp::Compute("ratio between thefts in 2024 and 2001".into()),
        ];
        assert_eq!(split_computes(ops.clone()), ops);
    }

    #[test]
    fn non_ratio_computes_are_untouched() {
        let ops = vec![AgenticOp::Compute(
            "filter the emails for Raptor mentions".into(),
        )];
        assert_eq!(split_computes(ops.clone()), ops);
    }

    #[test]
    fn duplicate_adjacent_searches_merge() {
        let rt = Runtime::builder().build();
        let ops = vec![
            AgenticOp::Search("look for identity theft reports in 2001".into()),
            AgenticOp::Search("look for identity theft reports in 2001 data".into()),
            AgenticOp::Search("weather patterns in the gulf of mexico".into()),
        ];
        let out = merge_searches(&rt, ops);
        assert_eq!(out.len(), 2, "near-duplicate merged, distinct kept");
    }

    #[test]
    fn judge_flags_overloaded_directives() {
        let rt = Runtime::builder().build();
        // Billed like any other call.
        let before = rt.usage();
        let overloaded = judge_needs_split(
            &rt,
            "what is the ratio between the thefts in 2024 and the thefts in 2001",
        );
        assert!(rt.usage().since(&before).total_calls() >= 1);
        // The flagship judge is right on easy structural questions almost
        // always; accept either verdict but check the simple case too.
        let simple = judge_needs_split(&rt, "filter the emails about Raptor");
        // At least one of the two judgements must match ground truth
        // (flagship error at 0.3 difficulty is ~2%; both wrong is ~0.04%).
        assert!(overloaded || !simple);
    }

    #[test]
    fn full_pipeline_optimization_composes() {
        let rt = Runtime::builder().build();
        let ops = vec![AgenticOp::Compute(
            "ratio between the number of identity theft reports in 2024 and the number of \
             identity theft reports in 2001"
                .into(),
        )];
        let out = optimize_pipeline(&rt, ops);
        // Split produced two distinct year-scoped searches (not merged:
        // different years embed differently) plus the compute.
        assert!(out.len() >= 2);
        assert!(matches!(out.last(), Some(AgenticOp::Compute(_))));
    }
}
