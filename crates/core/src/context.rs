//! The `Context` abstraction.
//!
//! A `Context` generalizes the Palimpzest `Dataset`: it still supports
//! iterator execution (via [`Context::dataset`]), and adds the access
//! methods and metadata agents need — a natural-language description,
//! key-based point lookups, vector search over document embeddings, and
//! user-registered tools.

use crate::runtime::Runtime;
use aida_agents::{Tool, ToolRegistry};
use aida_data::{DataLake, Table};
use aida_index::{FlatIndex, IvfIndex, KeyIndex, VectorIndex};
use aida_semops::Dataset;
use std::sync::Arc;

/// A described, indexable, tool-carrying dataset.
#[derive(Clone)]
pub struct Context {
    /// Stable identifier (unique per materialization).
    pub id: String,
    /// Natural-language description of the contents — agents read this to
    /// decide how to access the data, and `search` operators enrich it.
    pub description: String,
    lake: DataLake,
    key_index: Arc<KeyIndex>,
    vector_index: Option<Arc<dyn VectorIndex>>,
    tools: ToolRegistry,
    /// Structured findings attached by a `search`/`compute` execution.
    pub findings: Option<Arc<Table>>,
}

impl Context {
    /// Starts building a context over a lake.
    pub fn builder(id: impl Into<String>, lake: DataLake) -> ContextBuilder {
        ContextBuilder {
            id: id.into(),
            description: String::new(),
            lake,
            key_pairs: Vec::new(),
            vector_kind: VectorKind::None,
            tools: Vec::new(),
        }
    }

    /// The underlying data lake.
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.lake.len()
    }

    /// True when the context holds no documents.
    pub fn is_empty(&self) -> bool {
        self.lake.is_empty()
    }

    /// Iterator execution: the context as a semantic-operator dataset
    /// (this is the "inherits from Dataset" half of the abstraction).
    pub fn dataset(&self) -> Dataset {
        Dataset::scan(&self.lake, self.id.clone())
    }

    /// Key-based point lookup (registered via the builder).
    pub fn lookup(&self, key: &str) -> &[String] {
        self.key_index.get(key)
    }

    /// Vector search over document embeddings; empty when the context was
    /// built without an embedding index.
    pub fn vector_search(&self, runtime: &Runtime, query: &str, k: usize) -> Vec<String> {
        match &self.vector_index {
            Some(index) => {
                let q = runtime.env().embedder.embed(query);
                index.search(&q, k).into_iter().map(|h| h.id).collect()
            }
            None => Vec::new(),
        }
    }

    /// User-registered tools.
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// Derives a new materialized context: a (possibly narrowed) lake with
    /// an enriched description, inheriting indexes/tools where the lake is
    /// unchanged.
    pub fn materialize(
        &self,
        id: impl Into<String>,
        description: String,
        lake: Option<DataLake>,
        findings: Option<Table>,
    ) -> Context {
        let narrowed = lake.is_some();
        Context {
            id: id.into(),
            description,
            lake: lake.unwrap_or_else(|| self.lake.clone()),
            // Indexes describe the original lake; drop them when narrowed.
            key_index: if narrowed {
                Arc::new(KeyIndex::new())
            } else {
                Arc::clone(&self.key_index)
            },
            vector_index: if narrowed {
                None
            } else {
                self.vector_index.clone()
            },
            tools: self.tools.clone(),
            findings: findings.map(Arc::new),
        }
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Context(id={}, docs={}, vectors={}, keys={}, desc={:?})",
            self.id,
            self.lake.len(),
            self.vector_index.is_some(),
            self.key_index.len(),
            self.description.chars().take(60).collect::<String>()
        )
    }
}

/// Builder for [`Context`].
pub struct ContextBuilder {
    id: String,
    description: String,
    lake: DataLake,
    key_pairs: Vec<(String, String)>,
    vector_kind: VectorKind,
    tools: Vec<Arc<dyn Tool>>,
}

enum VectorKind {
    None,
    Flat,
    Ivf { nlist: usize, nprobe: usize },
}

impl ContextBuilder {
    /// Sets the natural-language description.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Registers a key → document-name pair for point lookups.
    pub fn key(mut self, key: impl Into<String>, doc: impl Into<String>) -> Self {
        self.key_pairs.push((key.into(), doc.into()));
        self
    }

    /// Registers keys derived from each document (e.g. filename tokens).
    pub fn keys_from(mut self, derive: impl Fn(&aida_data::Document) -> Vec<String>) -> Self {
        for doc in self.lake.docs() {
            for key in derive(doc) {
                self.key_pairs.push((key, doc.name.clone()));
            }
        }
        self
    }

    /// Builds an exact (flat) embedding index over document text at
    /// `build` time — the right choice below a few thousand documents.
    pub fn with_vector_index(mut self) -> Self {
        self.vector_kind = VectorKind::Flat;
        self
    }

    /// Builds an approximate IVF embedding index (k-means coarse quantizer
    /// with `nlist` cells, probing `nprobe` per search) — for larger lakes
    /// where the flat scan becomes the bottleneck.
    pub fn with_ivf_index(mut self, nlist: usize, nprobe: usize) -> Self {
        self.vector_kind = VectorKind::Ivf { nlist, nprobe };
        self
    }

    /// Registers a user tool.
    pub fn tool(mut self, tool: Arc<dyn Tool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Builds the context (embedding the lake if requested).
    pub fn build(self, runtime: &Runtime) -> Context {
        let mut key_index = KeyIndex::new();
        for (key, doc) in &self.key_pairs {
            key_index.insert(key, doc);
        }
        let vector_index: Option<Arc<dyn VectorIndex>> = match self.vector_kind {
            VectorKind::None => None,
            VectorKind::Flat => {
                let mut index = FlatIndex::new();
                embed_lake(&self.lake, runtime, &mut index);
                Some(Arc::new(index))
            }
            VectorKind::Ivf { nlist, nprobe } => {
                let mut index = IvfIndex::new(nlist, nprobe, runtime.config().seed);
                embed_lake(&self.lake, runtime, &mut index);
                index.train();
                Some(Arc::new(index))
            }
        };
        let mut tools = ToolRegistry::new();
        for tool in self.tools {
            tools.register(tool);
        }
        Context {
            id: self.id,
            description: self.description,
            lake: self.lake,
            key_index: Arc::new(key_index),
            vector_index,
            tools,
            findings: None,
        }
    }
}

/// Embeds a bounded prefix of every document into `index`: enough signal,
/// bounded work.
fn embed_lake(lake: &DataLake, runtime: &Runtime, index: &mut dyn VectorIndex) {
    for doc in lake.docs() {
        let text: String = doc.text().chars().take(2_000).collect();
        index.add(&doc.name, runtime.env().embedder.embed(&text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_agents::{FnTool, ToolSpec};
    use aida_data::Document;
    use aida_script::ScriptValue;

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("theft_2024.csv", "identity theft reports in 2024: 1135291"),
            Document::new("gas.txt", "pipeline maintenance schedule"),
        ])
    }

    #[test]
    fn context_is_a_dataset() {
        let rt = Runtime::builder().build();
        let ctx = Context::builder("lake", lake())
            .description("test lake")
            .build(&rt);
        let ds = ctx.dataset();
        assert_eq!(ds.plan().len(), 1);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.description, "test lake");
    }

    #[test]
    fn key_lookup() {
        let rt = Runtime::builder().build();
        let ctx = Context::builder("lake", lake())
            .key("2024", "theft_2024.csv")
            .keys_from(|doc| vec![doc.name.split('.').next().unwrap_or("").to_string()])
            .build(&rt);
        assert_eq!(ctx.lookup("2024"), ["theft_2024.csv"]);
        assert_eq!(ctx.lookup("gas"), ["gas.txt"]);
        assert!(ctx.lookup("1999").is_empty());
    }

    #[test]
    fn vector_search_finds_relevant_doc() {
        let rt = Runtime::builder().build();
        let ctx = Context::builder("lake", lake())
            .with_vector_index()
            .build(&rt);
        let hits = ctx.vector_search(&rt, "identity theft statistics 2024", 1);
        assert_eq!(hits, vec!["theft_2024.csv"]);
        // Without an index, search returns nothing.
        let bare = Context::builder("lake", lake()).build(&rt);
        assert!(bare.vector_search(&rt, "anything", 3).is_empty());
    }

    #[test]
    fn ivf_index_finds_relevant_doc() {
        let rt = Runtime::builder().seed(2).build();
        let docs: Vec<Document> = (0..40)
            .map(|i| {
                let content = if i == 17 {
                    "identity theft reports by year national statistics".to_string()
                } else {
                    format!("memo {i} about pipeline capacity and scheduling")
                };
                Document::new(format!("d{i}.txt"), content)
            })
            .collect();
        let ctx = Context::builder("big", DataLake::from_docs(docs))
            .with_ivf_index(4, 2)
            .build(&rt);
        let hits = ctx.vector_search(&rt, "identity theft statistics", 3);
        assert!(hits.contains(&"d17.txt".to_string()), "{hits:?}");
    }

    #[test]
    fn custom_tools_attach() {
        let rt = Runtime::builder().build();
        let tool = Arc::new(FnTool::new(
            ToolSpec::new("resample", "resample(freq)", "resamples the time series"),
            |_| Ok(ScriptValue::None),
        ));
        let ctx = Context::builder("lake", lake()).tool(tool).build(&rt);
        assert!(ctx.tools().get("resample").is_some());
    }

    #[test]
    fn materialize_narrows_and_enriches() {
        let rt = Runtime::builder().build();
        let ctx = Context::builder("lake", lake())
            .with_vector_index()
            .build(&rt);
        let narrow = DataLake::from_docs([lake().get("theft_2024.csv").unwrap().as_ref().clone()]);
        let derived = ctx.materialize(
            "lake/1",
            "FINDINGS: thefts in 2024".into(),
            Some(narrow),
            None,
        );
        assert_eq!(derived.len(), 1);
        assert!(derived.description.contains("FINDINGS"));
        // Narrowed contexts drop the (now stale) vector index.
        assert!(derived.vector_search(&rt, "anything", 1).is_empty());
        // Un-narrowed materializations keep it.
        let same = ctx.materialize("lake/2", "enriched".into(), None, None);
        assert!(!same.vector_search(&rt, "identity theft", 1).is_empty());
    }
}
