//! Program synthesis: the `run_semantic_program` tool.
//!
//! This is the paper's key mechanism: each `search`/`compute` agent carries
//! a tool that takes a natural-language instruction, writes a semantic
//! operator program for it, hands the program to the cost-based optimizer,
//! and executes the optimized physical plan. The agent gets dynamic
//! planning; the program gets exhaustive, optimized execution.

use crate::runtime::Runtime;
use aida_agents::{FnTool, Tool, ToolSpec};
use aida_data::{DataLake, Field, Record, Value};
use aida_obs::SpanKind;
use aida_optimizer::Optimizer;
use aida_script::{ScriptError, ScriptValue};
use aida_semops::{Dataset, Executor};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One executed synthesized program (for traces and Context building).
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// The instruction the agent passed in.
    pub instruction: String,
    /// Rendered physical plan.
    pub plan: String,
    /// Output records.
    pub records: Vec<Record>,
    /// Dollars the program spent (sampling + execution).
    pub cost: f64,
    /// Virtual seconds the program took.
    pub time: f64,
}

/// Shared sink collecting the programs an agent ran.
#[derive(Debug, Clone, Default)]
pub struct ProgramTrace {
    runs: Arc<Mutex<Vec<ProgramRun>>>,
}

impl ProgramTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded runs.
    pub fn runs(&self) -> Vec<ProgramRun> {
        self.runs.lock().clone()
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// True when no program ran.
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }

    fn push(&self, run: ProgramRun) {
        self.runs.lock().push(run);
    }
}

/// Rule-based synthesis of semantic-operator programs from natural
/// language — the deterministic stand-in for the agent "writing a PZ
/// program".
pub struct ProgramSynthesizer;

impl ProgramSynthesizer {
    /// Synthesizes a logical program for `instruction` over `lake`.
    ///
    /// Rules, in order:
    /// 1. An "extract the a, b, and c" clause adds `sem_extract` fields.
    /// 2. "firsthand …" with proper-noun terms → the two-predicate email
    ///    program (mention filter, then firsthand filter).
    /// 3. "(number of) X in <year>" → filter files carrying statistics on
    ///    X, then extract the `value` for that year.
    /// 4. Otherwise: a single semantic filter with the raw instruction.
    pub fn synthesize(instruction: &str, lake: &DataLake) -> Dataset {
        let lower = instruction.to_ascii_lowercase();
        let mut ds = Dataset::scan(lake, "context");

        let proper_nouns = aida_agents::policy::capitalized_terms(instruction);
        let years = aida_agents::policy::task_years(instruction);

        if lower.contains("firsthand") && !proper_nouns.is_empty() {
            let names = proper_nouns.join(", ");
            ds = ds
                .sem_filter(format!(
                    "the email mentions one or more of the {names} business transactions"
                ))
                .sem_filter(format!(
                    "the email contains firsthand discussion of one or more of the {names} \
                     business transactions"
                ));
        } else if let (Some(phrase), Some(year)) = (number_of_phrase(instruction), years.first()) {
            ds = ds
                .sem_filter(format!(
                    "the file contains statistics on the number of {phrase}, including data \
                     for the year {year}"
                ))
                .sem_extract(
                    format!("find the number of {phrase} in {year}"),
                    vec![Field::described(
                        "value",
                        format!("the number of {phrase} in the year {year}"),
                    )],
                );
        } else {
            ds = ds.sem_filter(instruction.to_string());
        }

        for field in extract_fields(instruction) {
            ds = ds.sem_extract(
                format!("extract the {field} from the email"),
                vec![Field::described(
                    field.clone(),
                    format!("the {field} of the item"),
                )],
            );
        }
        ds
    }
}

/// Pulls the phrase of a "(the number of) X in <year>" instruction.
pub fn number_of_phrase(instruction: &str) -> Option<String> {
    let lower = instruction.to_ascii_lowercase();
    let start = lower.find("number of").map(|i| i + "number of".len())?;
    let rest = &lower[start..];
    let end = rest.find(" in ").unwrap_or(rest.len());
    let phrase = rest[..end]
        .trim()
        .trim_end_matches(|c: char| !c.is_alphanumeric())
        .to_string();
    if phrase.is_empty() {
        None
    } else {
        Some(phrase)
    }
}

/// Parses an "extract the a, b(,) and c" clause into field names.
pub fn extract_fields(instruction: &str) -> Vec<String> {
    let lower = instruction.to_ascii_lowercase();
    let Some(start) = lower.find("extract the ").map(|i| i + "extract the ".len()) else {
        return Vec::new();
    };
    let clause = &lower[start..];
    let clause = clause
        .split(" of each")
        .next()
        .unwrap_or(clause)
        .split(" from ")
        .next()
        .unwrap_or(clause);
    clause
        .split([','])
        .flat_map(|part| part.split(" and "))
        .filter_map(|part| {
            // Keep the last word of each phrase ("a short summary" -> summary).
            part.split_whitespace()
                .rfind(|w| w.chars().all(|c| c.is_alphanumeric()))
                .map(str::to_string)
        })
        .filter(|f| f.len() > 2)
        .collect()
}

/// Builds the `run_semantic_program` tool over a specific lake.
///
/// The tool: synthesize → optimize (runtime policy) → execute → return one
/// dict per output record (`source` plus every extracted field; raw
/// `contents` are dropped).
pub fn run_semantic_program_tool(
    runtime: &Runtime,
    lake: &DataLake,
    trace: &ProgramTrace,
) -> Arc<dyn Tool> {
    let runtime = runtime.clone();
    let lake = lake.clone();
    let trace = trace.clone();
    Arc::new(FnTool::new(
        ToolSpec::new(
            "run_semantic_program",
            "run_semantic_program(instruction: str) -> list[dict]",
            "writes an optimized semantic-operator program for the instruction, executes it \
             over the full context, and returns the matching records",
        ),
        move |args| {
            let instruction = args
                .first()
                .ok_or_else(|| ScriptError::host("run_semantic_program needs an instruction"))?
                .as_str()?
                .to_string();
            let ds = ProgramSynthesizer::synthesize(&instruction, &lake);
            // The program span opens before the optimizer so sampling
            // calls land inside it: its aggregate cost equals
            // `ProgramRun.cost` (sampling + execution).
            let span = runtime.env().recorder.span(
                SpanKind::Program,
                aida_obs::clip(&instruction, 60),
                runtime.env().clock.now(),
            );
            let optimizer = Optimizer::new(runtime.env(), runtime.config().optimizer.clone());
            let optimized = optimizer.optimize(ds.plan(), &runtime.config().policy);
            let before = runtime.env().llm.meter().snapshot();
            let t0 = runtime.env().clock.now();
            let report = Executor::new(runtime.env()).execute(&optimized.physical);
            let delta = runtime.env().llm.meter().snapshot().delta_since(&before);
            span.attr("plan", aida_obs::clip(&optimized.physical.render(), 160));
            span.rows(lake.len(), report.records.len());
            span.finish(runtime.env().clock.now());
            trace.push(ProgramRun {
                instruction: instruction.clone(),
                plan: optimized.physical.render(),
                records: report.records.clone(),
                cost: delta.cost(runtime.env().llm.catalog()) + optimized.matrix.sampling_cost,
                time: runtime.env().clock.now() - t0 + optimized.matrix.sampling_time,
            });
            Ok(records_to_script(&report.records))
        },
    ))
}

/// Renders records as a script list of dicts, dropping bulky fields.
pub fn records_to_script(records: &[Record]) -> ScriptValue {
    ScriptValue::list(
        records
            .iter()
            .map(|rec| {
                let mut map = BTreeMap::new();
                map.insert("source".to_string(), ScriptValue::str(rec.source.clone()));
                for (name, value) in rec.iter() {
                    if name == "contents" {
                        continue;
                    }
                    map.insert(name.to_string(), ScriptValue::from_data(value));
                }
                ScriptValue::dict(map)
            })
            .collect(),
    )
}

/// Builds a findings table from program output records (bulk fields
/// dropped), for SQL registration.
pub fn findings_table(records: &[Record]) -> aida_data::Table {
    let slim: Vec<Record> = records
        .iter()
        .map(|rec| {
            let mut out = Record::new(rec.source.clone());
            out.set("source", Value::Str(rec.source.clone()));
            for (name, value) in rec.iter() {
                if name != "contents" {
                    out.set(name, value.clone());
                }
            }
            out
        })
        .collect();
    aida_data::Table::from_records(&slim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::Document;
    use aida_semops::plan::LogicalOp;

    #[test]
    fn extract_clause_parsing() {
        let fields = extract_fields(
            "filter the emails ... and extract the sender, subject, and a short summary of \
             each matching email.",
        );
        assert_eq!(fields, vec!["sender", "subject", "summary"]);
        assert!(extract_fields("no extraction here").is_empty());
    }

    #[test]
    fn number_of_phrase_parsing() {
        assert_eq!(
            number_of_phrase("What is the number of identity theft reports in 2024?"),
            Some("identity theft reports".to_string())
        );
        assert_eq!(number_of_phrase("count the widgets"), None);
    }

    #[test]
    fn synthesis_email_program_has_two_filters_and_extracts() {
        let lake = DataLake::from_docs([Document::new("e.eml", "x")]);
        let ds = ProgramSynthesizer::synthesize(
            "Filter the emails for ones which contain firsthand discussion of the Raptor or \
             Chewco transactions, and extract the sender, subject, and a short summary of \
             each matching email.",
            &lake,
        );
        let filters = ds
            .plan()
            .ops()
            .iter()
            .filter(|op| matches!(op, LogicalOp::SemFilter { .. }))
            .count();
        let extracts = ds
            .plan()
            .ops()
            .iter()
            .filter(|op| matches!(op, LogicalOp::SemExtract { .. }))
            .count();
        assert_eq!(filters, 2);
        assert_eq!(extracts, 3);
        // Mention filter precedes firsthand filter.
        let first = ds.plan().ops()[1].instruction().unwrap();
        assert!(first.contains("mentions"));
    }

    #[test]
    fn synthesis_numeric_program_filters_then_extracts_value() {
        let lake = DataLake::from_docs([Document::new("n.csv", "x")]);
        let ds = ProgramSynthesizer::synthesize(
            "find the number of identity theft reports in 2024",
            &lake,
        );
        let ops = ds.plan().ops();
        assert!(
            matches!(&ops[1], LogicalOp::SemFilter { instruction } if instruction.contains("2024"))
        );
        assert!(
            matches!(&ops[2], LogicalOp::SemExtract { fields, .. } if fields[0].name == "value")
        );
    }

    #[test]
    fn synthesis_fallback_is_single_filter() {
        let lake = DataLake::from_docs([Document::new("a.txt", "x")]);
        let ds = ProgramSynthesizer::synthesize("documents about mergers", &lake);
        assert_eq!(ds.plan().len(), 2);
        assert!(matches!(&ds.plan().ops()[1], LogicalOp::SemFilter { .. }));
    }

    #[test]
    fn records_to_script_drops_contents() {
        let rec = Record::new("f.csv")
            .with("filename", "f.csv")
            .with("contents", "HUGE")
            .with("value", 42i64);
        let sv = records_to_script(&[rec]);
        let rendered = sv.to_string();
        assert!(rendered.contains("'value': 42"));
        assert!(rendered.contains("'source': 'f.csv'"));
        assert!(!rendered.contains("HUGE"));
    }

    #[test]
    fn findings_table_has_source_column() {
        let rec = Record::new("a.eml")
            .with("sender", "x@y.com")
            .with("contents", "big");
        let t = findings_table(&[rec]);
        assert!(t.schema().contains("source"));
        assert!(t.schema().contains("sender"));
        assert!(!t.schema().contains("contents"));
        assert_eq!(t.len(), 1);
    }
}
