//! The ContextManager: materialized-view-style reuse of Contexts.
//!
//! Every `search`/`compute` execution materializes a Context (a narrowed
//! lake + an enriched description + structured findings). The manager
//! embeds each description and, when a new instruction arrives, retrieves
//! the most similar materialized Context; above the runtime's similarity
//! threshold the operator reuses it instead of re-running an agent — the
//! paper's §3 physical optimization (and its §2.4 cache).
//!
//! Long-running service processes (see `aida-serve`) keep one manager
//! alive across thousands of queries, so the store is optionally bounded:
//! [`ContextManager::with_capacity`] caps the number of materializations
//! and evicts **cost-aware LRU** — the victim is the entry cheapest to
//! recreate (`original_cost`), ties broken by least-recent use — so a $2
//! materialization is never dropped to make room for a $0.001 one.

use crate::context::Context;
use aida_llm::embed::{cosine, Embedder};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached materialization.
#[derive(Clone)]
pub struct MaterializedContext {
    /// The instruction whose execution produced this Context.
    pub instruction: String,
    /// The materialized Context.
    pub context: Context,
    /// Embedding of `instruction` + description (retrieval key).
    embedding: Vec<f32>,
    /// What the producing execution cost (for reporting savings; also the
    /// primary eviction key — cheap materializations are evicted first).
    pub original_cost: f64,
    /// Logical tick of the last registration or reuse hit (LRU tiebreak).
    last_used: u64,
}

#[derive(Default)]
struct Store {
    entries: Vec<MaterializedContext>,
    /// Monotonic logical time: bumped on every register and reuse hit.
    tick: u64,
    /// Maximum entries kept (0 = unbounded).
    capacity: usize,
}

/// A shared registry of materialized Contexts.
#[derive(Clone, Default)]
pub struct ContextManager {
    inner: Arc<RwLock<Store>>,
    embedder: Embedder,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl ContextManager {
    /// Creates an empty, unbounded manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty manager holding at most `capacity` Contexts
    /// (`0` means unbounded). Over capacity, the cheapest-to-recreate
    /// entry is evicted, ties broken by least-recent use.
    pub fn with_capacity(capacity: usize) -> Self {
        let manager = Self::default();
        manager.inner.write().capacity = capacity;
        manager
    }

    /// The capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.read().capacity
    }

    /// Number of materialized Contexts.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// Registers a materialization produced by `instruction`, evicting if
    /// the capacity bound is exceeded.
    pub fn register(&self, instruction: &str, context: Context, original_cost: f64) {
        // The retrieval key is the instruction alone: descriptions grow
        // with every enrichment and would dilute the match.
        let embedding = self.embedder.embed(instruction);
        let mut store = self.inner.write();
        store.tick += 1;
        let last_used = store.tick;
        store.entries.push(MaterializedContext {
            instruction: instruction.to_string(),
            context,
            embedding,
            original_cost,
            last_used,
        });
        while store.capacity > 0 && store.entries.len() > store.capacity {
            let victim = store
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.original_cost
                        .total_cmp(&b.original_cost)
                        .then(a.last_used.cmp(&b.last_used))
                })
                .map(|(i, _)| i)
                .expect("entries is non-empty while over capacity");
            store.entries.remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retrieves the materialized Context most similar to `instruction`,
    /// with its similarity score. Deterministic: earlier registrations win
    /// ties. Read-only — recency is not touched.
    pub fn find_similar(&self, instruction: &str) -> Option<(MaterializedContext, f32)> {
        let q = self.embedder.embed(instruction);
        let store = self.inner.read();
        best_match(&store.entries, &q).map(|(i, s)| (store.entries[i].clone(), s))
    }

    /// Retrieves a reusable Context at or above `threshold`, also
    /// returning the best similarity observed (0.0 when nothing is
    /// materialized). Every lookup bumps the hit/miss counters; a hit
    /// refreshes the entry's recency. The scan and the recency bump are
    /// one atomic step, so concurrent callers never observe a half-done
    /// lookup and the hit+miss totals always reconcile with call counts.
    pub fn reuse_scored(
        &self,
        instruction: &str,
        threshold: f32,
    ) -> (Option<MaterializedContext>, f32) {
        let q = self.embedder.embed(instruction);
        let mut store = self.inner.write();
        let best = best_match(&store.entries, &q);
        let best_sim = best.map(|(_, sim)| sim).unwrap_or(0.0);
        match best.filter(|(_, sim)| *sim >= threshold) {
            Some((index, sim)) => {
                store.tick += 1;
                let tick = store.tick;
                store.entries[index].last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(store.entries[index].clone()), sim)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, best_sim)
            }
        }
    }

    /// Retrieves a reusable Context at or above `threshold`.
    pub fn reuse(&self, instruction: &str, threshold: f32) -> Option<MaterializedContext> {
        self.reuse_scored(instruction, threshold).0
    }

    /// `(hits, misses)` across every reuse lookup so far.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every materialization (tests/trials). Counters survive.
    pub fn clear(&self) {
        self.inner.write().entries.clear();
    }
}

/// Index and similarity of the best match against `query`, earlier entries
/// winning ties.
fn best_match(entries: &[MaterializedContext], query: &[f32]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, entry) in entries.iter().enumerate() {
        let sim = cosine(query, &entry.embedding);
        if best.is_none_or(|(_, s)| sim > s) {
            best = Some((i, sim));
        }
    }
    best
}

impl std::fmt::Debug for ContextManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContextManager({} materialized)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use aida_data::{DataLake, Document};

    fn ctx(rt: &Runtime, desc: &str) -> Context {
        Context::builder("c", DataLake::from_docs([Document::new("a.txt", "x")]))
            .description(desc)
            .build(rt)
    }

    #[test]
    fn register_and_retrieve_by_similarity() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find the number of identity theft reports in 2001",
            ctx(&rt, "FINDINGS: identity theft reports 2001: 86250"),
            1.2,
        );
        manager.register(
            "summarize pipeline maintenance schedules",
            ctx(&rt, "FINDINGS: maintenance windows for gas pipelines"),
            0.8,
        );
        let (hit, sim) = manager
            .find_similar("find the number of identity theft reports in 2024")
            .unwrap();
        assert!(hit.instruction.contains("identity theft"));
        assert!(sim > 0.4, "similar instructions should score high: {sim}");
    }

    #[test]
    fn reuse_respects_threshold() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        assert!(manager
            .reuse("find identity theft reports in 2024", 0.99)
            .is_none());
        assert!(manager
            .reuse("find identity theft reports in 2001", 0.95)
            .is_some());
        // A completely unrelated instruction never reuses.
        assert!(manager
            .reuse("weather forecast for tokyo marathon", 0.5)
            .is_none());
    }

    #[test]
    fn reuse_stats_count_hits_and_misses() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        assert_eq!(manager.reuse_stats(), (0, 0));
        // A lookup against an empty manager is a miss.
        assert!(manager.reuse("anything", 0.5).is_none());
        assert_eq!(manager.reuse_stats(), (0, 1));
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        let (hit, sim) = manager.reuse_scored("find identity theft reports in 2001", 0.95);
        assert!(hit.is_some());
        assert!(sim >= 0.95);
        let (missed, best) = manager.reuse_scored("weather forecast for tokyo marathon", 0.5);
        assert!(missed.is_none());
        assert!(
            best < 0.5,
            "best similarity is still reported on a miss: {best}"
        );
        assert_eq!(manager.reuse_stats(), (1, 2));
        // Clones share the counters.
        assert_eq!(manager.clone().reuse_stats(), (1, 2));
    }

    #[test]
    fn empty_manager_finds_nothing() {
        let manager = ContextManager::new();
        assert!(manager.find_similar("anything").is_none());
        assert!(manager.is_empty());
    }

    #[test]
    fn clear_empties_and_clones_share() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        let clone = manager.clone();
        manager.register("i", ctx(&rt, "d"), 0.1);
        assert_eq!(clone.len(), 1);
        clone.clear();
        assert!(manager.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_cheapest_first() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::with_capacity(2);
        assert_eq!(manager.capacity(), 2);
        manager.register("expensive exhaustive legal scan", ctx(&rt, "a"), 2.0);
        manager.register("cheap keyword probe", ctx(&rt, "b"), 0.01);
        manager.register("medium targeted extraction", ctx(&rt, "c"), 0.5);
        // The $0.01 entry is the victim, not the oldest ($2.00) one.
        assert_eq!(manager.len(), 2);
        assert_eq!(manager.evictions(), 1);
        let kept: Vec<String> = [
            "expensive exhaustive legal scan",
            "medium targeted extraction",
        ]
        .iter()
        .map(|i| {
            manager
                .find_similar(i)
                .map(|(m, _)| m.instruction)
                .unwrap_or_default()
        })
        .collect();
        assert!(kept.iter().any(|i| i.contains("expensive")));
        assert!(kept.iter().any(|i| i.contains("medium")));
    }

    #[test]
    fn eviction_ties_break_by_recency() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::with_capacity(2);
        manager.register("alpha instruction about pipelines", ctx(&rt, "a"), 1.0);
        manager.register("beta instruction about reports", ctx(&rt, "b"), 1.0);
        // Touch alpha so beta becomes the least-recently-used equal-cost
        // entry.
        assert!(manager
            .reuse("alpha instruction about pipelines", 0.95)
            .is_some());
        manager.register("gamma instruction about filings", ctx(&rt, "c"), 1.0);
        assert_eq!(manager.len(), 2);
        let (hit, sim) = manager
            .find_similar("beta instruction about reports")
            .unwrap();
        assert!(
            sim < 0.95 || !hit.instruction.contains("beta"),
            "beta should have been evicted (best match now {} at {sim})",
            hit.instruction
        );
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        for i in 0..32 {
            manager.register(&format!("instruction {i}"), ctx(&rt, "d"), 0.1);
        }
        assert_eq!(manager.len(), 32);
        assert_eq!(manager.evictions(), 0);
    }
}
