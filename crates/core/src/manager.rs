//! The ContextManager: materialized-view-style reuse of Contexts.
//!
//! Every `search`/`compute` execution materializes a Context (a narrowed
//! lake + an enriched description + structured findings). The manager
//! embeds each description and, when a new instruction arrives, retrieves
//! the most similar materialized Context; above the runtime's similarity
//! threshold the operator reuses it instead of re-running an agent — the
//! paper's §3 physical optimization (and its §2.4 cache).
//!
//! Long-running service processes (see `aida-serve`) keep one manager
//! alive across thousands of queries, so the store is optionally bounded:
//! [`ContextManager::with_capacity`] caps the number of materializations
//! and evicts **cost-aware LRU** — the victim is the entry cheapest to
//! recreate (`original_cost`), ties broken by least-recent use — so a $2
//! materialization is never dropped to make room for a $0.001 one.

use crate::context::Context;
use aida_data::{DataLake, Document, Field, Schema, Table};
use aida_llm::embed::{cosine, Embedder};
use aida_llm::snapshot::{self, decode_value, encode_value, esc, unesc, SnapshotError};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached materialization.
#[derive(Clone)]
pub struct MaterializedContext {
    /// The instruction whose execution produced this Context.
    pub instruction: String,
    /// The materialized Context.
    pub context: Context,
    /// Embedding of `instruction` + description (retrieval key).
    embedding: Vec<f32>,
    /// What the producing execution cost (for reporting savings; also the
    /// primary eviction key — cheap materializations are evicted first).
    pub original_cost: f64,
    /// Logical tick of the last registration or reuse hit (LRU tiebreak).
    last_used: u64,
}

#[derive(Default)]
struct Store {
    entries: Vec<MaterializedContext>,
    /// Monotonic logical time: bumped on every register and reuse hit.
    tick: u64,
    /// Maximum entries kept (0 = unbounded).
    capacity: usize,
    /// When present, every mutation appends a delta record here. The
    /// runtime's incremental checkpointer drains the journal into
    /// checksummed delta frames between full snapshots, so checkpoint
    /// cost tracks what changed instead of everything materialized.
    journal: Option<Vec<String>>,
}

impl Store {
    fn journal_push(&mut self, record: String) {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(record);
        }
    }
}

/// A shared registry of materialized Contexts.
#[derive(Clone, Default)]
pub struct ContextManager {
    inner: Arc<RwLock<Store>>,
    embedder: Embedder,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
}

impl ContextManager {
    /// Creates an empty, unbounded manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty manager holding at most `capacity` Contexts
    /// (`0` means unbounded). Over capacity, the cheapest-to-recreate
    /// entry is evicted, ties broken by least-recent use.
    pub fn with_capacity(capacity: usize) -> Self {
        let manager = Self::default();
        manager.inner.write().capacity = capacity;
        manager
    }

    /// The capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.read().capacity
    }

    /// Number of materialized Contexts.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// Registers a materialization produced by `instruction`, evicting if
    /// the capacity bound is exceeded.
    pub fn register(&self, instruction: &str, context: Context, original_cost: f64) {
        // The retrieval key is the instruction alone: descriptions grow
        // with every enrichment and would dilute the match.
        let embedding = self.embedder.embed(instruction);
        let mut store = self.inner.write();
        store.tick += 1;
        let last_used = store.tick;
        store.entries.push(MaterializedContext {
            instruction: instruction.to_string(),
            context,
            embedding,
            original_cost,
            last_used,
        });
        if store.journal.is_some() {
            let mut entry_text = String::new();
            encode_entry(store.entries.last().expect("just pushed"), &mut entry_text);
            let mut record = String::from("I\t");
            esc(&entry_text, &mut record);
            store.journal_push(record);
        }
        self.evict_over_capacity(&mut store);
    }

    /// Applies the capacity bound: evicts the cheapest-to-recreate entry
    /// (ties broken by least-recent use) until the store fits. Shared by
    /// registration and snapshot restore so both honor the same policy.
    fn evict_over_capacity(&self, store: &mut Store) {
        while store.capacity > 0 && store.entries.len() > store.capacity {
            let victim = store
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.original_cost
                        .total_cmp(&b.original_cost)
                        .then(a.last_used.cmp(&b.last_used))
                })
                .map(|(i, _)| i);
            // The loop condition guarantees entries is non-empty, but the
            // restore path runs this during recovery, which must never
            // panic (lint rule P1): bail instead.
            let Some(victim) = victim else { break };
            store.journal_push(format!("E\t{victim}"));
            store.entries.remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retrieves the materialized Context most similar to `instruction`,
    /// with its similarity score. Deterministic: earlier registrations win
    /// ties. Read-only — recency is not touched.
    pub fn find_similar(&self, instruction: &str) -> Option<(MaterializedContext, f32)> {
        let q = self.embedder.embed(instruction);
        let store = self.inner.read();
        best_match(&store.entries, &q).map(|(i, s)| (store.entries[i].clone(), s))
    }

    /// Retrieves a reusable Context at or above `threshold`, also
    /// returning the best similarity observed (0.0 when nothing is
    /// materialized). Every lookup bumps the hit/miss counters; a hit
    /// refreshes the entry's recency. The scan and the recency bump are
    /// one atomic step, so concurrent callers never observe a half-done
    /// lookup and the hit+miss totals always reconcile with call counts.
    pub fn reuse_scored(
        &self,
        instruction: &str,
        threshold: f32,
    ) -> (Option<MaterializedContext>, f32) {
        let q = self.embedder.embed(instruction);
        let mut store = self.inner.write();
        let best = best_match(&store.entries, &q);
        let best_sim = best.map(|(_, sim)| sim).unwrap_or(0.0);
        match best.filter(|(_, sim)| *sim >= threshold) {
            Some((index, sim)) => {
                store.tick += 1;
                let tick = store.tick;
                store.entries[index].last_used = tick;
                store.journal_push(format!("B\t{index}\t{tick}"));
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(store.entries[index].clone()), sim)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, best_sim)
            }
        }
    }

    /// Retrieves a reusable Context at or above `threshold`.
    pub fn reuse(&self, instruction: &str, threshold: f32) -> Option<MaterializedContext> {
        self.reuse_scored(instruction, threshold).0
    }

    /// `(hits, misses)` across every reuse lookup so far.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of entries evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every materialization (tests/trials). Counters survive.
    /// Any pending journal is dropped too — the next full snapshot is
    /// the new baseline.
    pub fn clear(&self) {
        let mut store = self.inner.write();
        store.entries.clear();
        if let Some(journal) = store.journal.as_mut() {
            journal.clear();
        }
    }

    /// Turns the mutation journal on (or off). Enabling starts from an
    /// empty journal; the runtime drains it into delta frames between
    /// full snapshots.
    pub fn set_journal(&self, enabled: bool) {
        self.inner.write().journal = enabled.then(Vec::new);
    }

    /// Pending delta records since the last drain or full snapshot.
    pub fn journal_len(&self) -> usize {
        self.inner.read().journal.as_ref().map_or(0, Vec::len)
    }

    /// Takes the pending delta records, leaving the journal empty. Each
    /// record is a newline-free payload [`ContextManager::apply_delta`]
    /// can replay in order.
    pub fn drain_journal(&self) -> Vec<String> {
        let mut store = self.inner.write();
        store
            .journal
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Returns drained records to the FRONT of the journal, preserving
    /// emission order. A failed frame append must not silently drop
    /// mutations: the caller puts them back and the next frame carries
    /// them.
    pub fn restore_journal(&self, mut records: Vec<String>) {
        let mut store = self.inner.write();
        if let Some(journal) = store.journal.as_mut() {
            records.append(journal);
            *journal = records;
        }
    }

    /// Re-applies the capacity bound. Used after delta-chain replay,
    /// where a chain truncated between an insert and its eviction can
    /// leave the store transiently over capacity. The trim's own
    /// journal records are dropped: replay is a restore, and the next
    /// save after any restore rewrites a full snapshot.
    pub fn trim_to_capacity(&self) {
        let mut store = self.inner.write();
        self.evict_over_capacity(&mut store);
        if let Some(journal) = store.journal.as_mut() {
            journal.clear();
        }
    }

    /// Replays one journal record against the store. Records are
    /// index-addressed against the entry order at the time they were
    /// journaled, so they MUST be applied in emission order on top of
    /// the exact base they extend; any structural violation (bad tag,
    /// out-of-range index, malformed entry) is a [`SnapshotError`] and
    /// the caller must discard the rest of the chain.
    pub fn apply_delta(
        &self,
        payload: &str,
        rebuild: &dyn Fn(&str, DataLake, &str) -> Context,
    ) -> Result<(), SnapshotError> {
        let (tag, rest) = payload
            .split_once('\t')
            .ok_or_else(|| fail("bad delta record"))?;
        let mut store = self.inner.write();
        match tag {
            "I" => {
                let entry_text = unesc(rest)?;
                let mut lines = entry_text.lines();
                let first = lines.next().ok_or_else(|| fail("empty delta entry"))?;
                let e = decode_entry_block(first, &mut lines)?;
                if lines.next().is_some() {
                    return Err(fail("trailing delta entry lines"));
                }
                let lake = DataLake::from_docs(e.docs);
                let mut context = rebuild(&e.id, lake, &e.description);
                context.findings = e.findings.map(Arc::new);
                let last_used = e.last_used;
                store.entries.push(MaterializedContext {
                    embedding: self.embedder.embed(&e.instruction),
                    instruction: e.instruction,
                    context,
                    original_cost: e.original_cost,
                    last_used,
                });
                store.tick = store.tick.max(last_used);
            }
            "B" => {
                let (index, tick) = rest
                    .split_once('\t')
                    .and_then(|(i, t)| Some((i.parse::<usize>().ok()?, t.parse::<u64>().ok()?)))
                    .ok_or_else(|| fail("bad bump record"))?;
                let entry = store
                    .entries
                    .get_mut(index)
                    .ok_or_else(|| fail("bump index out of range"))?;
                entry.last_used = tick;
                store.tick = store.tick.max(tick);
            }
            "E" => {
                let index = rest
                    .parse::<usize>()
                    .map_err(|_| fail("bad evict record"))?;
                if index >= store.entries.len() {
                    return Err(fail("evict index out of range"));
                }
                store.entries.remove(index);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            _ => return Err(fail("unknown delta tag")),
        }
        Ok(())
    }

    /// Encodes the whole store — every materialization with its lineage
    /// (producing instruction), cost metadata, LRU state, documents
    /// (including oracle labels), and findings table — as a versioned,
    /// checksummed snapshot. Entries are written in registration order so
    /// a reload preserves the deterministic earlier-entry-wins tie-break.
    pub fn encode_snapshot(&self) -> String {
        let store = self.inner.read();
        let mut body = String::new();
        body.push_str(&format!("T\t{}\n", store.tick));
        for entry in &store.entries {
            encode_entry(entry, &mut body);
        }
        snapshot::encode_file(STORE_MAGIC, &body)
    }

    /// Restores the store from a snapshot produced by
    /// [`ContextManager::encode_snapshot`], replacing any current
    /// entries. `rebuild` constructs a Context from `(id, lake,
    /// description)` — the caller supplies it because Context
    /// construction needs a Runtime. Embeddings are recomputed
    /// deterministically from each instruction; LRU ticks and costs are
    /// restored exactly, and the store is trimmed to the capacity bound
    /// with the standard eviction policy. Any format, count, or checksum
    /// violation returns [`SnapshotError`] and leaves the store
    /// untouched — callers start cold instead of trusting a corrupt
    /// file. Returns how many Contexts were restored (after trimming).
    pub fn load_snapshot(
        &self,
        text: &str,
        rebuild: &dyn Fn(&str, DataLake, &str) -> Context,
    ) -> Result<usize, SnapshotError> {
        let body = snapshot::decode_file(STORE_MAGIC, text)?;
        let decoded = decode_store(body)?;
        let mut entries = Vec::with_capacity(decoded.entries.len());
        for e in decoded.entries {
            let lake = DataLake::from_docs(e.docs);
            let mut context = rebuild(&e.id, lake, &e.description);
            context.findings = e.findings.map(Arc::new);
            entries.push(MaterializedContext {
                embedding: self.embedder.embed(&e.instruction),
                instruction: e.instruction,
                context,
                original_cost: e.original_cost,
                last_used: e.last_used,
            });
        }
        let mut store = self.inner.write();
        store.entries = entries;
        // The restored counter must stay strictly ahead of every
        // restored `last_used`, even for a snapshot whose `T` line
        // under-reports the tick (hand-edited or from a writer crash):
        // otherwise a post-restore recency bump could collide with a
        // restored tick and corrupt the LRU order.
        let max_used = store.entries.iter().map(|e| e.last_used).max().unwrap_or(0);
        store.tick = store.tick.max(decoded.tick).max(max_used);
        self.evict_over_capacity(&mut store);
        // The restore is a fresh baseline: any journal records from the
        // trim above describe mutations already visible in the loaded
        // state, not changes a delta frame still needs to carry.
        if let Some(journal) = store.journal.as_mut() {
            journal.clear();
        }
        Ok(store.entries.len())
    }
}

const STORE_MAGIC: &str = "aida-ctxstore v1";

// ---- snapshot encoding -------------------------------------------------
//
// Tab-separated, tagged lines (escaping via the shared `snapshot` codec):
//   T  <tick>
//   C  <instruction> <cost_bits:hex16> <last_used> <id> <description>
//      <ndocs> <has_findings 0|1>
//   D  <name> <content> <nlabels> (<key> <value-enc>)*      — ×ndocs
//   F  <ncols> (<col-name> <col-desc>)* <nrows> (<cell-enc>)*
//
// Documents round-trip through `Document::new(name, content)` (which
// derives `id` and `kind` from the name, the universal construction in
// this codebase) plus explicit labels, so the oracle sees identical
// ground truth after a restore.

fn encode_entry(entry: &MaterializedContext, out: &mut String) {
    out.push_str("C\t");
    esc(&entry.instruction, out);
    out.push_str(&format!(
        "\t{:016x}\t{}\t",
        entry.original_cost.to_bits(),
        entry.last_used
    ));
    esc(&entry.context.id, out);
    out.push('\t');
    esc(&entry.context.description, out);
    let docs = entry.context.lake().docs();
    out.push_str(&format!(
        "\t{}\t{}\n",
        docs.len(),
        u8::from(entry.context.findings.is_some())
    ));
    for doc in docs {
        out.push_str("D\t");
        esc(&doc.name, out);
        out.push('\t');
        esc(&doc.content, out);
        out.push('\t');
        out.push_str(&doc.labels.len().to_string());
        for (key, value) in &doc.labels {
            out.push('\t');
            esc(key, out);
            out.push('\t');
            encode_value(value, out);
        }
        out.push('\n');
    }
    if let Some(findings) = &entry.context.findings {
        out.push_str("F\t");
        let fields = findings.schema().fields();
        out.push_str(&fields.len().to_string());
        for field in fields {
            out.push('\t');
            esc(&field.name, out);
            out.push('\t');
            esc(&field.desc, out);
        }
        out.push('\t');
        out.push_str(&findings.len().to_string());
        for row in findings.rows() {
            for cell in row {
                out.push('\t');
                encode_value(cell, out);
            }
        }
        out.push('\n');
    }
}

struct DecodedEntry {
    instruction: String,
    original_cost: f64,
    last_used: u64,
    id: String,
    description: String,
    docs: Vec<Document>,
    findings: Option<Table>,
}

struct DecodedStore {
    tick: u64,
    entries: Vec<DecodedEntry>,
}

fn fail(msg: &str) -> SnapshotError {
    SnapshotError::Format(msg.to_string())
}

fn decode_store(body: &str) -> Result<DecodedStore, SnapshotError> {
    let mut lines = body.lines();
    let tick = lines
        .next()
        .and_then(|line| line.strip_prefix("T\t"))
        .and_then(|raw| raw.parse::<u64>().ok())
        .ok_or_else(|| fail("bad tick line"))?;
    let mut entries = Vec::new();
    while let Some(line) = lines.next() {
        entries.push(decode_entry_block(line, &mut lines)?);
    }
    Ok(DecodedStore { tick, entries })
}

/// Decodes one entry's `C` line (`first`) plus its `D`/`F` lines pulled
/// from `lines`. Shared by the whole-store decoder and the delta-frame
/// replay, so an `I` record can never drift from the snapshot format.
fn decode_entry_block(
    first: &str,
    lines: &mut std::str::Lines,
) -> Result<DecodedEntry, SnapshotError> {
    let fields: Vec<&str> = first.split('\t').collect();
    if fields.first() != Some(&"C") || fields.len() != 8 {
        return Err(fail("bad context line"));
    }
    let instruction = unesc(fields[1])?;
    let original_cost = u64::from_str_radix(fields[2], 16)
        .map(f64::from_bits)
        .map_err(|_| fail("bad cost bits"))?;
    let last_used = fields[3]
        .parse::<u64>()
        .map_err(|_| fail("bad last_used"))?;
    let id = unesc(fields[4])?;
    let description = unesc(fields[5])?;
    let ndocs = fields[6]
        .parse::<usize>()
        .map_err(|_| fail("bad doc count"))?;
    let has_findings = match fields[7] {
        "0" => false,
        "1" => true,
        _ => return Err(fail("bad findings flag")),
    };
    let mut docs = Vec::with_capacity(ndocs);
    for _ in 0..ndocs {
        docs.push(decode_doc(
            lines.next().ok_or_else(|| fail("missing document line"))?,
        )?);
    }
    let findings = if has_findings {
        Some(decode_findings(
            lines.next().ok_or_else(|| fail("missing findings line"))?,
        )?)
    } else {
        None
    };
    Ok(DecodedEntry {
        instruction,
        original_cost,
        last_used,
        id,
        description,
        docs,
        findings,
    })
}

fn decode_doc(line: &str) -> Result<Document, SnapshotError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.first() != Some(&"D") || fields.len() < 4 {
        return Err(fail("bad document line"));
    }
    let name = unesc(fields[1])?;
    let content = unesc(fields[2])?;
    let nlabels = fields[3]
        .parse::<usize>()
        .map_err(|_| fail("bad label count"))?;
    if fields.len() != 4 + nlabels * 2 {
        return Err(fail("label count mismatch"));
    }
    let mut doc = Document::new(name, content);
    for i in 0..nlabels {
        let key = unesc(fields[4 + i * 2])?;
        let value = decode_value(fields[5 + i * 2])?;
        doc = doc.with_label(key, value);
    }
    Ok(doc)
}

fn decode_findings(line: &str) -> Result<Table, SnapshotError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.first() != Some(&"F") || fields.len() < 2 {
        return Err(fail("bad findings line"));
    }
    let ncols = fields[1]
        .parse::<usize>()
        .map_err(|_| fail("bad column count"))?;
    let rows_at = 2 + ncols * 2;
    if fields.len() < rows_at + 1 {
        return Err(fail("truncated findings columns"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        columns.push(Field::described(
            unesc(fields[2 + i * 2])?,
            unesc(fields[3 + i * 2])?,
        ));
    }
    let nrows = fields[rows_at]
        .parse::<usize>()
        .map_err(|_| fail("bad row count"))?;
    if fields.len() != rows_at + 1 + nrows * ncols {
        return Err(fail("findings cell count mismatch"));
    }
    let mut table = Table::new(Schema::from_fields(columns));
    let mut idx = rows_at + 1;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(decode_value(fields[idx])?);
            idx += 1;
        }
        table
            .push_row(row)
            .map_err(|_| fail("bad findings row arity"))?;
    }
    Ok(table)
}

/// Index and similarity of the best match against `query`, earlier entries
/// winning ties.
fn best_match(entries: &[MaterializedContext], query: &[f32]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, entry) in entries.iter().enumerate() {
        let sim = cosine(query, &entry.embedding);
        if best.is_none_or(|(_, s)| sim > s) {
            best = Some((i, sim));
        }
    }
    best
}

impl std::fmt::Debug for ContextManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContextManager({} materialized)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use aida_data::{DataLake, Document};

    fn ctx(rt: &Runtime, desc: &str) -> Context {
        Context::builder("c", DataLake::from_docs([Document::new("a.txt", "x")]))
            .description(desc)
            .build(rt)
    }

    #[test]
    fn register_and_retrieve_by_similarity() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find the number of identity theft reports in 2001",
            ctx(&rt, "FINDINGS: identity theft reports 2001: 86250"),
            1.2,
        );
        manager.register(
            "summarize pipeline maintenance schedules",
            ctx(&rt, "FINDINGS: maintenance windows for gas pipelines"),
            0.8,
        );
        let (hit, sim) = manager
            .find_similar("find the number of identity theft reports in 2024")
            .unwrap();
        assert!(hit.instruction.contains("identity theft"));
        assert!(sim > 0.4, "similar instructions should score high: {sim}");
    }

    #[test]
    fn reuse_respects_threshold() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        assert!(manager
            .reuse("find identity theft reports in 2024", 0.99)
            .is_none());
        assert!(manager
            .reuse("find identity theft reports in 2001", 0.95)
            .is_some());
        // A completely unrelated instruction never reuses.
        assert!(manager
            .reuse("weather forecast for tokyo marathon", 0.5)
            .is_none());
    }

    #[test]
    fn reuse_stats_count_hits_and_misses() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        assert_eq!(manager.reuse_stats(), (0, 0));
        // A lookup against an empty manager is a miss.
        assert!(manager.reuse("anything", 0.5).is_none());
        assert_eq!(manager.reuse_stats(), (0, 1));
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        let (hit, sim) = manager.reuse_scored("find identity theft reports in 2001", 0.95);
        assert!(hit.is_some());
        assert!(sim >= 0.95);
        let (missed, best) = manager.reuse_scored("weather forecast for tokyo marathon", 0.5);
        assert!(missed.is_none());
        assert!(
            best < 0.5,
            "best similarity is still reported on a miss: {best}"
        );
        assert_eq!(manager.reuse_stats(), (1, 2));
        // Clones share the counters.
        assert_eq!(manager.clone().reuse_stats(), (1, 2));
    }

    #[test]
    fn empty_manager_finds_nothing() {
        let manager = ContextManager::new();
        assert!(manager.find_similar("anything").is_none());
        assert!(manager.is_empty());
    }

    #[test]
    fn clear_empties_and_clones_share() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        let clone = manager.clone();
        manager.register("i", ctx(&rt, "d"), 0.1);
        assert_eq!(clone.len(), 1);
        clone.clear();
        assert!(manager.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_cheapest_first() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::with_capacity(2);
        assert_eq!(manager.capacity(), 2);
        manager.register("expensive exhaustive legal scan", ctx(&rt, "a"), 2.0);
        manager.register("cheap keyword probe", ctx(&rt, "b"), 0.01);
        manager.register("medium targeted extraction", ctx(&rt, "c"), 0.5);
        // The $0.01 entry is the victim, not the oldest ($2.00) one.
        assert_eq!(manager.len(), 2);
        assert_eq!(manager.evictions(), 1);
        let kept: Vec<String> = [
            "expensive exhaustive legal scan",
            "medium targeted extraction",
        ]
        .iter()
        .map(|i| {
            manager
                .find_similar(i)
                .map(|(m, _)| m.instruction)
                .unwrap_or_default()
        })
        .collect();
        assert!(kept.iter().any(|i| i.contains("expensive")));
        assert!(kept.iter().any(|i| i.contains("medium")));
    }

    #[test]
    fn eviction_ties_break_by_recency() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::with_capacity(2);
        manager.register("alpha instruction about pipelines", ctx(&rt, "a"), 1.0);
        manager.register("beta instruction about reports", ctx(&rt, "b"), 1.0);
        // Touch alpha so beta becomes the least-recently-used equal-cost
        // entry.
        assert!(manager
            .reuse("alpha instruction about pipelines", 0.95)
            .is_some());
        manager.register("gamma instruction about filings", ctx(&rt, "c"), 1.0);
        assert_eq!(manager.len(), 2);
        let (hit, sim) = manager
            .find_similar("beta instruction about reports")
            .unwrap();
        assert!(
            sim < 0.95 || !hit.instruction.contains("beta"),
            "beta should have been evicted (best match now {} at {sim})",
            hit.instruction
        );
    }

    #[test]
    fn snapshot_round_trips_store_and_rejects_corruption() {
        use aida_data::Value;
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        let lake = DataLake::from_docs([
            Document::new("a.txt", "alpha text\twith tabs\nand lines")
                .with_label("amount", Value::Int(42)),
            Document::new("b.csv", "k,v\nx,7"),
        ]);
        let mut context = Context::builder("legal/1", lake)
            .description("FINDINGS: alpha amount is 42")
            .build(&rt);
        let mut table = Table::new(Schema::of(["k", "v"]));
        table
            .push_row(vec![Value::Str("x, [tricky]".into()), Value::Int(7)])
            .unwrap();
        context.findings = Some(Arc::new(table));
        manager.register("find the alpha amount", context, 1.25);
        manager.register("summarize beta filings", ctx(&rt, "FINDINGS: beta"), 0.5);

        let snap = manager.encode_snapshot();
        let restored = ContextManager::new();
        let rebuild = |id: &str, lake: DataLake, desc: &str| {
            Context::builder(id, lake).description(desc).build(&rt)
        };
        assert_eq!(restored.load_snapshot(&snap, &rebuild).unwrap(), 2);
        // Re-encoding the restored store reproduces the snapshot byte for
        // byte: lineage, costs, LRU ticks, docs, and findings all survive.
        assert_eq!(restored.encode_snapshot(), snap);
        let (hit, sim) = restored.find_similar("find the alpha amount").unwrap();
        assert!(sim > 0.95, "restored instruction should match: {sim}");
        assert_eq!(hit.context.id, "legal/1");
        assert_eq!(
            hit.context.lake().docs()[0].label("amount"),
            Some(&Value::Int(42))
        );
        let findings = hit.context.findings.expect("findings survive");
        assert_eq!(
            findings.cell(0, "k"),
            Some(&Value::Str("x, [tricky]".into()))
        );

        // One flipped byte breaks the checksum; the store is untouched.
        let mut bytes = snap.clone().into_bytes();
        let at = bytes.len() - 2;
        bytes[at] = bytes[at].wrapping_add(1);
        let garbled = String::from_utf8(bytes).unwrap();
        let cold = ContextManager::new();
        assert!(matches!(
            cold.load_snapshot(&garbled, &rebuild),
            Err(SnapshotError::Format(_))
        ));
        assert!(cold.is_empty());
    }

    #[test]
    fn snapshot_restore_respects_capacity_bound() {
        let rt = Runtime::builder().build();
        let big = ContextManager::new();
        big.register("expensive exhaustive legal scan", ctx(&rt, "a"), 2.0);
        big.register("cheap keyword probe", ctx(&rt, "b"), 0.01);
        big.register("medium targeted extraction", ctx(&rt, "c"), 0.5);
        let snap = big.encode_snapshot();
        // A smaller manager trims the restored store with the standard
        // cost-aware policy instead of silently exceeding its bound.
        let small = ContextManager::with_capacity(2);
        let rebuild = |id: &str, lake: DataLake, desc: &str| {
            Context::builder(id, lake).description(desc).build(&rt)
        };
        assert_eq!(small.load_snapshot(&snap, &rebuild).unwrap(), 2);
        assert_eq!(small.evictions(), 1);
        let (hit, _) = small.find_similar("cheap keyword probe").unwrap();
        assert!(
            !hit.instruction.contains("cheap"),
            "the cheapest entry is the trim victim"
        );
    }

    #[test]
    fn journal_replay_reproduces_the_store_byte_for_byte() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::with_capacity(2);
        manager.set_journal(true);

        // Baseline: one entry, then a full snapshot drains nothing (the
        // runtime clears via drain) — replay starts from this base.
        manager.register("expensive exhaustive legal scan", ctx(&rt, "a"), 2.0);
        let base = manager.encode_snapshot();
        let drained = manager.drain_journal();
        assert_eq!(drained.len(), 1, "register journals one insert");

        // Mutations after the base: insert, recency bump, insert that
        // evicts (capacity 2 — the cheap probe is the victim).
        manager.register("cheap keyword probe", ctx(&rt, "b"), 0.01);
        assert!(manager
            .reuse("expensive exhaustive legal scan", 0.95)
            .is_some());
        manager.register("medium targeted extraction", ctx(&rt, "c"), 0.5);
        let deltas = manager.drain_journal();
        assert_eq!(manager.journal_len(), 0);
        assert!(
            deltas.iter().any(|d| d.starts_with("E\t")),
            "the over-capacity insert journals its eviction: {deltas:?}"
        );

        let rebuild = |id: &str, lake: DataLake, desc: &str| {
            Context::builder(id, lake).description(desc).build(&rt)
        };
        let replica = ContextManager::with_capacity(2);
        assert_eq!(replica.load_snapshot(&base, &rebuild).unwrap(), 1);
        for delta in &deltas {
            replica.apply_delta(delta, &rebuild).unwrap();
        }
        assert_eq!(replica.encode_snapshot(), manager.encode_snapshot());

        // Structural violations reject instead of applying garbage.
        assert!(replica.apply_delta("B\t99\t7", &rebuild).is_err());
        assert!(replica.apply_delta("E\t99", &rebuild).is_err());
        assert!(replica.apply_delta("X\tnope", &rebuild).is_err());
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        for i in 0..32 {
            manager.register(&format!("instruction {i}"), ctx(&rt, "d"), 0.1);
        }
        assert_eq!(manager.len(), 32);
        assert_eq!(manager.evictions(), 0);
    }
}
