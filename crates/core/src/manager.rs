//! The ContextManager: materialized-view-style reuse of Contexts.
//!
//! Every `search`/`compute` execution materializes a Context (a narrowed
//! lake + an enriched description + structured findings). The manager
//! embeds each description and, when a new instruction arrives, retrieves
//! the most similar materialized Context; above the runtime's similarity
//! threshold the operator reuses it instead of re-running an agent — the
//! paper's §3 physical optimization (and its §2.4 cache).

use crate::context::Context;
use aida_llm::embed::{cosine, Embedder};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached materialization.
#[derive(Clone)]
pub struct MaterializedContext {
    /// The instruction whose execution produced this Context.
    pub instruction: String,
    /// The materialized Context.
    pub context: Context,
    /// Embedding of `instruction` + description (retrieval key).
    embedding: Vec<f32>,
    /// What the producing execution cost (for reporting savings).
    pub original_cost: f64,
}

/// A shared registry of materialized Contexts.
#[derive(Clone, Default)]
pub struct ContextManager {
    inner: Arc<RwLock<Vec<MaterializedContext>>>,
    embedder: Embedder,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl ContextManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized Contexts.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Registers a materialization produced by `instruction`.
    pub fn register(&self, instruction: &str, context: Context, original_cost: f64) {
        // The retrieval key is the instruction alone: descriptions grow
        // with every enrichment and would dilute the match.
        let embedding = self.embedder.embed(instruction);
        self.inner.write().push(MaterializedContext {
            instruction: instruction.to_string(),
            context,
            embedding,
            original_cost,
        });
    }

    /// Retrieves the materialized Context most similar to `instruction`,
    /// with its similarity score. Deterministic: earlier registrations win
    /// ties.
    pub fn find_similar(&self, instruction: &str) -> Option<(MaterializedContext, f32)> {
        let q = self.embedder.embed(instruction);
        let inner = self.inner.read();
        let mut best: Option<(usize, f32)> = None;
        for (i, entry) in inner.iter().enumerate() {
            let sim = cosine(&q, &entry.embedding);
            if best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        best.map(|(i, s)| (inner[i].clone(), s))
    }

    /// Retrieves a reusable Context at or above `threshold`, also
    /// returning the best similarity observed (0.0 when nothing is
    /// materialized). Every lookup bumps the hit/miss counters.
    pub fn reuse_scored(
        &self,
        instruction: &str,
        threshold: f32,
    ) -> (Option<MaterializedContext>, f32) {
        let best = self.find_similar(instruction);
        let best_sim = best.as_ref().map(|(_, sim)| *sim).unwrap_or(0.0);
        match best.filter(|(_, sim)| *sim >= threshold) {
            Some((entry, sim)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (Some(entry), sim)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, best_sim)
            }
        }
    }

    /// Retrieves a reusable Context at or above `threshold`.
    pub fn reuse(&self, instruction: &str, threshold: f32) -> Option<MaterializedContext> {
        self.reuse_scored(instruction, threshold).0
    }

    /// `(hits, misses)` across every reuse lookup so far.
    pub fn reuse_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every materialization (tests/trials).
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

impl std::fmt::Debug for ContextManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ContextManager({} materialized)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use aida_data::{DataLake, Document};

    fn ctx(rt: &Runtime, desc: &str) -> Context {
        Context::builder("c", DataLake::from_docs([Document::new("a.txt", "x")]))
            .description(desc)
            .build(rt)
    }

    #[test]
    fn register_and_retrieve_by_similarity() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find the number of identity theft reports in 2001",
            ctx(&rt, "FINDINGS: identity theft reports 2001: 86250"),
            1.2,
        );
        manager.register(
            "summarize pipeline maintenance schedules",
            ctx(&rt, "FINDINGS: maintenance windows for gas pipelines"),
            0.8,
        );
        let (hit, sim) = manager
            .find_similar("find the number of identity theft reports in 2024")
            .unwrap();
        assert!(hit.instruction.contains("identity theft"));
        assert!(sim > 0.4, "similar instructions should score high: {sim}");
    }

    #[test]
    fn reuse_respects_threshold() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        assert!(manager
            .reuse("find identity theft reports in 2024", 0.99)
            .is_none());
        assert!(manager
            .reuse("find identity theft reports in 2001", 0.95)
            .is_some());
        // A completely unrelated instruction never reuses.
        assert!(manager
            .reuse("weather forecast for tokyo marathon", 0.5)
            .is_none());
    }

    #[test]
    fn reuse_stats_count_hits_and_misses() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        assert_eq!(manager.reuse_stats(), (0, 0));
        // A lookup against an empty manager is a miss.
        assert!(manager.reuse("anything", 0.5).is_none());
        assert_eq!(manager.reuse_stats(), (0, 1));
        manager.register(
            "find identity theft reports in 2001",
            ctx(&rt, "FINDINGS: thefts 2001"),
            1.0,
        );
        let (hit, sim) = manager.reuse_scored("find identity theft reports in 2001", 0.95);
        assert!(hit.is_some());
        assert!(sim >= 0.95);
        let (missed, best) = manager.reuse_scored("weather forecast for tokyo marathon", 0.5);
        assert!(missed.is_none());
        assert!(
            best < 0.5,
            "best similarity is still reported on a miss: {best}"
        );
        assert_eq!(manager.reuse_stats(), (1, 2));
        // Clones share the counters.
        assert_eq!(manager.clone().reuse_stats(), (1, 2));
    }

    #[test]
    fn empty_manager_finds_nothing() {
        let manager = ContextManager::new();
        assert!(manager.find_similar("anything").is_none());
        assert!(manager.is_empty());
    }

    #[test]
    fn clear_empties_and_clones_share() {
        let rt = Runtime::builder().build();
        let manager = ContextManager::new();
        let clone = manager.clone();
        manager.register("i", ctx(&rt, "d"), 0.1);
        assert_eq!(clone.len(), 1);
        clone.clear();
        assert!(manager.is_empty());
    }
}
