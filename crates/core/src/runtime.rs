//! The runtime: shared services every query uses.

use crate::manager::ContextManager;
use aida_data::{DataLake, Table};
use aida_llm::snapshot::{self, FailPlan, SnapshotError};
use aida_llm::{ModelId, SimLlm, UsageSnapshot};
use aida_obs::{registry, Event, Recorder, SpanKind};
use aida_optimizer::{OptimizerConfig, Policy};
use aida_semops::ExecEnv;
use aida_sql::{Catalog, SqlError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables for the runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Seed for all stochastic simulation.
    pub seed: u64,
    /// Model the agentic operators plan with.
    pub agent_model: ModelId,
    /// Optimizer configuration used by `run_semantic_program`.
    pub optimizer: OptimizerConfig,
    /// Optimization policy for synthesized programs.
    pub policy: Policy,
    /// Whether the ContextManager may reuse materialized Contexts.
    pub enable_context_reuse: bool,
    /// Similarity threshold for Context reuse.
    pub reuse_threshold: f32,
    /// Max steps per agentic operator.
    pub agent_max_steps: usize,
    /// Transient-fault rate injected into every simulated LLM call (each
    /// fault bills a failed attempt and retry backoff; results never
    /// change).
    pub fault_rate: f64,
    /// Whether to record a hierarchical span trace of every query
    /// (spans, events, counters — rendered by `EXPLAIN ANALYZE` and the
    /// JSONL exporter). Off by default: the disabled recorder is a no-op.
    pub tracing: bool,
    /// Capacity bound on the ContextManager's materialized-Context store
    /// (0 = unbounded). Long-running services set this so the store stays
    /// bounded; over capacity the cheapest-to-recreate entry is evicted
    /// (ties broken by least-recent use).
    pub context_capacity: usize,
    /// Entry capacity of the semantic call cache (0 = disabled). When
    /// enabled, every simulated LLM call is memoized by content key:
    /// repeats cost zero dollars/tokens and a small hit latency.
    pub semantic_cache: usize,
    /// Byte budget for the semantic cache's stored responses (0 =
    /// unbounded; meaningful only when the cache is enabled).
    pub cache_max_bytes: usize,
    /// Virtual latency of a semantic-cache hit, in seconds.
    pub cache_hit_latency_s: f64,
    /// Snapshot path for the semantic cache: loaded (best-effort) at
    /// build so a restart keeps a warm cache, written on
    /// [`Runtime::save_cache`]. A corrupt snapshot starts cold.
    pub cache_path: Option<std::path::PathBuf>,
    /// Snapshot path for the ContextManager store: loaded (best-effort)
    /// at build so a restart keeps every materialized Context, written on
    /// [`Runtime::save_state`] and at the ops-interval checkpoint. A
    /// corrupt snapshot starts cold.
    pub state_path: Option<std::path::PathBuf>,
    /// Checkpoint the durable state (ContextManager snapshot + semantic
    /// cache) every N agentic operator completions (0 = only on explicit
    /// [`Runtime::save_state`] / [`Runtime::save_cache`]).
    pub checkpoint_interval: u64,
    /// Incremental checkpoints: when set, [`Runtime::save_state`] emits
    /// checksummed delta frames (the ContextManager's mutation journal)
    /// to `<state_path>.delta` between full snapshots, so checkpoint
    /// cost tracks what changed instead of total store size.
    pub delta_checkpoints: bool,
    /// In delta mode, rewrite a full snapshot (and reset the delta
    /// chain) after this many delta frames. Bounds recovery replay
    /// length; 0 falls back to the default (16).
    pub full_snapshot_every: u64,
    /// Where the flight recorder dumps its ring of recent events when a
    /// crash seam fires, a recovery path runs, or an SLO alert trips
    /// (`None` = no automatic dumps). Only meaningful with `tracing`.
    pub flight_path: Option<std::path::PathBuf>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            agent_model: ModelId::Flagship,
            optimizer: OptimizerConfig::default(),
            policy: Policy::MinCost {
                quality_floor: 0.85,
            },
            enable_context_reuse: true,
            reuse_threshold: 0.80,
            agent_max_steps: 8,
            fault_rate: 0.0,
            tracing: false,
            context_capacity: 0,
            semantic_cache: 0,
            cache_max_bytes: 0,
            cache_hit_latency_s: 0.02,
            cache_path: None,
            state_path: None,
            checkpoint_interval: 0,
            delta_checkpoints: false,
            full_snapshot_every: 16,
            flight_path: None,
        }
    }
}

/// Where the incremental checkpointer stands in the current delta
/// chain. `base_sum` is the FNV-64 of the full snapshot the chain
/// extends; frames are stamped with it so a stale chain (from a crash
/// between a full-snapshot commit and the chain reset) can never be
/// applied to the wrong base. `None` forces the next save to write a
/// full snapshot.
#[derive(Debug, Default)]
struct DeltaState {
    next_seq: u64,
    frames: u64,
    base_sum: Option<u64>,
}

/// The shared runtime: simulated LLM + clock, context manager, and the SQL
/// catalog of materialized tables.
#[derive(Clone)]
pub struct Runtime {
    env: ExecEnv,
    config: RuntimeConfig,
    manager: ContextManager,
    catalog: Arc<Mutex<Catalog>>,
    /// Agentic operator completions, driving the ops-interval checkpoint.
    ops_done: Arc<AtomicU64>,
    /// Incremental-checkpoint chain position (delta mode only).
    delta: Arc<Mutex<DeltaState>>,
}

impl Runtime {
    /// Starts building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// The execution environment (LLM, clock, embedder).
    pub fn env(&self) -> &ExecEnv {
        &self.env
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The materialized-context manager.
    pub fn manager(&self) -> &ContextManager {
        &self.manager
    }

    /// The trace recorder (disabled unless the runtime was built with
    /// `.tracing(true)`).
    pub fn recorder(&self) -> &Recorder {
        &self.env.recorder
    }

    /// The shared usage ledger (every simulated LLM call lands here).
    /// Service layers snapshot it around a query and difference the
    /// snapshots to attribute spend to a tenant.
    pub fn meter(&self) -> &aida_llm::UsageMeter {
        self.env.llm.meter()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &aida_llm::SimClock {
        &self.env.clock
    }

    /// Context-reuse `(hits, misses)` observed so far.
    pub fn reuse_stats(&self) -> (u64, u64) {
        self.manager.reuse_stats()
    }

    /// The semantic call cache, when enabled via
    /// [`RuntimeBuilder::semantic_cache`].
    pub fn semantic_cache(&self) -> Option<&aida_llm::SemanticCache> {
        self.env.llm.cache()
    }

    /// Counter snapshot of the semantic cache (`None` when disabled).
    pub fn cache_stats(&self) -> Option<aida_llm::CacheStats> {
        self.env.llm.cache().map(|c| c.stats())
    }

    /// Spills the semantic cache to the configured `cache_path`.
    /// Returns whether a snapshot was written (false when the cache or
    /// the path is not configured).
    pub fn save_cache(&self) -> std::io::Result<bool> {
        match (self.env.llm.cache(), &self.config.cache_path) {
            (Some(cache), Some(path)) => {
                cache.save(path)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Persists the ContextManager store (materialized Contexts with
    /// lineage, cost, and LRU state) to the configured `state_path` via
    /// an atomic temp-file-and-rename commit. Returns whether a snapshot
    /// was written (false when no path is configured).
    pub fn save_state(&self) -> std::io::Result<bool> {
        self.save_state_with(None)
    }

    /// The delta-chain path for the configured `state_path` (delta
    /// checkpoints land in `<state_path>.delta`).
    pub fn delta_path(&self) -> Option<std::path::PathBuf> {
        self.config.state_path.as_ref().map(|p| delta_path_for(p))
    }

    /// [`Runtime::save_state`] with an optional crash-injection plan
    /// (threaded through by the durability suite). In delta mode
    /// ([`RuntimeConfig::delta_checkpoints`]) this appends one
    /// checksummed delta frame carrying the journal of mutations since
    /// the previous checkpoint; every
    /// [`RuntimeConfig::full_snapshot_every`] frames (and on the first
    /// save, or after any restore) it rewrites the full snapshot and
    /// resets the chain.
    pub fn save_state_with(&self, plan: Option<&FailPlan>) -> std::io::Result<bool> {
        let Some(path) = &self.config.state_path else {
            return Ok(false);
        };
        if !self.config.delta_checkpoints {
            let text = self.manager.encode_snapshot();
            snapshot::commit_atomic(path, &text, plan)?;
            self.recorder().counter_add(registry::CHECKPOINT_SAVES, 1);
            self.recorder()
                .counter_add(registry::CHECKPOINT_BYTES, text.len() as u64);
            return Ok(true);
        }
        let full_every = self.config.full_snapshot_every.max(1);
        let mut delta = self.delta.lock();
        if delta.base_sum.is_none() || delta.frames >= full_every {
            // Full rewrite: the journal's mutations are folded into the
            // snapshot, so the chain (and the journal) reset. The chain
            // file is removed only after the snapshot commits — a crash
            // in between leaves a stale chain whose base stamp no longer
            // matches, which recovery discards.
            let text = self.manager.encode_snapshot();
            snapshot::commit_atomic(path, &text, plan)?;
            let _ = self.manager.drain_journal();
            match std::fs::remove_file(delta_path_for(path)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            delta.base_sum = Some(snapshot::fnv64(text.as_bytes()));
            delta.frames = 0;
            delta.next_seq = 0;
            self.recorder().counter_add(registry::CHECKPOINT_SAVES, 1);
            self.recorder()
                .counter_add(registry::CHECKPOINT_BYTES, text.len() as u64);
            return Ok(true);
        }
        let records = self.manager.drain_journal();
        if records.is_empty() {
            // Nothing changed since the last frame: the checkpoint is a
            // durable no-op, not an error.
            return Ok(true);
        }
        let base = delta.base_sum.expect("checked above");
        let payload = encode_delta_frame(base, &records);
        let seq = delta.next_seq;
        if let Err(e) = snapshot::delta_append(&delta_path_for(path), seq, &payload, plan) {
            // The mutations are not durable yet: put them back so the
            // next (retried) frame still carries them.
            self.manager.restore_journal(records);
            return Err(e);
        }
        delta.next_seq += 1;
        delta.frames += 1;
        self.recorder().counter_add(registry::CHECKPOINT_SAVES, 1);
        self.recorder()
            .counter_add(registry::CHECKPOINT_DELTA_FRAMES, 1);
        self.recorder().counter_add(
            registry::CHECKPOINT_BYTES,
            snapshot::wal_record_line(seq, &payload).len() as u64,
        );
        Ok(true)
    }

    /// Restores the ContextManager store from the configured
    /// `state_path`, replacing the current store. Returns how many
    /// Contexts were restored (0 when no path is configured or the
    /// snapshot file does not exist yet — a normal cold start). A
    /// corrupt or truncated snapshot is rejected as [`SnapshotError`]
    /// and the store is left untouched.
    pub fn load_state(&self) -> Result<usize, SnapshotError> {
        let Some(path) = &self.config.state_path else {
            return Ok(0);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let rebuild = |id: &str, lake: DataLake, desc: &str| {
            crate::Context::builder(id, lake)
                .description(desc)
                .build(self)
        };
        let mut n = self.manager.load_snapshot(&text, &rebuild)?;
        if self.config.delta_checkpoints {
            // Replay the delta chain on top of the snapshot. Frames are
            // trusted up to the first violation — torn tail, bad
            // checksum, out-of-order seq (all caught by the WAL replay),
            // a base stamp that doesn't match this snapshot, or a record
            // the store rejects — exactly the suffix-truncation
            // semantics of the ledger WAL. After a restore, the next
            // save rewrites a full snapshot, so the chain on disk is
            // never extended against a base it didn't come from.
            let base_sum = snapshot::fnv64(text.as_bytes());
            let replay = snapshot::wal_replay(&delta_path_for(path)).map_err(SnapshotError::Io)?;
            let mut frames = 0u64;
            'frames: for (_, payload) in &replay.records {
                let Some(records) = decode_delta_frame(base_sum, payload) else {
                    break 'frames;
                };
                for record in &records {
                    if self.manager.apply_delta(record, &rebuild).is_err() {
                        break 'frames;
                    }
                }
                frames += 1;
            }
            if frames > 0 {
                self.recorder().flight(
                    "core.state",
                    "delta_replayed",
                    format!("{frames} delta frames on top of the snapshot"),
                );
            }
            self.manager.trim_to_capacity();
            n = self.manager.len();
            let mut delta = self.delta.lock();
            *delta = DeltaState::default();
        }
        self.recorder()
            .counter_add(registry::STATE_RESTORED_CONTEXTS, n as u64);
        if n > 0 {
            // A recovery path ran: note it in the flight ring so the
            // forensic tail shows the restart.
            self.recorder().flight(
                "core.state",
                "restored",
                format!("{n} contexts from snapshot"),
            );
        }
        Ok(n)
    }

    /// Notes one completed agentic operator; every `checkpoint_interval`
    /// completions the durable state (Context snapshot + semantic cache)
    /// is checkpointed best-effort — a failed checkpoint is counted
    /// (`checkpoint.errors`), never fatal to the query that triggered it.
    pub(crate) fn note_agentic_op(&self) {
        let interval = self.config.checkpoint_interval;
        if interval == 0 {
            return;
        }
        let done = self.ops_done.fetch_add(1, Ordering::Relaxed) + 1;
        if done.is_multiple_of(interval) {
            // Error counters always travel with a typed event: the
            // counter feeds dashboards, the event feeds the trace and
            // the flight recorder's forensic tail.
            if let Err(e) = self.save_state() {
                self.recorder().counter_add(registry::CHECKPOINT_ERRORS, 1);
                self.recorder().event(Event::Error {
                    counter: registry::CHECKPOINT_ERRORS.to_string(),
                    detail: format!("state checkpoint failed: {e}"),
                });
            }
            if let Err(e) = self.save_cache() {
                self.recorder().counter_add(registry::CHECKPOINT_ERRORS, 1);
                self.recorder().event(Event::Error {
                    counter: registry::CHECKPOINT_ERRORS.to_string(),
                    detail: format!("cache checkpoint failed: {e}"),
                });
            }
        }
    }

    /// Registers a materialized table for SQL reuse.
    pub fn register_table(&self, name: &str, table: Table) {
        self.catalog.lock().register(name, table);
    }

    /// The next free `mat_<n>` table name. Computed under the catalog lock
    /// and skipping existing names, so concurrent queries (or dropped
    /// tables) never silently overwrite an earlier materialization.
    pub fn next_table_name(&self) -> String {
        let catalog = self.catalog.lock();
        let mut n = catalog.len();
        loop {
            let name = format!("mat_{n}");
            if !catalog.contains(&name) {
                return name;
            }
            n += 1;
        }
    }

    /// Names of the materialized tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .lock()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Runs a SQL query over the materialized tables.
    pub fn sql(&self, query: &str) -> Result<Table, SqlError> {
        let span = self.env.recorder.span(
            SpanKind::Sql,
            aida_obs::clip(query, 60),
            self.env.clock.now(),
        );
        let result = aida_sql::execute(query, &self.catalog.lock());
        if self.env.recorder.is_enabled() {
            let rows_out = result.as_ref().map(|t| t.len()).unwrap_or(0);
            span.rows(0, rows_out);
            self.env.recorder.event(Event::Sql {
                statement: aida_obs::clip(query, 200),
                rows_out,
            });
            self.env.recorder.counter_add(registry::SQL_STATEMENTS, 1);
        }
        span.finish(self.env.clock.now());
        result
    }

    /// Runs a general SQL statement (`SELECT`, `CREATE TABLE … AS`,
    /// `DROP TABLE`, `EXPLAIN`) over the materialized tables.
    pub fn sql_statement(&self, sql: &str) -> Result<aida_sql::StatementResult, SqlError> {
        let span =
            self.env
                .recorder
                .span(SpanKind::Sql, aida_obs::clip(sql, 60), self.env.clock.now());
        let result = aida_sql::execute_statement(sql, &mut self.catalog.lock());
        if self.env.recorder.is_enabled() {
            let rows_out = match &result {
                Ok(aida_sql::StatementResult::Rows(t)) => t.len(),
                _ => 0,
            };
            span.rows(0, rows_out);
            self.env.recorder.event(Event::Sql {
                statement: aida_obs::clip(sql, 200),
                rows_out,
            });
            self.env.recorder.counter_add(registry::SQL_STATEMENTS, 1);
        }
        span.finish(self.env.clock.now());
        result
    }

    /// Starts an agentic query pipeline over a context.
    pub fn query(&self, ctx: &crate::Context) -> crate::ops::Query {
        crate::ops::Query::new(self.clone(), ctx.clone())
    }

    /// Snapshot of total LLM usage so far.
    pub fn usage(&self) -> UsageSnapshot {
        self.env.llm.meter().snapshot()
    }

    /// Dollars spent so far.
    pub fn cost(&self) -> f64 {
        self.usage().cost(self.env.llm.catalog())
    }

    /// Virtual seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.env.clock.now()
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Runtime(seed={}, reuse={}, tables={})",
            self.config.seed,
            self.config.enable_context_reuse,
            self.catalog.lock().len()
        )
    }
}

/// The delta-chain sibling of a state snapshot path.
fn delta_path_for(path: &std::path::Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".delta");
    std::path::PathBuf::from(os)
}

/// Encodes one delta frame: the base-snapshot stamp, then each journal
/// record re-escaped so the frame stays a single newline-free,
/// tab-separated WAL payload (records themselves contain real tabs).
fn encode_delta_frame(base_sum: u64, records: &[String]) -> String {
    let mut payload = format!("{base_sum:016x}");
    for record in records {
        payload.push('\t');
        snapshot::esc(record, &mut payload);
    }
    payload
}

/// Decodes a delta frame, returning its journal records — or `None`
/// when the frame is malformed or stamped against a different base
/// snapshot (a stale or cross-generation chain).
fn decode_delta_frame(base_sum: u64, payload: &str) -> Option<Vec<String>> {
    let mut fields = payload.split('\t');
    let stamped = u64::from_str_radix(fields.next()?, 16).ok()?;
    if stamped != base_sum {
        return None;
    }
    let mut records = Vec::new();
    for field in fields {
        records.push(snapshot::unesc(field).ok()?);
    }
    Some(records)
}

/// Builder for [`Runtime`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeBuilder {
    config: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the planning model for agentic operators.
    pub fn agent_model(mut self, model: ModelId) -> Self {
        self.config.agent_model = model;
        self
    }

    /// Sets the optimization policy for synthesized programs.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the optimizer configuration.
    pub fn optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.config.optimizer = optimizer;
        self
    }

    /// Enables/disables materialized-Context reuse.
    pub fn context_reuse(mut self, enable: bool) -> Self {
        self.config.enable_context_reuse = enable;
        self
    }

    /// Sets the reuse similarity threshold.
    pub fn reuse_threshold(mut self, threshold: f32) -> Self {
        self.config.reuse_threshold = threshold;
        self
    }

    /// Injects transient LLM faults at the given per-call rate.
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.config.fault_rate = rate;
        self
    }

    /// Enables span-trace recording (`EXPLAIN ANALYZE` + JSONL export).
    pub fn tracing(mut self, enable: bool) -> Self {
        self.config.tracing = enable;
        self
    }

    /// Bounds the ContextManager's materialized-Context store (0 =
    /// unbounded; see [`crate::ContextManager::with_capacity`]).
    pub fn context_capacity(mut self, capacity: usize) -> Self {
        self.config.context_capacity = capacity;
        self
    }

    /// Enables the semantic call cache with an entry capacity (0
    /// disables). Repeated LLM calls with identical content keys are
    /// served from the store at zero dollars/tokens.
    pub fn semantic_cache(mut self, capacity: usize) -> Self {
        self.config.semantic_cache = capacity;
        self
    }

    /// Byte budget for the semantic cache (0 = unbounded).
    pub fn cache_max_bytes(mut self, max_bytes: usize) -> Self {
        self.config.cache_max_bytes = max_bytes;
        self
    }

    /// Virtual latency charged per semantic-cache hit.
    pub fn cache_hit_latency(mut self, latency_s: f64) -> Self {
        self.config.cache_hit_latency_s = latency_s.max(0.0);
        self
    }

    /// Snapshot path for the semantic cache (loaded best-effort at
    /// build; written by [`Runtime::save_cache`]).
    pub fn cache_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.cache_path = Some(path.into());
        self
    }

    /// Snapshot path for the ContextManager store (loaded best-effort at
    /// build; written by [`Runtime::save_state`] and the ops-interval
    /// checkpoint).
    pub fn state_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.state_path = Some(path.into());
        self
    }

    /// Checkpoints durable state every N agentic operator completions
    /// (0 = explicit saves only).
    pub fn checkpoint_interval(mut self, every_n_ops: u64) -> Self {
        self.config.checkpoint_interval = every_n_ops;
        self
    }

    /// Enables incremental (delta-frame) checkpoints: saves between
    /// full snapshots append only what changed to `<state_path>.delta`.
    pub fn delta_checkpoints(mut self, enable: bool) -> Self {
        self.config.delta_checkpoints = enable;
        self
    }

    /// In delta mode, rewrite a full snapshot after this many delta
    /// frames (bounds recovery replay length).
    pub fn full_snapshot_every(mut self, frames: u64) -> Self {
        self.config.full_snapshot_every = frames;
        self
    }

    /// Sets the flight-recorder dump path: when a crash seam fires, a
    /// recovery path runs, or an SLO alert trips, the recorder's ring of
    /// recent events is written there. Requires `.tracing(true)`.
    pub fn flight_dump(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.flight_path = Some(path.into());
        self
    }

    /// Sets the full configuration at once.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> Runtime {
        let mut llm = SimLlm::new(self.config.seed)
            .with_fault_rate(self.config.fault_rate)
            // Agent planning calls are cache-keyed by the compiled plan's
            // bytecode hash: two textually different programs that lower
            // to the same bytecode share one semantic-cache entry.
            .with_plan_hasher(aida_script::plan_content_hash);
        if self.config.semantic_cache > 0 {
            let cache = aida_llm::SemanticCache::new(aida_llm::cache::CacheConfig {
                capacity: self.config.semantic_cache,
                max_bytes: self.config.cache_max_bytes,
                hit_latency_s: self.config.cache_hit_latency_s,
            });
            if let Some(path) = &self.config.cache_path {
                // Best-effort warm start: a missing or corrupt snapshot
                // (or one from a different seed — keys include the seed)
                // simply starts cold.
                let _ = cache.load(path);
            }
            llm = llm.with_cache(cache);
        }
        let mut env = ExecEnv::new(llm);
        if self.config.tracing {
            let recorder = Recorder::new();
            // Configure the autodump before load_state below: a restore
            // that runs at build time is already a recovery path worth
            // capturing.
            if let Some(path) = &self.config.flight_path {
                recorder.set_flight_autodump(path);
            }
            env = env.with_recorder(recorder);
        }
        let runtime = Runtime {
            env,
            manager: ContextManager::with_capacity(self.config.context_capacity),
            catalog: Arc::new(Mutex::new(Catalog::new())),
            config: self.config,
            ops_done: Arc::new(AtomicU64::new(0)),
            delta: Arc::new(Mutex::new(DeltaState::default())),
        };
        if runtime.config.delta_checkpoints {
            // The journal must observe every mutation from the start,
            // or the first delta frame would silently miss changes.
            runtime.manager.set_journal(true);
        }
        if runtime.config.state_path.is_some() {
            // Best-effort warm start: a missing or corrupt snapshot
            // simply starts with an empty store.
            let _ = runtime.load_state();
        }
        runtime
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::{Schema, Value};

    #[test]
    fn builder_applies_settings() {
        let rt = Runtime::builder()
            .seed(9)
            .agent_model(ModelId::Mini)
            .context_reuse(false)
            .reuse_threshold(0.5)
            .build();
        assert_eq!(rt.config().seed, 9);
        assert_eq!(rt.config().agent_model, ModelId::Mini);
        assert!(!rt.config().enable_context_reuse);
        assert_eq!(rt.config().reuse_threshold, 0.5);
    }

    #[test]
    fn sql_over_registered_tables() {
        let rt = Runtime::builder().build();
        let mut t = Table::new(Schema::of(["year", "thefts"]));
        t.push_row(vec![Value::Int(2024), Value::Int(10)]).unwrap();
        rt.register_table("thefts", t);
        assert_eq!(rt.table_names(), vec!["thefts".to_string()]);
        let out = rt
            .sql("SELECT thefts FROM thefts WHERE year = 2024")
            .unwrap();
        assert_eq!(out.cell(0, "thefts"), Some(&Value::Int(10)));
    }

    #[test]
    fn next_table_name_never_collides() {
        let rt = Runtime::builder().build();
        assert_eq!(rt.next_table_name(), "mat_0");
        rt.register_table("mat_0", Table::new(Schema::empty()));
        // A foreign table shifts the counter; existing names are skipped.
        rt.register_table("mat_2", Table::new(Schema::empty()));
        let next = rt.next_table_name();
        assert_ne!(next, "mat_0");
        assert_ne!(next, "mat_2");
        rt.register_table(&next, Table::new(Schema::empty()));
        assert_eq!(rt.table_names().len(), 3);
    }

    #[test]
    fn cost_and_elapsed_start_at_zero() {
        let rt = Runtime::builder().build();
        assert_eq!(rt.cost(), 0.0);
        assert_eq!(rt.elapsed(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let rt = Runtime::builder().build();
        let rt2 = rt.clone();
        rt.register_table("t", Table::new(Schema::empty()));
        assert_eq!(rt2.table_names().len(), 1);
    }

    #[test]
    fn context_capacity_flows_to_manager() {
        let rt = Runtime::builder().context_capacity(3).build();
        assert_eq!(rt.manager().capacity(), 3);
        assert_eq!(Runtime::builder().build().manager().capacity(), 0);
    }

    #[test]
    fn semantic_cache_flows_to_llm_and_spills() {
        let dir = std::env::temp_dir().join("aida-runtime-cache-test");
        let path = dir.join("sem.cache");
        let rt = Runtime::builder()
            .seed(5)
            .semantic_cache(64)
            .cache_path(path.clone())
            .build();
        assert!(rt.semantic_cache().is_some());
        assert_eq!(rt.cache_stats().unwrap().entries, 0);
        assert!(rt.save_cache().unwrap(), "cache + path configured");
        assert!(path.exists());
        // A rebuilt runtime loads the snapshot without error; default
        // builds keep the cache off entirely.
        let rt2 = Runtime::builder()
            .seed(5)
            .semantic_cache(64)
            .cache_path(path.clone())
            .build();
        assert!(rt2.semantic_cache().is_some());
        let rt3 = Runtime::builder().build();
        assert!(rt3.cache_stats().is_none());
        assert!(!rt3.save_cache().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runtime_is_shareable_across_scoped_threads() {
        // The serving layer hands one Runtime to N workers by reference;
        // this is a compile-time Send+Sync check plus a smoke of shared
        // state across real threads.
        let rt = Runtime::builder().build();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    rt.register_table(&format!("t{i}"), Table::new(Schema::empty()));
                });
            }
        });
        assert_eq!(rt.table_names().len(), 4);
    }
}
