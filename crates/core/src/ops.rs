//! The agentic `search` and `compute` operators.
//!
//! Both are logical operators over a [`Context`], physically implemented
//! with a CodeAgent whose toolbox contains the Context's access methods
//! (iteration via `read_file`/`list_files`, vector search, key lookups,
//! user tools) **plus** [`run_semantic_program`] — the bridge to optimized
//! semantic-operator execution.
//!
//! * `search(instruction)` hunts for information and materializes a new
//!   Context: a narrowed lake plus a description enriched with a summary
//!   of what it found.
//! * `compute(instruction)` produces a concrete answer, also materializing
//!   its findings (records become a SQL table; the Context is registered
//!   with the ContextManager for reuse).
//!
//! [`run_semantic_program`]: crate::program::run_semantic_program_tool

use crate::context::Context;
use crate::program::{self, ProgramRun, ProgramTrace};
use crate::runtime::Runtime;
use aida_agents::policy::{task_years, PolicyAction, PolicyContext};
use aida_agents::{
    tools::lake_tools, AgentConfig, AgentPolicy, AgentRuntime, CodeAgent, FnTool, ToolRegistry,
    ToolSpec,
};
use aida_data::{DataLake, Value};
use aida_llm::noise;
use aida_obs::{clip, Event, SpanKind};
use aida_script::ScriptValue;
use std::sync::Arc;

/// A logical agentic operator.
#[derive(Debug, Clone, PartialEq)]
pub enum AgenticOp {
    /// Find information and enrich the Context.
    Search(String),
    /// Produce a concrete output.
    Compute(String),
}

impl AgenticOp {
    /// The operator's instruction.
    pub fn instruction(&self) -> &str {
        match self {
            AgenticOp::Search(i) | AgenticOp::Compute(i) => i,
        }
    }

    /// Operator name.
    pub fn name(&self) -> &'static str {
        match self {
            AgenticOp::Search(_) => "search",
            AgenticOp::Compute(_) => "compute",
        }
    }
}

/// Trace of one executed agentic operator.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// `search` or `compute`.
    pub op: String,
    /// The instruction.
    pub instruction: String,
    /// Whether a materialized Context satisfied/narrowed the operator.
    pub reused: bool,
    /// Programs the agent ran through `run_semantic_program`.
    pub programs: Vec<ProgramRun>,
    /// Steps the agent took.
    pub agent_steps: usize,
    /// Dollars this operator spent.
    pub cost: f64,
    /// Virtual seconds this operator took.
    pub time: f64,
}

/// The result of running an agentic pipeline.
#[derive(Debug, Clone)]
pub struct ComputeOutcome {
    /// The final compute answer, if any.
    pub answer: Option<Value>,
    /// The final materialized Context.
    pub context: Context,
    /// Total dollars.
    pub cost: f64,
    /// Total virtual seconds.
    pub time: f64,
    /// Per-operator traces.
    pub trace: Vec<OpTrace>,
}

/// A pipeline of agentic operators over a Context.
#[derive(Clone)]
pub struct Query {
    runtime: Runtime,
    ctx: Context,
    ops: Vec<AgenticOp>,
    apply_rewrites: bool,
    dynamic_retry: bool,
}

impl Query {
    pub(crate) fn new(runtime: Runtime, ctx: Context) -> Self {
        Query {
            runtime,
            ctx,
            ops: Vec::new(),
            apply_rewrites: false,
            dynamic_retry: true,
        }
    }

    /// Appends a `search` operator.
    pub fn search(mut self, instruction: impl Into<String>) -> Self {
        self.ops.push(AgenticOp::Search(instruction.into()));
        self
    }

    /// Appends a `compute` operator.
    pub fn compute(mut self, instruction: impl Into<String>) -> Self {
        self.ops.push(AgenticOp::Compute(instruction.into()));
        self
    }

    /// Enables the logical rewrites (split/merge) before execution.
    pub fn with_rewrites(mut self, enable: bool) -> Self {
        self.apply_rewrites = enable;
        self
    }

    /// Enables/disables the insert-search-on-failure retry.
    pub fn with_dynamic_retry(mut self, enable: bool) -> Self {
        self.dynamic_retry = enable;
        self
    }

    /// The pipeline's operators.
    pub fn ops(&self) -> &[AgenticOp] {
        &self.ops
    }

    /// Runs the pipeline.
    pub fn run(self) -> ComputeOutcome {
        // The query span opens before the rewrites so the rewrite judge's
        // LLM calls land inside it (as its own direct events).
        let names: Vec<&str> = self.ops.iter().map(|op| op.name()).collect();
        let span = self.runtime.env().recorder.span(
            SpanKind::Query,
            names.join("+"),
            self.runtime.env().clock.now(),
        );
        let ops = if self.apply_rewrites {
            span.attr("rewrites", "on");
            crate::rewrite::optimize_pipeline(&self.runtime, self.ops.clone())
        } else {
            self.ops.clone()
        };
        let before = self.runtime.env().llm.meter().snapshot();
        let t0 = self.runtime.env().clock.now();

        let mut ctx = self.ctx.clone();
        let mut answer: Option<Value> = None;
        let mut trace: Vec<OpTrace> = Vec::new();
        for (idx, op) in ops.iter().enumerate() {
            let (next_ctx, op_answer, op_trace) = run_op(&self.runtime, &ctx, op, idx as u64);
            ctx = next_ctx;
            if let AgenticOp::Compute(_) = op {
                answer = op_answer;
            }
            trace.push(op_trace);
        }

        // Dynamic adaptation (§3): a compute that produced nothing (no
        // answer, or an explicit null) gets a search inserted in front of
        // it and one retry.
        let failed = answer.as_ref().is_none_or(|v| v.is_null());
        if self.dynamic_retry && failed && !ops.is_empty() {
            if let Some(AgenticOp::Compute(instr)) = ops.last() {
                let (searched_ctx, _, search_trace) = run_op(
                    &self.runtime,
                    &ctx,
                    &AgenticOp::Search(instr.clone()),
                    1_000,
                );
                trace.push(search_trace);
                let (final_ctx, retry_answer, retry_trace) = run_op(
                    &self.runtime,
                    &searched_ctx,
                    &AgenticOp::Compute(instr.clone()),
                    1_001,
                );
                ctx = final_ctx;
                answer = retry_answer;
                trace.push(retry_trace);
            }
        }

        let delta = self
            .runtime
            .env()
            .llm
            .meter()
            .snapshot()
            .delta_since(&before);
        span.finish(self.runtime.env().clock.now());
        ComputeOutcome {
            answer,
            context: ctx,
            cost: delta.cost(self.runtime.env().llm.catalog()),
            time: self.runtime.env().clock.now() - t0,
            trace,
        }
    }
}

fn run_op(
    runtime: &Runtime,
    input_ctx: &Context,
    op: &AgenticOp,
    idx: u64,
) -> (Context, Option<Value>, OpTrace) {
    let instruction = op.instruction().to_string();
    let before = runtime.env().llm.meter().snapshot();
    let t0 = runtime.env().clock.now();
    let recorder = runtime.env().recorder.clone();
    let span = recorder.span(SpanKind::AgenticOp, op.name(), t0);
    span.attr("instruction", clip(&instruction, 80));

    // Materialized-Context reuse (§3 physical optimization): a search hit
    // is a full skip; a compute hit narrows the input Context.
    let mut reused = false;
    let mut ctx = input_ctx.clone();
    if runtime.config().enable_context_reuse {
        let (hit, similarity) = runtime
            .manager()
            .reuse_scored(&instruction, runtime.config().reuse_threshold);
        if recorder.is_enabled() {
            match &hit {
                Some(_) => {
                    recorder.event(Event::ReuseHit {
                        instruction: clip(&instruction, 120),
                        similarity: similarity as f64,
                    });
                    recorder.counter_add(aida_obs::registry::CONTEXT_REUSE_HITS, 1);
                }
                None => {
                    recorder.event(Event::ReuseMiss {
                        instruction: clip(&instruction, 120),
                        best_similarity: similarity as f64,
                    });
                    recorder.counter_add(aida_obs::registry::CONTEXT_REUSE_MISSES, 1);
                }
            }
        }
        if let Some(hit) = hit {
            match op {
                AgenticOp::Search(_) => {
                    let trace = OpTrace {
                        op: op.name().into(),
                        instruction,
                        reused: true,
                        programs: Vec::new(),
                        agent_steps: 0,
                        cost: 0.0,
                        time: runtime.env().clock.now() - t0,
                    };
                    span.attr("reused", "true");
                    span.rows(input_ctx.len(), hit.context.len());
                    span.finish(runtime.env().clock.now());
                    return (hit.context, None, trace);
                }
                AgenticOp::Compute(_) => {
                    // Use the materialized (narrowed) Context as input.
                    if !hit.context.is_empty() && hit.context.len() < ctx.len() {
                        ctx = hit.context.clone();
                        reused = true;
                    }
                }
            }
        }
    }

    // Assemble the toolbox: Context access methods + program synthesis.
    let program_trace = ProgramTrace::new();
    let mut registry = ToolRegistry::new();
    for tool in lake_tools(ctx.lake()) {
        registry.register(tool);
    }
    for tool in context_access_tools(runtime, &ctx) {
        registry.register(tool);
    }
    for spec_tool in ctx.tools().specs() {
        if let Some(tool) = ctx.tools().get(&spec_tool.name) {
            registry.register(Arc::clone(tool));
        }
    }
    registry.register(program::run_semantic_program_tool(
        runtime,
        ctx.lake(),
        &program_trace,
    ));

    let mode = match op {
        AgenticOp::Search(_) => OpMode::Search,
        AgenticOp::Compute(_) => OpMode::Compute,
    };
    let agent = CodeAgent::with_policy(
        AgentConfig {
            model: runtime.config().agent_model,
            max_steps: runtime.config().agent_max_steps,
            persona: aida_agents::Persona {
                // The agentic operators are disciplined: their exhaustive
                // work is delegated to optimized programs.
                shortcut_bias: 0.0,
                premature_stop: 0.0,
                verify_budget: 4,
            },
            seed: noise::combine(&[runtime.config().seed, idx, noise::hash_str(&instruction)]),
            ..AgentConfig::default()
        },
        Box::new(AgenticOpPolicy {
            instruction: instruction.clone(),
            mode,
        }),
    );
    let agent_runtime = AgentRuntime::new(runtime.env(), registry, Some(ctx.lake().clone()));
    let outcome = agent_runtime.run(&agent, &instruction);

    // Materialize: narrowed lake + enriched description + findings table.
    let programs = program_trace.runs();
    let mut records = Vec::new();
    for run in &programs {
        records.extend(run.records.iter().cloned());
    }
    let narrowed = narrowed_lake(ctx.lake(), &records);
    let summary = findings_summary(&instruction, &records);
    let new_id = format!("{}/{}", ctx.id, runtime.manager().len() + 1);
    let findings = if records.is_empty() {
        None
    } else {
        Some(program::findings_table(&records))
    };
    if let Some(table) = &findings {
        runtime.register_table(&runtime.next_table_name(), table.clone());
    }
    let description = if summary.is_empty() {
        ctx.description.clone()
    } else {
        format!("{}\n{summary}", ctx.description)
    };
    let new_ctx = ctx.materialize(new_id, description, narrowed, findings.clone());

    let delta = runtime.env().llm.meter().snapshot().delta_since(&before);
    let cost = delta.cost(runtime.env().llm.catalog());
    runtime
        .manager()
        .register(&instruction, new_ctx.clone(), cost);
    runtime.note_agentic_op();

    if reused {
        span.attr("reused", "true");
    }
    span.rows(input_ctx.len(), new_ctx.len());
    span.finish(runtime.env().clock.now());

    let trace = OpTrace {
        op: op.name().into(),
        instruction,
        reused,
        programs,
        agent_steps: outcome.steps.len(),
        cost,
        time: runtime.env().clock.now() - t0,
    };
    (new_ctx, outcome.answer, trace)
}

fn narrowed_lake(lake: &DataLake, records: &[aida_data::Record]) -> Option<DataLake> {
    if records.is_empty() {
        return None;
    }
    let mut names: Vec<&str> = records.iter().map(|r| r.source.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    let docs: Vec<_> = names
        .iter()
        .filter_map(|name| lake.get(name))
        .map(|d| d.as_ref().clone())
        .collect();
    if docs.is_empty() {
        None
    } else {
        Some(DataLake::from_docs(docs))
    }
}

fn findings_summary(instruction: &str, records: &[aida_data::Record]) -> String {
    if records.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "FINDINGS for \"{instruction}\" ({} records):",
        records.len()
    );
    for rec in records.iter().take(6) {
        let mut line = format!("\n- {}: ", rec.source);
        let fields: Vec<String> = rec
            .iter()
            .filter(|(n, _)| *n != "contents")
            .map(|(n, v)| {
                let rendered: String = v.to_string().chars().take(80).collect();
                format!("{n}={rendered}")
            })
            .collect();
        line.push_str(&fields.join(", "));
        out.push_str(&line);
    }
    if records.len() > 6 {
        out.push_str(&format!("\n- … and {} more", records.len() - 6));
    }
    out
}

/// Access-method tools derived from the Context (vector search + lookups).
fn context_access_tools(runtime: &Runtime, ctx: &Context) -> Vec<Arc<dyn aida_agents::Tool>> {
    let mut tools: Vec<Arc<dyn aida_agents::Tool>> = Vec::new();
    let rt = runtime.clone();
    let vctx = ctx.clone();
    tools.push(Arc::new(FnTool::new(
        ToolSpec::new(
            "vector_search",
            "vector_search(query: str, k: int) -> list[str]",
            "embedding similarity search over the context; returns top-k file names",
        ),
        move |args| {
            let query = args
                .first()
                .ok_or_else(|| aida_script::ScriptError::host("vector_search needs a query"))?
                .as_str()?;
            let k = args
                .get(1)
                .map(|v| v.as_int())
                .transpose()?
                .unwrap_or(5)
                .max(1) as usize;
            Ok(ScriptValue::list(
                vctx.vector_search(&rt, query, k)
                    .into_iter()
                    .map(ScriptValue::str)
                    .collect(),
            ))
        },
    )));
    let kctx = ctx.clone();
    tools.push(Arc::new(FnTool::new(
        ToolSpec::new(
            "lookup",
            "lookup(key: str) -> list[str]",
            "exact key-based point lookup registered on the context",
        ),
        move |args| {
            let key = args
                .first()
                .ok_or_else(|| aida_script::ScriptError::host("lookup needs a key"))?
                .as_str()?;
            Ok(ScriptValue::list(
                kctx.lookup(key)
                    .iter()
                    .map(|n| ScriptValue::str(n.clone()))
                    .collect(),
            ))
        },
    )));
    tools
}

// --------------------------------------------------------------------
// The operators' planning policy
// --------------------------------------------------------------------

enum OpMode {
    Search,
    Compute,
}

struct AgenticOpPolicy {
    instruction: String,
    mode: OpMode,
}

fn sanitize(text: &str) -> String {
    text.replace(['"', '\n'], " ")
}

impl AgentPolicy for AgenticOpPolicy {
    fn next_step(&self, ctx: &PolicyContext<'_>) -> PolicyAction {
        let instr = sanitize(&self.instruction);
        match self.mode {
            OpMode::Search => match ctx.step {
                0 => {
                    let explore = if ctx.has_tool("vector_search") {
                        format!("cands = vector_search(\"{instr}\", 8)\nprint(cands)")
                    } else {
                        format!("cands = search_keywords(\"{instr}\", 8)\nprint(cands)")
                    };
                    PolicyAction::Code(explore)
                }
                1 => {
                    PolicyAction::Code(format!("rs = run_semantic_program(\"{instr}\")\nprint(rs)"))
                }
                2 => PolicyAction::Code("final_answer(len(rs))".to_string()),
                _ => PolicyAction::Done,
            },
            OpMode::Compute => self.compute_step(ctx, &instr),
        }
    }
}

impl AgenticOpPolicy {
    fn compute_step(&self, ctx: &PolicyContext<'_>, instr: &str) -> PolicyAction {
        let lower = instr.to_ascii_lowercase();
        let years = task_years(instr);
        if lower.contains("ratio") && years.len() >= 2 {
            let (hi, lo) = {
                let mut ys = years.clone();
                ys.sort_unstable();
                (ys[ys.len() - 1], ys[0])
            };
            let phrase = crate::program::number_of_phrase(instr)
                .unwrap_or_else(|| "relevant reports".to_string());
            return match ctx.step {
                0 => PolicyAction::Code(format!(
                    "r_hi = run_semantic_program(\"find the number of {phrase} in {hi}\")\nprint(r_hi)"
                )),
                1 => PolicyAction::Code(format!(
                    "r_lo = run_semantic_program(\"find the number of {phrase} in {lo}\")\nprint(r_lo)"
                )),
                2 => PolicyAction::Code(
                    r#"def pick(rs):
    for r in rs:
        v = r.get('value')
        if v != None:
            return float(v)
    return 0.0
a = pick(r_hi)
b = pick(r_lo)
if b != 0:
    final_answer(a / b)
"#
                    .to_string(),
                ),
                _ => PolicyAction::Done,
            };
        }
        if lower.contains("filter") || lower.contains("email") {
            return match ctx.step {
                0 => PolicyAction::Code(format!(
                    "rs = run_semantic_program(\"{instr}\")\nnames = []\nfor r in rs:\n    names.append(r[\"source\"])\nprint(names)"
                )),
                1 => PolicyAction::Code("final_answer(names)".to_string()),
                _ => PolicyAction::Done,
            };
        }
        match ctx.step {
            0 => PolicyAction::Code(format!("rs = run_semantic_program(\"{instr}\")\nprint(rs)")),
            1 => PolicyAction::Code(
                // Prefer a concrete extracted value; fall back to the
                // matching sources, then to the raw records.
                r#"if len(rs) > 0:
    v = rs[0].get('value')
    if v != None and len(str(v)) > 0:
        final_answer(v)
    else:
        names = []
        for r in rs:
            names.append(r['source'])
        final_answer(names)
else:
    final_answer(None)
"#
                .to_string(),
            ),
            _ => PolicyAction::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_synth::{enron, legal};

    fn legal_runtime(seed: u64) -> (Runtime, Context) {
        let rt = Runtime::builder().seed(seed).build();
        let w = legal::generate(seed);
        w.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", w.lake.clone())
            .description(w.description.clone())
            .with_vector_index()
            .build(&rt);
        (rt, ctx)
    }

    #[test]
    fn compute_answers_the_legal_ratio_query() {
        let (rt, ctx) = legal_runtime(11);
        let outcome = rt.query(&ctx).compute(legal::QUERY).run();
        let answer = outcome.answer.expect("compute should produce an answer");
        let ratio = answer.as_float().unwrap();
        let truth = legal::true_ratio();
        let err = (ratio - truth).abs() / truth;
        assert!(err < 0.05, "ratio {ratio} vs truth {truth} (err {err})");
        assert!(outcome.cost > 0.0);
        assert!(outcome.time > 0.0);
        // Two synthesized programs: one per year.
        assert!(outcome.trace[0].programs.len() >= 2);
    }

    #[test]
    fn search_then_compute_narrows_the_context() {
        let (rt, ctx) = legal_runtime(13);
        let outcome = rt
            .query(&ctx)
            .search("look for information on identity theft reports")
            .compute(legal::QUERY)
            .run();
        assert!(outcome.answer.is_some());
        // The search's materialized context is much smaller than the lake.
        let search_trace = &outcome.trace[0];
        assert_eq!(search_trace.op, "search");
        assert!(!search_trace.programs.is_empty());
        assert!(outcome.context.description.contains("FINDINGS"));
        assert!(outcome.context.len() < 132);
    }

    #[test]
    fn compute_answers_the_enron_filter_query() {
        let rt = Runtime::builder().seed(1).build();
        let w = enron::generate(1);
        w.install_oracle(&rt.env().llm);
        let ctx = Context::builder("enron", w.lake.clone())
            .description(w.description.clone())
            .build(&rt);
        let outcome = rt.query(&ctx).compute(&w.query).run();
        let answer = outcome.answer.expect("filter compute answers");
        let names: Vec<String> = answer
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        let truth: std::collections::HashSet<&str> = w
            .truth
            .as_doc_set()
            .unwrap()
            .iter()
            .map(String::as_str)
            .collect();
        let hits = names.iter().filter(|n| truth.contains(n.as_str())).count();
        let recall = hits as f64 / truth.len() as f64;
        let precision = if names.is_empty() {
            0.0
        } else {
            hits as f64 / names.len() as f64
        };
        assert!(recall > 0.9, "recall {recall}");
        assert!(precision > 0.9, "precision {precision}");
    }

    #[test]
    fn context_reuse_makes_second_query_cheaper() {
        let (rt, ctx) = legal_runtime(17);
        let first = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2001")
            .run();
        let cost_before = rt.cost();
        let second = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2024")
            .run();
        let second_cost = rt.cost() - cost_before;
        assert!(second.answer.is_some());
        assert!(
            second_cost < first.cost,
            "reuse should cut cost: first ${:.4}, second ${second_cost:.4}",
            first.cost
        );
        assert!(
            second.trace.iter().any(|t| t.reused),
            "compute should reuse"
        );
    }

    #[test]
    fn findings_become_sql_tables() {
        let (rt, ctx) = legal_runtime(19);
        let _ = rt.query(&ctx).compute(legal::QUERY).run();
        let tables = rt.table_names();
        assert!(!tables.is_empty(), "compute materializes tables");
        let out = rt
            .sql(&format!("SELECT COUNT(*) AS n FROM {}", tables[0]))
            .unwrap();
        assert!(out.cell(0, "n").unwrap().as_int().unwrap() >= 1);
    }

    #[test]
    fn failing_compute_triggers_search_retry() {
        // A small lake that cannot answer the question, judged with the
        // flagship everywhere so noise FPs don't sneak an answer through:
        // the programs return nothing, the divide guard withholds the
        // answer, and the runtime inserts a search + retry (§3 dynamic
        // adaptation).
        let rt = Runtime::builder()
            .seed(23)
            .policy(aida_optimizer::Policy::MaxQuality { cost_budget: None })
            .build();
        let lake = aida_data::DataLake::from_docs((0..5).map(|i| {
            aida_data::Document::new(format!("memo{i}.txt"), "cafeteria menu for the week")
                .with_label("difficulty", 0.0)
        }));
        let ctx = Context::builder("memos", lake).build(&rt);
        let query = "What is the ratio between the number of unicorn sightings in 2024 and \
                     the number of unicorn sightings in 2001?";
        let outcome = rt.query(&ctx).compute(query).run();
        let ops: Vec<&str> = outcome.trace.iter().map(|t| t.op.as_str()).collect();
        assert!(
            ops.windows(2).any(|w| w == ["search", "compute"]),
            "retry inserts a search before the compute: {ops:?}"
        );
        // Retry can be disabled.
        let outcome = rt
            .query(&ctx)
            .compute(query)
            .with_dynamic_retry(false)
            .run();
        assert_eq!(outcome.trace.len(), 1);
    }

    #[test]
    fn reuse_can_be_disabled() {
        let rt = Runtime::builder().seed(17).context_reuse(false).build();
        let w = legal::generate(17);
        w.install_oracle(&rt.env().llm);
        let ctx = Context::builder("legal", w.lake.clone())
            .description(w.description.clone())
            .build(&rt);
        let _ = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2001")
            .run();
        let second = rt
            .query(&ctx)
            .compute("find the number of identity theft reports in 2024")
            .run();
        assert!(second.trace.iter().all(|t| !t.reused));
    }
}
