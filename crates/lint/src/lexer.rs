//! A small Rust tokenizer for static analysis.
//!
//! Precedent: the hand-rolled lexers in `crates/sql` and `crates/script`.
//! This one is span-preserving and total: it never fails and never
//! panics, no matter how malformed the input (a proptest in
//! `tests/lexer_props.rs` holds it to that). Unterminated strings and
//! block comments extend to end of input; any byte the lexer does not
//! recognize becomes a one-character [`TokKind::Punct`] token, so every
//! non-whitespace byte of the source is covered by exactly one token and
//! the gaps between consecutive tokens are pure whitespace.
//!
//! The rules only need identifiers, punctuation, and enough literal/
//! comment awareness to never mistake `"Instant"` inside a string (or a
//! `//` comment) for code.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (int or float, any base, with suffix).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `// …` line comment (including doc comments).
    LineComment,
    /// `/* … */` block comment (nested; including doc comments).
    BlockComment,
    /// Any other non-whitespace character(s): `::`, `{`, `->`, ….
    Punct,
}

/// One token with its byte span and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == name
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, src: &str, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text(src) == p
    }
}

/// Tokenizes Rust-ish source. Total: consumes every byte, never fails.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' if self.raw_string_ahead(0) => self.raw_string(),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.string()
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump();
                    self.char_lit()
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string()
                }
                b'\'' => self.lifetime_or_char(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => self.punct(),
            };
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        // Advance a full UTF-8 scalar so spans stay on char boundaries.
        self.pos += 1;
        while self.pos < self.bytes.len() && !self.src.is_char_boundary(self.pos) {
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.bump();
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        // Consume `/*`, then nest until balanced or end of input.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    fn string(&mut self) -> TokKind {
        // Consume the opening quote, then escaped content to the close
        // (or end of input for an unterminated literal).
        self.bump();
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Str
    }

    /// Whether `r#*"` starts at `pos + ahead` (a raw string opener).
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = self.pos + ahead;
        if self.bytes.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn raw_string(&mut self) -> TokKind {
        // `r`, hashes, quote — then content until `"` followed by the
        // same number of hashes.
        self.bump();
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some(b'"') {
            self.bump();
        }
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut i = self.pos + 1;
                let mut n = 0usize;
                while n < hashes && self.bytes.get(i) == Some(&b'#') {
                    i += 1;
                    n += 1;
                }
                if n == hashes {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        TokKind::Str
    }

    fn lifetime_or_char(&mut self) -> TokKind {
        // `'a` (no closing quote) is a lifetime; `'a'`, `'\n'`, `'·'`
        // are char literals. `'_` and keywords like `'static` are
        // lifetimes too.
        let after = self.pos + 1;
        if self
            .bytes
            .get(after)
            .is_some_and(|&b| is_ident_start(b) || b == b'_')
        {
            let mut i = after + 1;
            while self.bytes.get(i).is_some_and(|&b| is_ident_continue(b)) {
                i += 1;
            }
            if self.bytes.get(i) != Some(&b'\'') {
                // Lifetime: consume quote + identifier.
                self.bump();
                while self.pos < i {
                    self.bump();
                }
                return TokKind::Lifetime;
            }
        }
        self.char_lit()
    }

    fn char_lit(&mut self) -> TokKind {
        // Consume the opening quote, then escaped content to the close.
        // A stray `'` with no closing quote eats at most a few bytes
        // before giving up at a newline, keeping the lexer total.
        self.bump();
        let mut consumed = 0usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                    consumed += 2;
                }
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break,
                _ => {
                    self.bump();
                    consumed += 1;
                }
            }
            if consumed > 12 {
                break;
            }
        }
        TokKind::Char
    }

    fn number(&mut self) -> TokKind {
        // Greedy and forgiving: digits, `_`, base prefixes, a fractional
        // part, exponents, and type suffixes. `1..2` keeps the range dots.
        self.bump();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // `1e-9` / `1E+9`: the sign belongs to the exponent.
                let is_exp = (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-') | Some(b'0'..=b'9'));
                self.bump();
                if is_exp && matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
            } else if b == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && !matches!(self.out.last(), Some(t) if t.kind == TokKind::Punct)
            {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Number
    }

    fn ident(&mut self) -> TokKind {
        self.bump();
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| is_ident_continue(b))
        {
            self.bump();
        }
        TokKind::Ident
    }

    fn punct(&mut self) -> TokKind {
        // Two-character operators the rules care about stay joined so a
        // path like `std::time` lexes as [std][::][time]; everything else
        // is one character per token.
        let two: Option<&[u8]> = self.bytes.get(self.pos..self.pos + 2);
        match two {
            Some(b"::") | Some(b"->") | Some(b"=>") | Some(b"..") => {
                self.bump();
                self.bump();
            }
            _ => self.bump(),
        }
        TokKind::Punct
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn paths_and_idents() {
        let toks = kinds("use std::time::Instant;");
        assert_eq!(toks[0], (TokKind::Ident, "use".into()));
        assert_eq!(toks[1], (TokKind::Ident, "std".into()));
        assert_eq!(toks[2], (TokKind::Punct, "::".into()));
        assert_eq!(toks[3], (TokKind::Ident, "time".into()));
        assert_eq!(toks[5], (TokKind::Ident, "Instant".into()));
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = "let x = \"Instant\"; // Instant\n/* Instant */ y";
        let idents: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r####"r#"a "quoted" b"# + r"plain""####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::Str);
        assert!(toks[0].1.starts_with("r#\""));
        assert_eq!(toks.last().unwrap().0, TokKind::Str);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks = lex(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ x";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        let toks = kinds("0xcbf2_9ce4 1.5e-9 42u64 1..3");
        assert_eq!(toks[0].0, TokKind::Number);
        assert_eq!(toks[1], (TokKind::Number, "1.5e-9".into()));
        assert_eq!(toks[2], (TokKind::Number, "42u64".into()));
        assert_eq!(toks[3], (TokKind::Number, "1".into()));
        assert_eq!(toks[4], (TokKind::Punct, "..".into()));
        assert_eq!(toks[5], (TokKind::Number, "3".into()));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nb\n  c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn every_nonspace_byte_is_covered() {
        let src = "fn main() { let 🦀 = \"s\"; }";
        let toks = lex(src);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(t.start >= prev_end);
            assert!(src[prev_end..t.start].chars().all(char::is_whitespace));
            prev_end = t.end;
        }
        assert!(src[prev_end..].chars().all(char::is_whitespace));
    }
}
