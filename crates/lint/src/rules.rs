//! The rule families.
//!
//! All rules operate on the token stream from [`crate::lexer`] — no type
//! information, no macro expansion. Each rule is therefore a heuristic
//! that over-approximates; false positives are expected to be rare and
//! are silenced through the `[[allow]]` baseline in `lint.toml` with a
//! written justification (see `docs/lint.md`).
//!
//! | rule | invariant guarded                                          |
//! |------|------------------------------------------------------------|
//! | D1   | virtual clock only: no wall-clock reads outside clock.rs   |
//! | D2   | seeded randomness only: no entropy-seeded RNG              |
//! | D3   | serializer modules never iterate unordered maps unsorted   |
//! | F1   | durability paths pair create/rename with fsync + dir fsync |
//! | P1   | recovery paths return typed errors, never panic            |
//! | L1   | the static lock-acquisition graph is acyclic               |
//! | O1   | metric names come from the registry, never string literals |
//! | S1   | functions stay within the size/complexity budget           |

use crate::lexer::{lex, Tok, TokKind};
use crate::Config;

/// How bad a finding is. `Error` outranks `Warning` in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Heuristic or advisory: worth a look, may be a false positive.
    Warning,
    /// Violates an invariant the replay/durability guarantees rest on.
    Error,
}

impl Severity {
    /// Lower-case name used in reports and JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A machine-applicable fix: splice `replacement` over the half-open
/// byte span `[start, end)` of the file. `start == end` is a pure
/// insertion. Spans come from lexer token offsets, so they always fall
/// on character boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuggestedFix {
    /// Byte offset of the first replaced byte.
    pub start: usize,
    /// Byte offset one past the last replaced byte.
    pub end: usize,
    /// Replacement text.
    pub replacement: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family id (`"D1"`, …, `"L1"`).
    pub rule: &'static str,
    /// Severity rank.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of what fired and why it matters.
    pub message: String,
    /// The trimmed source line, for context and baseline matching.
    pub snippet: String,
    /// Machine-applicable replacement, when the rule can compute one
    /// (D2 reseeding, F1 fsync insertion, P1 `?` propagation).
    pub fix: Option<SuggestedFix>,
}

impl Finding {
    /// Sort key: severity first (errors lead), then location, so the
    /// report is severity-ranked and byte-stable across runs.
    pub fn sort_key(&self) -> (u8, String, usize, &'static str, String) {
        let sev = match self.severity {
            Severity::Error => 0,
            Severity::Warning => 1,
        };
        (
            sev,
            self.file.clone(),
            self.line,
            self.rule,
            self.message.clone(),
        )
    }
}

/// A parsed file ready for rule passes.
pub struct FileView<'a> {
    /// Workspace-relative forward-slash path.
    pub rel: &'a str,
    /// Raw source.
    pub src: &'a str,
    /// Code tokens only (comments stripped).
    toks: Vec<Tok>,
    /// `in_test[i]` ⇔ `toks[i]` sits under `#[cfg(test)]` / `#[test]`.
    in_test: Vec<bool>,
    /// Half-open token ranges of non-test `fn` bodies, with names.
    fns: Vec<FnSpan>,
}

struct FnSpan {
    name: String,
    line: usize,
    /// Token index range covering the whole item (from `fn` to `}`).
    range: (usize, usize),
}

impl<'a> FileView<'a> {
    /// Lexes and segments `src`.
    pub fn new(rel: &'a str, src: &'a str) -> FileView<'a> {
        let toks: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let in_test = mark_test_regions(src, &toks);
        let fns = segment_fns(src, &toks, &in_test);
        FileView {
            rel,
            src,
            toks,
            in_test,
            fns,
        }
    }

    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == name)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text(self.src) == p)
    }

    /// The trimmed source line containing token `i`.
    fn snippet(&self, i: usize) -> String {
        line_snippet(self.src, self.toks[i].line)
    }

    fn finding(
        &self,
        rule: &'static str,
        severity: Severity,
        i: usize,
        message: String,
    ) -> Finding {
        Finding {
            rule,
            severity,
            file: self.rel.to_string(),
            line: self.toks[i].line,
            message,
            snippet: self.snippet(i),
            fix: None,
        }
    }

    /// Byte offset one past the `)` closing the call whose `(` directly
    /// follows token `i`, or `None` when no call follows.
    fn call_end(&self, i: usize) -> Option<usize> {
        if !self.is_punct(i + 1, "(") {
            return None;
        }
        let mut depth = 0i64;
        for j in (i + 1)..self.toks.len() {
            match self.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(self.toks[j].end);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Token index of the `)` closing the call whose `(` sits at `open`.
    fn close_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for j in open..self.toks.len() {
            match self.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// The leading whitespace of the line containing token `i`.
    fn indent_of(&self, i: usize) -> String {
        let line = self.toks[i].line;
        let text = self.src.lines().nth(line.saturating_sub(1)).unwrap_or("");
        text.chars().take_while(|c| c.is_whitespace()).collect()
    }
}

/// The trimmed content of 1-based `line` in `src`.
pub fn line_snippet(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Marks tokens under `#[cfg(test)]` items and `#[test]` functions.
///
/// Only the exact attribute `#[cfg(test)]` counts — `#[cfg(not(test))]`
/// guards production code and must stay visible to the rules.
fn mark_test_regions(src: &str, toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct
            && toks[i].text(src) == "#"
            && toks.get(i + 1).is_some_and(|t| t.text(src) == "[")
        {
            let close = match_square(src, toks, i + 1);
            let attr = &toks[i + 2..close.min(toks.len())];
            if is_test_attr(src, attr) {
                let end = item_end(src, toks, close + 1);
                for flag in in_test.iter_mut().take(end.min(toks.len())).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Whether the attribute token slice is exactly `test` or `cfg ( test )`.
fn is_test_attr(src: &str, attr: &[Tok]) -> bool {
    let texts: Vec<&str> = attr.iter().map(|t| t.text(src)).collect();
    texts == ["test"] || texts == ["cfg", "(", "test", ")"]
}

/// Index of the `]` matching the `[` at `open`, or `toks.len()`.
fn match_square(src: &str, toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// One past the end of the item starting at `start` (skipping any
/// further attributes): the matching `}` of its first top-level brace,
/// or the first top-level `;` for brace-less items like `use`.
fn item_end(src: &str, toks: &[Tok], mut start: usize) -> usize {
    // Skip stacked attributes between the test attr and the item.
    while start < toks.len()
        && toks[start].text(src) == "#"
        && toks.get(start + 1).is_some_and(|t| t.text(src) == "[")
    {
        start = match_square(src, toks, start + 1) + 1;
    }
    let (mut paren, mut square, mut brace) = (0i64, 0i64, 0i64);
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text(src) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => square += 1,
            "]" => square -= 1,
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace == 0 {
                    return j + 1;
                }
            }
            ";" if paren == 0 && square == 0 && brace == 0 => return j + 1,
            _ => {}
        }
    }
    toks.len()
}

/// Extracts non-test `fn` items: name, line, and token range.
fn segment_fns(src: &str, toks: &[Tok], in_test: &[bool]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_fn = toks[i].kind == TokKind::Ident && toks[i].text(src) == "fn" && !in_test[i];
        // `fn` must introduce a named item, not an `fn(..)` pointer type.
        let named = is_fn && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !named {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text(src).to_string();
        let line = toks[i].line;
        let end = item_end(src, toks, i);
        fns.push(FnSpan {
            name,
            line,
            range: (i, end),
        });
        // Nested fns inside this body are folded into the outer span,
        // which is what the pairing rules (F1/P1) want anyway.
        i = end;
    }
    fns
}

/// Runs all single-file rules over one file.
pub fn scan_file(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let view = FileView::new(rel, src);
    let mut out = Vec::new();
    rule_d1_wall_clock(&view, cfg, &mut out);
    rule_d2_unseeded_rng(&view, &mut out);
    if path_in(rel, &cfg.serializer_modules) {
        rule_d3_unsorted_iteration(&view, &mut out);
    }
    if path_in(rel, &cfg.durability_files) {
        rule_f1_fsync_pairing(&view, &mut out);
    }
    if path_in(rel, &cfg.recovery_files) {
        rule_p1_panic_free_recovery(&view, cfg, &mut out);
    }
    rule_o1_metric_registry(&view, cfg, &mut out);
    rule_s1_fn_budget(&view, cfg, &mut out);
    out
}

/// Whether `rel` matches any entry (exact or suffix) in `paths`.
fn path_in(rel: &str, paths: &[String]) -> bool {
    paths.iter().any(|p| rel == p || rel.ends_with(p.as_str()))
}

// ---------------------------------------------------------------- D1

/// D1: wall-clock reads (`Instant`, `SystemTime`, `std::time`) are only
/// legal inside the virtual-clock module. `std::time::Duration` is an
/// inert value type and stays allowed everywhere.
fn rule_d1_wall_clock(view: &FileView, cfg: &Config, out: &mut Vec<Finding>) {
    if path_in(view.rel, std::slice::from_ref(&cfg.clock_file)) {
        return;
    }
    for i in 0..view.toks.len() {
        if view.in_test[i] || view.toks[i].kind != TokKind::Ident {
            continue;
        }
        match view.text(i) {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => {
                let what = view.text(i).to_string();
                out.push(view.finding(
                    "D1",
                    Severity::Error,
                    i,
                    format!(
                        "wall-clock type `{what}` outside {}; use the SimClock timeline",
                        cfg.clock_file
                    ),
                ));
            }
            "std"
                if view.is_punct(i + 1, "::")
                    && view.is_ident(i + 2, "time")
                    // `std::time::Duration` alone is deterministic.
                    && !(view.is_punct(i + 3, "::") && view.is_ident(i + 4, "Duration")) =>
            {
                out.push(view.finding(
                    "D1",
                    Severity::Error,
                    i,
                    format!(
                        "`std::time` outside {}; only `std::time::Duration` is exempt",
                        cfg.clock_file
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- D2

/// D2: RNG seeded from the environment breaks seeded replay.
fn rule_d2_unseeded_rng(view: &FileView, out: &mut Vec<Finding>) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "ThreadRng",
        "getrandom",
        "random_seed",
    ];
    for i in 0..view.toks.len() {
        if view.in_test[i] || view.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = view.text(i);
        let hit = ENTROPY.contains(&t)
            || (t == "rand" && view.is_punct(i + 1, "::") && view.is_ident(i + 2, "random"));
        if hit {
            let mut f = view.finding(
                "D2",
                Severity::Error,
                i,
                format!("`{t}` draws entropy from the environment; seed RNGs explicitly"),
            );
            f.fix = d2_fix(view, i);
            out.push(f);
        }
    }
}

/// The D2 autofix: rewrite the entropy draw into an explicitly seeded
/// constructor. The seed `0` is a placeholder the author threads a real
/// configuration seed through; what matters is that the source of
/// randomness is no longer the environment.
fn d2_fix(view: &FileView, i: usize) -> Option<SuggestedFix> {
    let tok = |j: usize| &view.toks[j];
    match view.text(i) {
        "thread_rng" => {
            // `rand::thread_rng()` / `thread_rng()` → seeded StdRng.
            let start = if i >= 2 && view.is_punct(i - 1, "::") && view.is_ident(i - 2, "rand") {
                tok(i - 2).start
            } else {
                tok(i).start
            };
            Some(SuggestedFix {
                start,
                end: view.call_end(i).unwrap_or(tok(i).end),
                replacement: "StdRng::seed_from_u64(0)".to_string(),
            })
        }
        // `Rng::from_entropy()` → `Rng::seed_from_u64(0)`.
        "from_entropy" => Some(SuggestedFix {
            start: tok(i).start,
            end: view.call_end(i).unwrap_or(tok(i).end),
            replacement: "seed_from_u64(0)".to_string(),
        }),
        // Bare entropy RNG values/types.
        "OsRng" | "ThreadRng" => Some(SuggestedFix {
            start: tok(i).start,
            end: tok(i).end,
            replacement: "StdRng::seed_from_u64(0)".to_string(),
        }),
        // `rand::random()` → draw from a seeded generator instead.
        "rand" if view.is_ident(i + 2, "random") => Some(SuggestedFix {
            start: tok(i).start,
            end: view.call_end(i + 2).unwrap_or(tok(i + 2).end),
            replacement: "StdRng::seed_from_u64(0).gen()".to_string(),
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------- D3

/// D3: in modules that serialize output, iterating a `HashMap`/`HashSet`
/// without sorting leaks nondeterministic order into reports/JSONL.
///
/// Heuristic: a name is map-typed if the file declares it with a
/// `HashMap`/`HashSet` annotation or constructor; iterating such a name
/// fires unless the same statement mentions a sorting construct.
fn rule_d3_unsorted_iteration(view: &FileView, out: &mut Vec<Finding>) {
    const ITERS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
        "retain",
    ];
    const SORTED: &[&str] = &[
        "sort",
        "sort_by",
        "sort_by_key",
        "sort_unstable",
        "sort_unstable_by",
        "sort_unstable_by_key",
        "sorted",
        "BTreeMap",
        "BTreeSet",
        "BinaryHeap",
    ];
    // Pass 1: names declared with an unordered map/set type.
    let mut map_names: Vec<String> = Vec::new();
    for i in 0..view.toks.len() {
        if view.toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name: HashMap<..>` (field, param, let) or `name = HashMap::..`.
        let anno = view.is_punct(i + 1, ":")
            && (view.is_ident(i + 2, "HashMap") || view.is_ident(i + 2, "HashSet"));
        let ctor = view.is_punct(i + 1, "=")
            && (view.is_ident(i + 2, "HashMap") || view.is_ident(i + 2, "HashSet"));
        if anno || ctor {
            map_names.push(view.text(i).to_string());
        }
    }
    // Pass 2: iteration over a map-typed name.
    for i in 0..view.toks.len() {
        if view.in_test[i] || view.toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = view.text(i);
        if !map_names.iter().any(|n| n == name) {
            continue;
        }
        let iterated = view.is_punct(i + 1, ".")
            && view
                .toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && ITERS.contains(&t.text(view.src)))
            && view.is_punct(i + 3, "(");
        if !iterated {
            continue;
        }
        // "unless sorted first": scan the enclosing statement for a
        // sorting construct.
        let stmt = statement_range(view, i);
        let sorted = (stmt.0..stmt.1)
            .any(|j| view.toks[j].kind == TokKind::Ident && SORTED.contains(&view.text(j)));
        if !sorted {
            let method = view.text(i + 2).to_string();
            out.push(view.finding(
                "D3",
                Severity::Error,
                i,
                format!(
                    "`{name}.{method}()` iterates an unordered map in a serializer module \
                     without sorting; order leaks into the output"
                ),
            ));
        }
    }
}

/// Token range of the statement containing token `i`: from the previous
/// top-level `;`/`{`/`}` to the next `;` (or `{`, for `for`-loop heads
/// the sort may appear in the chain before the body opens). When the
/// statement `collect`s the iterator, the window extends one more
/// statement to cover the collect-into-vec-then-`sort()` idiom.
fn statement_range(view: &FileView, i: usize) -> (usize, usize) {
    let mut start = i;
    while start > 0 {
        let t = view.text(start - 1);
        if matches!(t, ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let next_stop = |mut j: usize| -> usize {
        let mut paren = 0i64;
        while j < view.toks.len() {
            match view.text(j) {
                "(" => paren += 1,
                ")" => paren -= 1,
                ";" if paren <= 0 => break,
                "{" if paren <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        j
    };
    let mut end = next_stop(i);
    let collected = (start..end).any(|j| view.is_ident(j, "collect"));
    if collected && end < view.toks.len() && view.text(end) == ";" {
        end = next_stop(end + 1);
    }
    (start, end)
}

// ---------------------------------------------------------------- F1

/// F1: in durability files, any function that creates or renames a file
/// must also fsync the file (`sync_all`) and its parent directory in the
/// same function, or the write can vanish in a power cut. In-place
/// write sites (`OpenOptions` appends to a WAL tail or delta chain,
/// durable truncations) need `sync_all` too, though not the directory
/// fsync — the name itself is not changing.
fn rule_f1_fsync_pairing(view: &FileView, out: &mut Vec<Finding>) {
    const DIR_SYNC: &[&str] = &["sync_parent_dir", "sync_dir", "fsync_parent", "fsync_dir"];
    for f in &view.fns {
        let (lo, hi) = f.range;
        let mut writes: Vec<usize> = Vec::new();
        let mut in_place: Vec<usize> = Vec::new();
        let mut has_sync_all = false;
        let mut has_dir_sync = false;
        for j in lo..hi.min(view.toks.len()) {
            if view.in_test[j] || view.toks[j].kind != TokKind::Ident {
                continue;
            }
            match view.text(j) {
                "File"
                    if view.is_punct(j + 1, "::")
                        && view.is_ident(j + 2, "create")
                        && view.is_punct(j + 3, "(") =>
                {
                    writes.push(j);
                }
                "fs" if view.is_punct(j + 1, "::") && view.is_ident(j + 2, "rename") => {
                    writes.push(j);
                }
                "OpenOptions" => in_place.push(j),
                "sync_all" => has_sync_all = true,
                t if DIR_SYNC.contains(&t) => has_dir_sync = true,
                _ => {}
            }
        }
        if writes.is_empty() && in_place.is_empty() {
            continue;
        }
        if !has_sync_all {
            let (first, how) = match writes.first() {
                Some(&j) => (j, "creates/renames a file"),
                None => (in_place[0], "opens a file for in-place writes"),
            };
            let mut finding = view.finding(
                "F1",
                Severity::Error,
                first,
                format!(
                    "fn `{}` {how} but never calls sync_all; \
                     the write is not durable across a crash",
                    f.name
                ),
            );
            finding.fix = f1_sync_all_fix(view, f, first);
            out.push(finding);
        }
        if !writes.is_empty() && !has_dir_sync {
            let mut finding = view.finding(
                "F1",
                Severity::Error,
                writes[0],
                format!(
                    "fn `{}` creates/renames a file but never fsyncs the parent \
                     directory; the rename itself can be lost",
                    f.name
                ),
            );
            finding.fix = f1_dir_sync_fix(view, f, &writes);
            out.push(finding);
        }
    }
}

/// The F1 missing-`sync_all` autofix: chain an fsync after the *last*
/// buffered write in the function (so it covers everything written),
/// falling back to the flagged open/create site when no write follows.
fn f1_sync_all_fix(view: &FileView, f: &FnSpan, anchor: usize) -> Option<SuggestedFix> {
    let hi = f.range.1.min(view.toks.len());
    let mut site = anchor;
    for j in f.range.0..hi {
        if view.toks[j].kind == TokKind::Ident
            && matches!(view.text(j), "write_all" | "write" | "flush")
            && view.is_punct(j + 1, "(")
        {
            site = j;
        }
    }
    let receiver = write_receiver(view, site, anchor)?;
    insert_after_statement(view, site, hi, &format!("{receiver}.sync_all()"))
}

/// The F1 missing-directory-fsync autofix: fsync the parent of the
/// published name right after the rename (or create, when nothing is
/// renamed), using the workspace's `sync_parent_dir` helper.
fn f1_dir_sync_fix(view: &FileView, f: &FnSpan, writes: &[usize]) -> Option<SuggestedFix> {
    // Prefer the last rename — that is the durability point the parent
    // directory must persist.
    let site = *writes
        .iter()
        .rev()
        .find(|&&j| view.text(j) == "fs")
        .or_else(|| writes.last())?;
    let open = site + 3;
    if !view.is_punct(open, "(") {
        return None;
    }
    let close = view.close_paren(open)?;
    // The destination path is the call's last top-level argument.
    let mut arg_start = open + 1;
    let mut depth = 0i64;
    for j in (open + 1)..close {
        match view.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "," if depth == 0 => arg_start = j + 1,
            _ => {}
        }
    }
    if arg_start >= close {
        return None;
    }
    let arg = view.src[view.toks[arg_start].start..view.toks[close].start].trim();
    insert_after_statement(
        view,
        site,
        f.range.1.min(view.toks.len()),
        &format!("sync_parent_dir({arg})"),
    )
}

/// The receiver of the buffered write at `site` (`file.flush()` →
/// `file`), else the `let` binding the flagged statement at `anchor`
/// assigns into.
fn write_receiver(view: &FileView, site: usize, anchor: usize) -> Option<String> {
    if site >= 2 && view.is_punct(site - 1, ".") && view.toks[site - 2].kind == TokKind::Ident {
        return Some(view.text(site - 2).to_string());
    }
    let mut j = anchor;
    while j > 0 && !matches!(view.text(j - 1), ";" | "{" | "}") {
        j -= 1;
    }
    for k in j..anchor {
        if view.is_ident(k, "let") {
            let mut n = k + 1;
            if view.is_ident(n, "mut") {
                n += 1;
            }
            if view.toks.get(n).map(|t| t.kind) == Some(TokKind::Ident) {
                return Some(view.text(n).to_string());
            }
        }
    }
    None
}

/// Builds the insertion that runs `base` (an expression returning
/// `io::Result`) right after the statement containing token `site`.
/// When that statement ends in `;`, the insertion is a new `{base}?;`
/// statement; when it is the function's tail expression, the tail is
/// `?`-terminated and `base` becomes the new tail.
fn insert_after_statement(
    view: &FileView,
    site: usize,
    hi: usize,
    base: &str,
) -> Option<SuggestedFix> {
    let indent = view.indent_of(site);
    let mut depth = 0i64;
    for k in site..hi {
        match view.text(k) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => {
                let at = view.toks[k].end;
                return Some(SuggestedFix {
                    start: at,
                    end: at,
                    replacement: format!("\n{indent}{base}?;"),
                });
            }
            _ => {}
        }
    }
    // Tail expression: `recv.call(args)` directly before the closing
    // brace. Anything more elaborate is left to the author.
    let open = (site..hi).find(|&j| view.is_punct(j, "("))?;
    let close = view.close_paren(open)?;
    if !view.is_punct(close + 1, "}") {
        return None;
    }
    let at = view.toks[close].end;
    Some(SuggestedFix {
        start: at,
        end: at,
        replacement: format!("?;\n{indent}{base}"),
    })
}

// ---------------------------------------------------------------- P1

/// P1: recovery functions (name matches a configured pattern) must use
/// typed errors — a panic during recovery turns a torn file into a
/// permanently unbootable runtime.
fn rule_p1_panic_free_recovery(view: &FileView, cfg: &Config, out: &mut Vec<Finding>) {
    for f in &view.fns {
        let recovery = cfg
            .recovery_fn_patterns
            .iter()
            .any(|p| f.name.contains(p.as_str()));
        if !recovery {
            continue;
        }
        let (lo, hi) = f.range;
        for j in lo..hi.min(view.toks.len()) {
            if view.in_test[j] || view.toks[j].kind != TokKind::Ident {
                continue;
            }
            let t = view.text(j);
            let call_panic = matches!(t, "unwrap" | "expect") && view.is_punct(j + 1, "(");
            let macro_panic = matches!(t, "panic" | "unreachable" | "todo" | "unimplemented")
                && view.is_punct(j + 1, "!");
            if call_panic || macro_panic {
                let mut finding = view.finding(
                    "P1",
                    Severity::Error,
                    j,
                    format!(
                        "`{t}` in recovery fn `{}` (line {}); recovery must return \
                         typed errors, never panic",
                        f.name, f.line
                    ),
                );
                // `.unwrap()` / `.expect(..)` rewrite mechanically to `?`;
                // panicking macros need a human to pick the error value.
                if call_panic && j >= 1 && view.is_punct(j - 1, ".") {
                    finding.fix = view.call_end(j).map(|end| SuggestedFix {
                        start: view.toks[j - 1].start,
                        end,
                        replacement: "?".to_string(),
                    });
                }
                out.push(finding);
            }
        }
    }
}

// ---------------------------------------------------------------- O1

/// O1: metric names at `counter_add` / `histogram_record` / `gauge_set`
/// call sites must be registry constants, never string literals — a
/// typo'd literal silently forks a series, and two spellings of the same
/// metric make every dashboard lie. Only the registry module itself
/// (where the constants are declared and unit-tested) may spell names
/// out. Dynamic names built with `format!` are exempt: the registry
/// cannot enumerate per-model or per-tenant suffixes.
fn rule_o1_metric_registry(view: &FileView, cfg: &Config, out: &mut Vec<Finding>) {
    const SINKS: &[&str] = &["counter_add", "histogram_record", "gauge_set"];
    if path_in(view.rel, std::slice::from_ref(&cfg.metric_registry_file)) {
        return;
    }
    for i in 0..view.toks.len() {
        if view.in_test[i] || view.toks[i].kind != TokKind::Ident {
            continue;
        }
        let sink = view.text(i);
        if !SINKS.contains(&sink) || !view.is_punct(i + 1, "(") {
            continue;
        }
        if view.toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str) {
            let name = view.text(i + 2).to_string();
            out.push(view.finding(
                "O1",
                Severity::Error,
                i,
                format!(
                    "string-literal metric name {name} at `{sink}`; use a constant \
                     from {}",
                    cfg.metric_registry_file
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- S1

/// S1: per-function size/complexity budget. A function that outgrows the
/// budget is where replay bugs hide: too many interleaved branches to
/// reason about, too long to review as a unit. The metric is
/// deterministic and macro-free: source lines spanned by the item, and
/// branch points counted as the keywords `if`/`else`/`while`/`for`/
/// `loop`/`match` plus match arms (`=>`). Test code is exempt (the
/// harness already strips `#[cfg(test)]` regions and `tests/` trees).
fn rule_s1_fn_budget(view: &FileView, cfg: &Config, out: &mut Vec<Finding>) {
    const BRANCH_KEYWORDS: &[&str] = &["if", "else", "while", "for", "loop", "match"];
    for f in &view.fns {
        let (lo, hi) = f.range;
        if hi <= lo || hi > view.toks.len() {
            continue;
        }
        let lines = view.toks[hi - 1].line - view.toks[lo].line + 1;
        let mut branches = 0usize;
        for j in lo..hi {
            let t = &view.toks[j];
            let hit = match t.kind {
                TokKind::Ident => BRANCH_KEYWORDS.contains(&t.text(view.src)),
                TokKind::Punct => t.text(view.src) == "=>",
                _ => false,
            };
            if hit {
                branches += 1;
            }
        }
        if lines > cfg.s1_max_fn_lines {
            out.push(Finding {
                rule: "S1",
                severity: Severity::Warning,
                file: view.rel.to_string(),
                line: f.line,
                message: format!(
                    "fn `{}` spans {lines} lines (budget {}); split it into \
                     reviewable units",
                    f.name, cfg.s1_max_fn_lines
                ),
                snippet: line_snippet(view.src, f.line),
                fix: None,
            });
        }
        if branches > cfg.s1_max_fn_branches {
            out.push(Finding {
                rule: "S1",
                severity: Severity::Warning,
                file: view.rel.to_string(),
                line: f.line,
                message: format!(
                    "fn `{}` has {branches} branch points (budget {}); extract \
                     the dispatch arms or helper predicates",
                    f.name, cfg.s1_max_fn_branches
                ),
                snippet: line_snippet(view.src, f.line),
                fix: None,
            });
        }
    }
}

// ---------------------------------------------------------------- L1

/// One static lock acquisition: which node, where.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Graph node: `file_stem::receiver`.
    pub node: String,
    /// Where the acquisition happens.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function name.
    pub func: String,
}

/// Extracts per-function lock-acquisition sequences from one file.
///
/// An acquisition is `recv.lock()` / `recv.read()` / `recv.write()` with
/// an *empty* argument list — the empty parens distinguish lock guards
/// from `io::Read::read(&mut buf)` and friends.
pub fn lock_sequences(rel: &str, src: &str) -> Vec<Vec<LockAcq>> {
    let view = FileView::new(rel, src);
    let stem = rel
        .rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs");
    let mut seqs = Vec::new();
    for f in &view.fns {
        let (lo, hi) = f.range;
        let mut seq = Vec::new();
        for j in lo..hi.min(view.toks.len()) {
            if view.in_test[j] || view.toks[j].kind != TokKind::Ident {
                continue;
            }
            if j < 2 {
                continue;
            }
            let is_acq = matches!(view.text(j), "lock" | "read" | "write")
                && view.is_punct(j - 1, ".")
                && view.is_punct(j + 1, "(")
                && view.is_punct(j + 2, ")");
            if !is_acq {
                continue;
            }
            // Receiver is the identifier just before the dot.
            let Some(recv) = view
                .toks
                .get(j - 2)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text(src))
            else {
                continue;
            };
            if recv == "self" {
                continue;
            }
            seq.push(LockAcq {
                node: format!("{stem}::{recv}"),
                file: rel.to_string(),
                line: view.toks[j].line,
                func: f.name.clone(),
            });
        }
        if seq.len() > 1 {
            seqs.push(seq);
        }
    }
    seqs
}

/// L1: builds the acquisition-order graph from all sequences and reports
/// one finding per cycle-participating edge set (a deterministic DFS
/// from the lexicographically smallest node).
pub fn rule_l1_lock_cycles(seqs: &[Vec<LockAcq>]) -> Vec<Finding> {
    // Edge a→b for consecutive acquisitions a, b in one function.
    // (Transitive paths are recovered by the DFS.)
    let mut edges: Vec<(String, String, &LockAcq)> = Vec::new();
    for seq in seqs {
        for w in seq.windows(2) {
            if w[0].node != w[1].node {
                edges.push((w[0].node.clone(), w[1].node.clone(), &w[1]));
            }
        }
    }
    edges.sort_by(|a, b| (a.0.as_str(), a.1.as_str()).cmp(&(b.0.as_str(), b.1.as_str())));
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    // Dense node indices (sorted, so traversal order is deterministic).
    let mut names: Vec<&str> = edges
        .iter()
        .flat_map(|(a, b, _)| [a.as_str(), b.as_str()])
        .collect();
    names.sort_unstable();
    names.dedup();
    let index = |n: &str| names.binary_search(&n).unwrap_or(0);
    let mut adj: Vec<Vec<(usize, &LockAcq)>> = vec![Vec::new(); names.len()];
    for (a, b, acq) in &edges {
        adj[index(a)].push((index(b), acq));
    }

    // Tri-color DFS; each back edge closes one reported cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    let mut color = vec![WHITE; names.len()];
    let mut path: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        v: usize,
        adj: &[Vec<(usize, &LockAcq)>],
        names: &[&str],
        color: &mut [u8],
        path: &mut Vec<usize>,
        out: &mut Vec<Finding>,
    ) {
        color[v] = GRAY;
        path.push(v);
        for &(w, acq) in &adj[v] {
            if color[w] == WHITE {
                dfs(w, adj, names, color, path, out);
            } else if color[w] == GRAY {
                // Back edge: the cycle is the path suffix from w, plus w.
                let start = path.iter().position(|&n| n == w).unwrap_or(0);
                let mut cycle: Vec<&str> = path[start..].iter().map(|&n| names[n]).collect();
                cycle.push(names[w]);
                out.push(Finding {
                    rule: "L1",
                    severity: Severity::Warning,
                    file: acq.file.clone(),
                    line: acq.line,
                    message: format!(
                        "lock-order cycle: {} (closing edge in fn `{}`); \
                         two threads taking these locks in opposite order can deadlock",
                        cycle.join(" -> "),
                        acq.func
                    ),
                    snippet: String::new(),
                    fix: None,
                });
            }
        }
        path.pop();
        color[v] = 2;
    }
    for v in 0..names.len() {
        if color[v] == WHITE {
            dfs(v, &adj, &names, &mut color, &mut path, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(rel: &str) -> Config {
        let mut cfg = Config::default_config();
        cfg.serializer_modules = vec![rel.to_string()];
        cfg.durability_files = vec![rel.to_string()];
        cfg.recovery_files = vec![rel.to_string()];
        cfg
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn f() { let t = Instant::now(); }";
        let f = scan_file("x.rs", src, &Config::default_config());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D1");
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let t = Instant::now(); }\n}\nfn g() {}";
        let f = scan_file("x.rs", src, &Config::default_config());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn duration_is_exempt_from_d1() {
        let src = "use std::time::Duration;\nfn f(d: Duration) {}";
        let f = scan_file("x.rs", src, &Config::default_config());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn clock_file_is_exempt_from_d1() {
        let cfg = Config::default_config();
        let clock = cfg.clock_file.clone();
        let src = "fn now() -> Instant { Instant::now() }";
        assert!(scan_file(&clock, src, &cfg).is_empty());
        assert_eq!(scan_file("other.rs", src, &cfg).len(), 2);
    }

    #[test]
    fn d3_requires_declared_map_and_no_sort() {
        let cfg = cfg_for("m.rs");
        let bad = "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { for k in s.m.keys() {} }";
        let f = scan_file("m.rs", bad, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D3");

        let sorted =
            "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { let mut v: Vec<_> = s.m.keys().collect(); v.sort(); }";
        assert!(scan_file("m.rs", sorted, &cfg).is_empty());

        let btree = "struct S { m: BTreeMap<u32, u32> }\nfn f(s: &S) { for k in s.m.keys() {} }";
        assert!(scan_file("m.rs", btree, &cfg).is_empty());
    }

    #[test]
    fn f1_pairs_create_with_fsyncs() {
        let cfg = cfg_for("snap.rs");
        let bad = "fn save(p: &Path) { let f = File::create(p); }";
        let f = scan_file("snap.rs", bad, &cfg);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "F1"));

        let good =
            "fn save(p: &Path) { let f = File::create(p); f.sync_all(); sync_parent_dir(p); }";
        assert!(scan_file("snap.rs", good, &cfg).is_empty());
    }

    #[test]
    fn p1_flags_unwrap_only_in_recovery_fns() {
        let cfg = cfg_for("wal.rs");
        let bad = "fn replay(b: &[u8]) { let s = parse(b).unwrap(); }";
        let f = scan_file("wal.rs", bad, &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "P1");

        // Same body, non-recovery name: P1 does not apply.
        let other = "fn fresh(b: &[u8]) { let s = parse(b).unwrap(); }";
        assert!(scan_file("wal.rs", other, &cfg).is_empty());

        // unwrap_or is not unwrap.
        let ok = "fn replay(b: &[u8]) { let s = parse(b).unwrap_or(0); }";
        assert!(scan_file("wal.rs", ok, &cfg).is_empty());
    }

    #[test]
    fn o1_flags_literal_metric_names_outside_the_registry() {
        let cfg = Config::default_config();
        let bad = "fn f(r: &Recorder) { r.counter_add(\"wal.appends\", 1); }";
        let f = scan_file("crates/serve/src/service.rs", bad, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "O1");
        assert_eq!(f[0].severity, Severity::Error);

        // The registry file itself declares the names.
        assert!(scan_file(&cfg.metric_registry_file.clone(), bad, &cfg).is_empty());

        // Constants and dynamic format! names are fine.
        let const_name = "fn f(r: &Recorder) { r.counter_add(registry::WAL_APPENDS, 1); }";
        assert!(scan_file("crates/serve/src/service.rs", const_name, &cfg).is_empty());
        let dynamic =
            "fn f(r: &Recorder) { r.counter_add(&format!(\"llm.calls.{}\", m.name()), 1); }";
        assert!(scan_file("crates/serve/src/service.rs", dynamic, &cfg).is_empty());

        // histogram_record and gauge_set are sinks too; tests are exempt.
        let hist = "fn f(r: &Recorder) { r.histogram_record(\"x.y\", 1.0); }";
        assert_eq!(scan_file("a.rs", hist, &cfg).len(), 1);
        let test_code =
            "#[cfg(test)]\nmod tests { fn f(r: &Recorder) { r.counter_add(\"x\", 1); } }";
        assert!(scan_file("a.rs", test_code, &cfg).is_empty());
    }

    #[test]
    fn s1_flags_fns_over_the_line_budget() {
        let mut cfg = Config::default_config();
        cfg.s1_max_fn_lines = 3;
        let long = "fn big() {\n let a = 1;\n let b = 2;\n let c = 3;\n}";
        let f = scan_file("x.rs", long, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "S1");
        assert_eq!(f[0].severity, Severity::Warning);
        assert!(
            f[0].message.contains("`big` spans 5 lines"),
            "{}",
            f[0].message
        );

        let short = "fn small() {\n let a = 1;\n}";
        assert!(scan_file("x.rs", short, &cfg).is_empty());
    }

    #[test]
    fn s1_counts_branch_keywords_and_match_arms() {
        let mut cfg = Config::default_config();
        cfg.s1_max_fn_branches = 3;
        // 2 keywords (if, match) + 2 arms (=>) = 4 branch points.
        let branchy =
            "fn pick(x: u32) -> u32 { if x > 1 { return 0; } match x { 0 => 1, _ => 2 } }";
        let f = scan_file("x.rs", branchy, &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("4 branch points"), "{}", f[0].message);

        // Exactly at budget: clean.
        let at_budget = "fn pick(x: u32) -> u32 { match x { 0 => 1, _ => 2 } }";
        assert!(scan_file("x.rs", at_budget, &cfg).is_empty());
    }

    #[test]
    fn s1_exempts_test_code() {
        let mut cfg = Config::default_config();
        cfg.s1_max_fn_lines = 2;
        let src = "#[cfg(test)]\nmod tests {\n fn t() {\n let a = 1;\n let b = 2;\n }\n}";
        assert!(scan_file("x.rs", src, &cfg).is_empty());
    }

    #[test]
    fn l1_detects_opposite_order() {
        let src = "fn ab(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                   fn ba(a: &M, b: &M) { let _y = b.lock(); let _x = a.lock(); }";
        let seqs = lock_sequences("locks.rs", src);
        let f = rule_l1_lock_cycles(&seqs);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "L1");
        assert!(f[0].message.contains("locks::a"), "{}", f[0].message);
    }

    #[test]
    fn l1_ignores_consistent_order_and_io_read() {
        let src = "fn ab(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                   fn ab2(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                   fn io(f: &mut File, buf: &mut [u8]) { f.read(buf); f.read(buf); }";
        let seqs = lock_sequences("locks.rs", src);
        assert!(rule_l1_lock_cycles(&seqs).is_empty());
    }
}
