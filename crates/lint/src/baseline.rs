//! `lint.toml` — configuration and the checked-in baseline/allowlist.
//!
//! The linter is dependency-free, so this is a hand-rolled parser for
//! the small TOML subset the file actually uses: `[section]` tables,
//! `[[allow]]` array-of-tables, and `key = value` where value is a
//! quoted string, a one-line array of quoted strings, an integer, or a
//! bool. Unknown keys are ignored (forward compatibility); malformed
//! lines produce a typed error with the line number.

use std::fmt;

/// One baseline entry: a finding matching all present fields is
/// suppressed (reported as `baselined`, not `new`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allow {
    /// Rule family id the entry applies to (`"D3"` …). Empty = any.
    pub rule: String,
    /// File the entry applies to (exact or suffix match). Empty = any.
    pub file: String,
    /// Substring that must appear in the finding's snippet or message.
    /// Empty = any.
    pub contains: String,
    /// Why this is acceptable — required, so every suppression carries
    /// its justification in the diff that introduced it.
    pub reason: String,
}

impl Allow {
    /// Whether this entry suppresses `f`.
    pub fn matches(&self, f: &crate::rules::Finding) -> bool {
        (self.rule.is_empty() || self.rule == f.rule)
            && (self.file.is_empty() || f.file == self.file || f.file.ends_with(&self.file))
            && (self.contains.is_empty()
                || f.snippet.contains(&self.contains)
                || f.message.contains(&self.contains))
    }
}

/// Parse error with 1-based line.
#[derive(Debug)]
pub struct TomlError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"…"`.
    Str(String),
    /// `["a", "b"]`.
    List(Vec<String>),
    /// `42`.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
}

/// One `key = value` with the table path it appeared under.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Table name (`"lint"`), or `"allow"` for `[[allow]]` items.
    pub table: String,
    /// Index of the `[[allow]]` item this entry belongs to (0-based);
    /// `usize::MAX` for plain `[section]` entries.
    pub item: usize,
    /// Key name.
    pub key: String,
    /// Parsed value.
    pub value: Value,
}

/// Parses the TOML subset into a flat entry list.
pub fn parse(text: &str) -> Result<Vec<Entry>, TomlError> {
    let mut entries = Vec::new();
    let mut table = String::new();
    let mut item = usize::MAX;
    let mut allow_count = 0usize;
    for (lineno, line) in logical_lines(text) {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            table = name.trim().to_string();
            item = allow_count;
            allow_count += 1;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            table = name.trim().to_string();
            item = usize::MAX;
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(TomlError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = line[..eq].trim().to_string();
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        entries.push(Entry {
            table: table.clone(),
            item,
            key,
            value,
        });
    }
    Ok(entries)
}

/// Folds physical lines into logical ones: a line whose `[`s (outside
/// strings) outnumber its `]`s continues onto the next line, so arrays
/// may span lines. Comments are stripped per physical line. Each
/// logical line carries the 1-based number of its first physical line.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String, i64)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let stripped = strip_comment(raw);
        let depth = bracket_depth(stripped);
        match pending.take() {
            Some((start, mut acc, open)) => {
                acc.push(' ');
                acc.push_str(stripped.trim());
                if open + depth > 0 {
                    pending = Some((start, acc, open + depth));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if depth > 0 {
                    pending = Some((idx + 1, stripped.trim().to_string(), depth));
                } else {
                    out.push((idx + 1, stripped.to_string()));
                }
            }
        }
    }
    if let Some((start, acc, _)) = pending {
        // Unterminated array: hand it to the value parser as-is so the
        // error points at the opening line.
        out.push((start, acc));
    }
    out
}

/// Net `[` minus `]` outside quoted strings. Table headers (`[lint]`,
/// `[[allow]]`) are balanced, so they contribute zero.
fn bracket_depth(line: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth
}

/// Removes a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<Value, TomlError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('"') {
        return Ok(Value::Str(parse_string(text, line)?.0));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (s, used) = parse_string(rest, line)?;
            items.push(s);
            rest = rest[used..].trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err(TomlError {
                    line,
                    message: format!("expected `,` between array items, got `{rest}`"),
                });
            }
        }
        return Ok(Value::List(items));
    }
    text.parse::<i64>().map(Value::Int).map_err(|_| TomlError {
        line,
        message: format!("unsupported value `{text}`"),
    })
}

/// Parses a leading quoted string; returns (content, bytes consumed).
fn parse_string(text: &str, line: usize) -> Result<(String, usize), TomlError> {
    let mut chars = text.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => {
            return Err(TomlError {
                line,
                message: format!("expected quoted string, got `{text}`"),
            });
        }
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, i + 1)),
            other => out.push(other),
        }
    }
    Err(TomlError {
        line,
        message: "unterminated string".to_string(),
    })
}

/// Splits findings into (new, baselined) against the allowlist. Order
/// within each bucket is preserved.
pub fn apply_baseline(
    findings: Vec<crate::rules::Finding>,
    allows: &[Allow],
) -> (Vec<crate::rules::Finding>, Vec<crate::rules::Finding>) {
    let mut new = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        if allows.iter().any(|a| a.matches(&f)) {
            baselined.push(f);
        } else {
            new.push(f);
        }
    }
    (new, baselined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Severity};

    #[test]
    fn parses_sections_arrays_and_allows() {
        let text = r#"
# top comment
[lint]
roots = ["crates", "src"]   # trailing comment
clock_file = "crates/llm/src/clock.rs"
max_findings = 500
strict = true

[[allow]]
rule = "D3"
file = "m.rs"
reason = "tie-break is total"

[[allow]]
rule = "L1"
reason = "guard dropped before second lock"
"#;
        let entries = parse(text).unwrap();
        let roots = entries
            .iter()
            .find(|e| e.table == "lint" && e.key == "roots")
            .unwrap();
        assert_eq!(
            roots.value,
            Value::List(vec!["crates".into(), "src".into()])
        );
        let allows: Vec<&Entry> = entries.iter().filter(|e| e.table == "allow").collect();
        assert_eq!(allows.last().unwrap().item, 1);
        assert!(entries
            .iter()
            .any(|e| e.key == "strict" && e.value == Value::Bool(true)));
        assert!(entries
            .iter()
            .any(|e| e.key == "max_findings" && e.value == Value::Int(500)));
    }

    #[test]
    fn multi_line_arrays_fold_into_one_entry() {
        let text = "[lint]\nmods = [\n    \"a.rs\",  # first\n    \"b.rs\",\n]\nafter = \"x\"\n";
        let entries = parse(text).unwrap();
        assert_eq!(
            entries[0].value,
            Value::List(vec!["a.rs".into(), "b.rs".into()])
        );
        assert_eq!(entries[1].value, Value::Str("x".into()));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let entries = parse("[lint]\nname = \"a # b\"").unwrap();
        assert_eq!(entries[0].value, Value::Str("a # b".into()));
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = parse("[lint]\nwhat is this").unwrap_err();
        assert_eq!(err.line, 2);
    }

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            fix: None,
        }
    }

    #[test]
    fn allow_matches_rule_file_and_contains() {
        let allow = Allow {
            rule: "D3".into(),
            file: "core/src/manager.rs".into(),
            contains: "entries.iter".into(),
            reason: "total tie-break".into(),
        };
        assert!(allow.matches(&finding(
            "D3",
            "crates/core/src/manager.rs",
            "let x = self.entries.iter().min_by(cmp);"
        )));
        assert!(!allow.matches(&finding("D3", "crates/core/src/manager.rs", "other")));
        assert!(!allow.matches(&finding("D1", "crates/core/src/manager.rs", "entries.iter")));
        assert!(!allow.matches(&finding("D3", "crates/obs/src/report.rs", "entries.iter")));
    }

    #[test]
    fn baseline_splits_new_from_known() {
        let allows = vec![Allow {
            rule: "D1".into(),
            ..Allow::default()
        }];
        let (new, base) = apply_baseline(
            vec![finding("D1", "a.rs", ""), finding("D2", "b.rs", "")],
            &allows,
        );
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "D2");
        assert_eq!(base.len(), 1);
    }
}
