//! Deterministic report rendering: a human table for the terminal and a
//! JSONL export for `results/`.
//!
//! Both renderers consume findings already sorted by
//! [`crate::rules::Finding::sort_key`], carry no timestamps or absolute
//! paths, and therefore emit byte-identical output across runs — ci.sh
//! `cmp`s two consecutive runs to hold the linter to that.

use crate::rules::Finding;
use std::fmt::Write as _;

/// Renders the human-readable report.
pub fn render_text(new: &[Finding], baselined: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "aida-lint: {files_scanned} files scanned");
    if new.is_empty() {
        let _ = writeln!(out, "clean: 0 new findings ({} baselined)", baselined.len());
        return out;
    }
    let errors = new.iter().filter(|f| f.severity.name() == "error").count();
    let _ = writeln!(
        out,
        "{} new finding(s) [{} error, {} warning], {} baselined",
        new.len(),
        errors,
        new.len() - errors,
        baselined.len()
    );
    for f in new {
        let _ = writeln!(
            out,
            "  {} {:7} {}:{} {}",
            f.rule,
            f.severity.name(),
            f.file,
            f.line,
            f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "      | {}", f.snippet);
        }
    }
    out
}

/// Renders the JSONL report: one object per finding (new findings carry
/// `"status":"new"`, baselined ones `"status":"baselined"`), then a
/// final summary object.
pub fn render_jsonl(new: &[Finding], baselined: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for (status, list) in [("new", new), ("baselined", baselined)] {
        for f in list {
            let fix = match &f.fix {
                Some(fix) => format!(
                    ",\"suggested_fix\":{{\"start\":{},\"end\":{},\"replacement\":{}}}",
                    fix.start,
                    fix.end,
                    json_str(&fix.replacement)
                ),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{{\"rule\":{},\"severity\":{},\"status\":{},\"file\":{},\"line\":{},\"message\":{},\"snippet\":{}{fix}}}",
                json_str(f.rule),
                json_str(f.severity.name()),
                json_str(status),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet),
            );
        }
    }
    let _ = writeln!(
        out,
        "{{\"summary\":true,\"files_scanned\":{},\"new\":{},\"baselined\":{}}}",
        files_scanned,
        new.len(),
        baselined.len()
    );
    out
}

/// Minimal JSON string escaping (the obs crate has a fuller writer, but
/// the linter must not depend on the crates it audits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Severity, SuggestedFix};

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "D1",
            severity: Severity::Error,
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "wall clock".into(),
            snippet: "let t = Instant::now(); // \"quoted\"".into(),
            fix: None,
        }]
    }

    #[test]
    fn jsonl_is_line_per_finding_plus_summary() {
        let jsonl = render_jsonl(&sample(), &[], 3);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"rule\":\"D1\""));
        assert!(lines[0].contains("\"status\":\"new\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"summary\":true"));
        assert!(lines[1].contains("\"files_scanned\":3"));
    }

    #[test]
    fn jsonl_carries_the_suggested_fix_when_present() {
        let mut findings = sample();
        findings[0].fix = Some(SuggestedFix {
            start: 8,
            end: 22,
            replacement: "clock.now()".into(),
        });
        let jsonl = render_jsonl(&findings, &[], 1);
        let first = jsonl.lines().next().unwrap();
        assert!(
            first.contains(
                "\"suggested_fix\":{\"start\":8,\"end\":22,\"replacement\":\"clock.now()\"}"
            ),
            "{first}"
        );
        // Fix-less findings keep the old shape.
        let plain = render_jsonl(&sample(), &[], 1);
        assert!(!plain.contains("suggested_fix"), "{plain}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_jsonl(&sample(), &sample(), 9);
        let b = render_jsonl(&sample(), &sample(), 9);
        assert_eq!(a, b);
        assert_eq!(
            render_text(&sample(), &[], 1),
            render_text(&sample(), &[], 1)
        );
    }

    #[test]
    fn clean_report_reads_clean() {
        let text = render_text(&[], &sample(), 5);
        assert!(text.contains("clean: 0 new findings (1 baselined)"));
    }
}
