//! # aida-lint
//!
//! Dependency-free static analysis for the aida workspace. The runtime's
//! core claim — byte-identical seeded replay across caching, serving,
//! and crash recovery — rests on conventions nothing else enforces:
//! virtual clock only (D1), seeded randomness (D2), ordered iteration in
//! serializers (D3), fsync-paired durable writes (F1), panic-free
//! recovery (P1), an acyclic lock-order graph (L1), and metric names
//! drawn from the single registry module (O1). This crate
//! tokenizes every workspace `.rs` file with its own total lexer and
//! checks those invariants, diffing findings against the checked-in
//! baseline in `lint.toml` and exporting a deterministic JSONL report.
//!
//! See `docs/lint.md` for the rule catalog and baselining workflow.

pub mod baseline;
pub mod fix;
pub mod lexer;
pub mod report;
pub mod rules;

use baseline::{Allow, Entry, Value};
use rules::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Linter configuration, normally loaded from `lint.toml` at the
/// workspace root. All paths are workspace-relative with forward
/// slashes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path components that exclude a file when present anywhere in its
    /// relative path (`target`, `vendor`, `fixtures`, …).
    pub exclude: Vec<String>,
    /// The one file allowed to touch the wall clock (D1).
    pub clock_file: String,
    /// Modules that serialize output; D3 applies only here.
    pub serializer_modules: Vec<String>,
    /// Durability-critical files; F1 applies only here.
    pub durability_files: Vec<String>,
    /// Files containing recovery paths; P1 applies only here.
    pub recovery_files: Vec<String>,
    /// A function in a recovery file is a recovery path if its name
    /// contains any of these substrings.
    pub recovery_fn_patterns: Vec<String>,
    /// The one file allowed to spell metric names as string literals
    /// (O1); everywhere else they must come from this registry's consts.
    pub metric_registry_file: String,
    /// S1: maximum source lines a single non-test `fn` item may span.
    pub s1_max_fn_lines: usize,
    /// S1: maximum branch points (`if`/`else`/`while`/`for`/`loop`/
    /// `match` keywords and `=>` arms) a single non-test fn may contain.
    pub s1_max_fn_branches: usize,
    /// Baseline entries.
    pub allows: Vec<Allow>,
}

impl Config {
    /// The built-in defaults, matching this repository's layout. Used
    /// when `lint.toml` is absent and as the base the file overrides.
    pub fn default_config() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            roots: s(&["crates", "src"]),
            exclude: s(&[
                "target", "vendor", "fixtures", "tests", "benches", "examples",
            ]),
            clock_file: "crates/llm/src/clock.rs".to_string(),
            serializer_modules: s(&[
                "crates/obs/src/report.rs",
                "crates/obs/src/json.rs",
                "crates/serve/src/report.rs",
                "crates/llm/src/snapshot.rs",
                "crates/core/src/manager.rs",
                "crates/serve/src/tenant.rs",
            ]),
            durability_files: s(&[
                "crates/llm/src/snapshot.rs",
                "crates/serve/src/tenant.rs",
                "crates/core/src/runtime.rs",
            ]),
            recovery_files: s(&[
                "crates/llm/src/snapshot.rs",
                "crates/llm/src/cache.rs",
                "crates/serve/src/tenant.rs",
                "crates/core/src/manager.rs",
            ]),
            recovery_fn_patterns: s(&["recover", "replay", "decode", "load", "restore"]),
            metric_registry_file: "crates/obs/src/registry.rs".to_string(),
            s1_max_fn_lines: 150,
            s1_max_fn_branches: 60,
            allows: Vec::new(),
        }
    }

    /// Loads `lint.toml` from `path`, overlaying the defaults. A missing
    /// file yields the defaults unchanged.
    pub fn load(path: &Path) -> Result<Config, LintError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Config::default_config()),
            Err(e) => return Err(LintError::Io(path.display().to_string(), e)),
        };
        let entries = baseline::parse(&text).map_err(LintError::Toml)?;
        let mut cfg = Config::default_config();
        for e in entries.iter().filter(|e| e.table == "lint") {
            cfg.apply_lint_key(e);
        }
        cfg.allows = collect_allows(&entries);
        Ok(cfg)
    }

    fn apply_lint_key(&mut self, e: &Entry) {
        let as_list = |v: &Value| -> Option<Vec<String>> {
            match v {
                Value::List(items) => Some(items.clone()),
                Value::Str(s) => Some(vec![s.clone()]),
                _ => None,
            }
        };
        match e.key.as_str() {
            "roots" => {
                if let Some(v) = as_list(&e.value) {
                    self.roots = v;
                }
            }
            "exclude" => {
                if let Some(v) = as_list(&e.value) {
                    self.exclude = v;
                }
            }
            "clock_file" => {
                if let Value::Str(s) = &e.value {
                    self.clock_file = s.clone();
                }
            }
            "serializer_modules" => {
                if let Some(v) = as_list(&e.value) {
                    self.serializer_modules = v;
                }
            }
            "durability_files" => {
                if let Some(v) = as_list(&e.value) {
                    self.durability_files = v;
                }
            }
            "recovery_files" => {
                if let Some(v) = as_list(&e.value) {
                    self.recovery_files = v;
                }
            }
            "recovery_fn_patterns" => {
                if let Some(v) = as_list(&e.value) {
                    self.recovery_fn_patterns = v;
                }
            }
            "metric_registry_file" => {
                if let Value::Str(s) = &e.value {
                    self.metric_registry_file = s.clone();
                }
            }
            "s1_max_fn_lines" => {
                if let Value::Int(n) = &e.value {
                    self.s1_max_fn_lines = (*n).max(1) as usize;
                }
            }
            "s1_max_fn_branches" => {
                if let Value::Int(n) = &e.value {
                    self.s1_max_fn_branches = (*n).max(1) as usize;
                }
            }
            _ => {}
        }
    }
}

/// Folds `[[allow]]` entries into [`Allow`] records, grouped by item.
fn collect_allows(entries: &[Entry]) -> Vec<Allow> {
    let mut allows: Vec<Allow> = Vec::new();
    for e in entries.iter().filter(|e| e.table == "allow") {
        while allows.len() <= e.item {
            allows.push(Allow::default());
        }
        let a = &mut allows[e.item];
        if let Value::Str(s) = &e.value {
            match e.key.as_str() {
                "rule" => a.rule = s.clone(),
                "file" => a.file = s.clone(),
                "contains" => a.contains = s.clone(),
                "reason" => a.reason = s.clone(),
                _ => {}
            }
        }
    }
    allows
}

/// Linter failure (I/O or config), distinct from findings.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file failed.
    Io(String, io::Error),
    /// `lint.toml` is malformed.
    Toml(baseline::TomlError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{path}: {e}"),
            LintError::Toml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Findings not covered by the baseline, severity-ranked.
    pub new: Vec<Finding>,
    /// Findings suppressed by `[[allow]]` entries, severity-ranked.
    pub baselined: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Human-readable rendering.
    pub fn text(&self) -> String {
        report::render_text(&self.new, &self.baselined, self.files_scanned)
    }

    /// Deterministic JSONL rendering.
    pub fn jsonl(&self) -> String {
        report::render_jsonl(&self.new, &self.baselined, self.files_scanned)
    }
}

/// Runs the full workspace lint rooted at `root` with `cfg`.
pub fn run(root: &Path, cfg: &Config) -> Result<LintReport, LintError> {
    let files = collect_files(root, cfg)?;
    let mut findings = Vec::new();
    let mut lock_seqs = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let src = match fs::read_to_string(&full) {
            Ok(s) => s,
            // Non-UTF-8 or vanished files are skipped, not fatal: the
            // linter must stay total over whatever the tree contains.
            Err(_) => continue,
        };
        findings.extend(rules::scan_file(rel, &src, cfg));
        lock_seqs.extend(rules::lock_sequences(rel, &src));
    }
    findings.extend(rules::rule_l1_lock_cycles(&lock_seqs));
    findings.sort_by_key(|f| f.sort_key());
    let (new, baselined) = baseline::apply_baseline(findings, &cfg.allows);
    Ok(LintReport {
        new,
        baselined,
        files_scanned: files.len(),
    })
}

/// Collects workspace-relative `.rs` paths under the configured roots,
/// sorted, with excluded components filtered out.
fn collect_files(root: &Path, cfg: &Config) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> Result<(), LintError> {
    let rd = fs::read_dir(dir).map_err(|e| LintError::Io(dir.display().to_string(), e))?;
    let mut children: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        let name = child
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if cfg.exclude.iter().any(|x| x == &name) || name.starts_with('.') {
            continue;
        }
        if child.is_dir() {
            walk(&child, root, cfg, out)?;
        } else if name.ends_with(".rs") {
            let rel = child
                .strip_prefix(root)
                .unwrap_or(&child)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_point_at_the_virtual_clock() {
        let cfg = Config::default_config();
        assert_eq!(cfg.clock_file, "crates/llm/src/clock.rs");
        assert!(cfg.exclude.iter().any(|e| e == "vendor"));
    }

    #[test]
    fn config_overlay_from_toml_text() {
        let text = "[lint]\nroots = [\"x\"]\nclock_file = \"y/clock.rs\"\n\n[[allow]]\nrule = \"D1\"\nfile = \"z.rs\"\nreason = \"because\"\n";
        let entries = baseline::parse(text).unwrap();
        let mut cfg = Config::default_config();
        for e in entries.iter().filter(|e| e.table == "lint") {
            cfg.apply_lint_key(e);
        }
        cfg.allows = collect_allows(&entries);
        assert_eq!(cfg.roots, vec!["x"]);
        assert_eq!(cfg.clock_file, "y/clock.rs");
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "D1");
        assert_eq!(cfg.allows[0].reason, "because");
    }

    #[test]
    fn missing_config_file_yields_defaults() {
        let cfg = Config::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert_eq!(cfg.clock_file, Config::default_config().clock_file);
    }
}
