//! `aida-lint` CLI.
//!
//! ```text
//! aida-lint [--root DIR] [--config FILE] [--jsonl FILE] [--deny-new]
//!           [--fix [--dry-run]]
//! ```
//!
//! Scans the workspace, prints the human report, writes the JSONL report
//! (default `results/lint_report.jsonl` under the root, honouring
//! `AIDA_RESULTS_DIR` like the bench binaries). `--fix` applies every
//! machine-suggested fix carried by *new* findings in place;
//! `--fix --dry-run` prints the unified diffs instead of writing. Exit
//! codes: 0 = clean or findings all baselined; 1 = new findings with
//! `--deny-new`; 2 = bad usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    deny_new: bool,
    fix: bool,
    dry_run: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        jsonl: None,
        deny_new: false,
        fix: false,
        dry_run: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = take(&mut it, "--root")?.into(),
            "--config" => args.config = Some(take(&mut it, "--config")?.into()),
            "--jsonl" => args.jsonl = Some(take(&mut it, "--jsonl")?.into()),
            "--deny-new" => args.deny_new = true,
            "--fix" => args.fix = true,
            "--dry-run" => args.dry_run = true,
            "--help" | "-h" => {
                return Err(
                    "usage: aida-lint [--root DIR] [--config FILE] [--jsonl FILE] [--deny-new] [--fix [--dry-run]]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.dry_run && !args.fix {
        return Err("--dry-run only makes sense with --fix".to_string());
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Applies (or, under `--dry-run`, previews as unified diffs) every
/// machine-suggested fix carried by a *new* finding. Baselined findings
/// are deliberately left alone: the `[[allow]]` entry records a human
/// decision to keep that code.
fn run_fixes(args: &Args, report: &aida_lint::LintReport) -> Result<(), ExitCode> {
    let mut by_file: std::collections::BTreeMap<&str, Vec<aida_lint::rules::Finding>> =
        std::collections::BTreeMap::new();
    for f in report.new.iter().filter(|f| f.fix.is_some()) {
        by_file.entry(f.file.as_str()).or_default().push(f.clone());
    }
    let mut applied = 0usize;
    let mut files = 0usize;
    for (rel, findings) in &by_file {
        let full = args.root.join(rel);
        let src = std::fs::read_to_string(&full).map_err(|e| {
            eprintln!("aida-lint: reading {}: {e}", full.display());
            ExitCode::from(2)
        })?;
        let (fixed, n) = aida_lint::fix::apply(&src, findings);
        if n == 0 {
            continue;
        }
        if args.dry_run {
            print!("{}", aida_lint::fix::unified_diff(rel, &src, &fixed));
        } else {
            std::fs::write(&full, &fixed).map_err(|e| {
                eprintln!("aida-lint: writing {}: {e}", full.display());
                ExitCode::from(2)
            })?;
        }
        applied += n;
        files += 1;
    }
    println!(
        "aida-lint: {applied} fix(es) {} across {files} file(s)",
        if args.dry_run { "previewed" } else { "applied" }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match aida_lint::Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("aida-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match aida_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aida-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.text());

    if args.fix {
        if let Err(code) = run_fixes(&args, &report) {
            return code;
        }
    }

    let jsonl_path = args.jsonl.clone().unwrap_or_else(|| {
        // Same convention as the bench binaries: AIDA_RESULTS_DIR wins,
        // else `results/` under the scanned root.
        match std::env::var_os("AIDA_RESULTS_DIR") {
            Some(dir) => PathBuf::from(dir).join("lint_report.jsonl"),
            None => args.root.join("results").join("lint_report.jsonl"),
        }
    });
    if let Some(parent) = jsonl_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("aida-lint: creating {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&jsonl_path, report.jsonl()) {
        eprintln!("aida-lint: writing {}: {e}", jsonl_path.display());
        return ExitCode::from(2);
    }

    if args.deny_new && !report.new.is_empty() {
        eprintln!(
            "aida-lint: {} new finding(s) above the baseline (see {})",
            report.new.len(),
            jsonl_path.display()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
