//! `aida-lint` CLI.
//!
//! ```text
//! aida-lint [--root DIR] [--config FILE] [--jsonl FILE] [--deny-new]
//! ```
//!
//! Scans the workspace, prints the human report, writes the JSONL report
//! (default `results/lint_report.jsonl` under the root, honouring
//! `AIDA_RESULTS_DIR` like the bench binaries). Exit codes: 0 = clean or
//! findings all baselined; 1 = new findings with `--deny-new`; 2 = bad
//! usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    deny_new: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        jsonl: None,
        deny_new: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = take(&mut it, "--root")?.into(),
            "--config" => args.config = Some(take(&mut it, "--config")?.into()),
            "--jsonl" => args.jsonl = Some(take(&mut it, "--jsonl")?.into()),
            "--deny-new" => args.deny_new = true,
            "--help" | "-h" => {
                return Err(
                    "usage: aida-lint [--root DIR] [--config FILE] [--jsonl FILE] [--deny-new]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match aida_lint::Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("aida-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match aida_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aida-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.text());

    let jsonl_path = args.jsonl.clone().unwrap_or_else(|| {
        // Same convention as the bench binaries: AIDA_RESULTS_DIR wins,
        // else `results/` under the scanned root.
        match std::env::var_os("AIDA_RESULTS_DIR") {
            Some(dir) => PathBuf::from(dir).join("lint_report.jsonl"),
            None => args.root.join("results").join("lint_report.jsonl"),
        }
    });
    if let Some(parent) = jsonl_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("aida-lint: creating {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&jsonl_path, report.jsonl()) {
        eprintln!("aida-lint: writing {}: {e}", jsonl_path.display());
        return ExitCode::from(2);
    }

    if args.deny_new && !report.new.is_empty() {
        eprintln!(
            "aida-lint: {} new finding(s) above the baseline (see {})",
            report.new.len(),
            jsonl_path.display()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
