//! Machine application of lint `SuggestedFix`es: splice replacement
//! spans into a source file and render the result as a unified diff.
//!
//! Fixes are byte-offset replacements produced against a specific scan
//! of the file, so application is all-at-once: sort by span, drop
//! overlaps (first wins), splice front-to-back. Callers re-scan after
//! applying; a fix whose output still lints dirty is a rule bug, and
//! the fixture tests assert exactly that round trip.

use crate::rules::{Finding, SuggestedFix};

/// Applies every fix carried by `findings` to `src`, returning the
/// rewritten text and how many fixes were spliced in. Overlapping or
/// out-of-bounds spans are skipped, never mangled.
pub fn apply(src: &str, findings: &[Finding]) -> (String, usize) {
    let mut fixes: Vec<&SuggestedFix> = findings.iter().filter_map(|f| f.fix.as_ref()).collect();
    fixes.sort_by_key(|f| (f.start, f.end));
    fixes.dedup_by(|a, b| a.start == b.start && a.end == b.end && a.replacement == b.replacement);
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    let mut applied = 0usize;
    for fix in fixes {
        if fix.start < cursor || fix.end < fix.start || fix.end > src.len() {
            continue;
        }
        if !src.is_char_boundary(fix.start) || !src.is_char_boundary(fix.end) {
            continue;
        }
        out.push_str(&src[cursor..fix.start]);
        out.push_str(&fix.replacement);
        cursor = fix.end;
        applied += 1;
    }
    out.push_str(&src[cursor..]);
    (out, applied)
}

/// Renders `old` → `new` as a single-hunk unified diff with three
/// context lines, headed `--- a/<rel>` / `+++ b/<rel>`. Returns an
/// empty string when the texts are identical.
pub fn unified_diff(rel: &str, old: &str, new: &str) -> String {
    if old == new {
        return String::new();
    }
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    // Trim the common prefix and suffix; everything between is the hunk
    // body. Lint fixes are local, so one hunk covers the practical case
    // and keeps the renderer dependency-free.
    let mut prefix = 0usize;
    while prefix < old_lines.len()
        && prefix < new_lines.len()
        && old_lines[prefix] == new_lines[prefix]
    {
        prefix += 1;
    }
    let mut suffix = 0usize;
    while suffix < old_lines.len() - prefix
        && suffix < new_lines.len() - prefix
        && old_lines[old_lines.len() - 1 - suffix] == new_lines[new_lines.len() - 1 - suffix]
    {
        suffix += 1;
    }
    const CTX: usize = 3;
    let ctx_before = prefix.min(CTX);
    let old_mid = &old_lines[prefix..old_lines.len() - suffix];
    let new_mid = &new_lines[prefix..new_lines.len() - suffix];
    let ctx_after = suffix.min(CTX);

    let old_start = prefix - ctx_before;
    let new_start = old_start;
    let old_count = ctx_before + old_mid.len() + ctx_after;
    let new_count = ctx_before + new_mid.len() + ctx_after;

    let mut out = String::new();
    out.push_str(&format!("--- a/{rel}\n+++ b/{rel}\n"));
    out.push_str(&format!(
        "@@ -{},{old_count} +{},{new_count} @@\n",
        old_start + 1,
        new_start + 1
    ));
    for line in &old_lines[old_start..prefix] {
        out.push_str(&format!(" {line}\n"));
    }
    for line in old_mid {
        out.push_str(&format!("-{line}\n"));
    }
    for line in new_mid {
        out.push_str(&format!("+{line}\n"));
    }
    let tail = old_lines.len() - suffix;
    for line in &old_lines[tail..tail + ctx_after] {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn finding_with(fix: Option<SuggestedFix>) -> Finding {
        Finding {
            rule: "D2",
            severity: Severity::Error,
            file: "crates/x/src/a.rs".into(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
            fix,
        }
    }

    #[test]
    fn apply_splices_sorted_nonoverlapping_spans() {
        let src = "let a = thread_rng();\nlet b = thread_rng();\n";
        let findings = vec![
            finding_with(Some(SuggestedFix {
                start: 30,
                end: 42,
                replacement: "seeded()".into(),
            })),
            finding_with(Some(SuggestedFix {
                start: 8,
                end: 20,
                replacement: "seeded()".into(),
            })),
        ];
        let (out, n) = apply(src, &findings);
        assert_eq!(n, 2);
        assert_eq!(out, "let a = seeded();\nlet b = seeded();\n");
    }

    #[test]
    fn overlapping_and_out_of_bounds_fixes_are_skipped() {
        let src = "abcdef";
        let findings = vec![
            finding_with(Some(SuggestedFix {
                start: 1,
                end: 4,
                replacement: "X".into(),
            })),
            finding_with(Some(SuggestedFix {
                start: 3,
                end: 5,
                replacement: "Y".into(),
            })),
            finding_with(Some(SuggestedFix {
                start: 5,
                end: 99,
                replacement: "Z".into(),
            })),
            finding_with(None),
        ];
        let (out, n) = apply(src, &findings);
        assert_eq!(n, 1);
        assert_eq!(out, "aXef");
    }

    #[test]
    fn unified_diff_has_headers_hunk_and_context() {
        let old = "a\nb\nc\nd\ne\nf\ng\n";
        let new = "a\nb\nc\nD\ne\nf\ng\n";
        let diff = unified_diff("crates/x/src/a.rs", old, new);
        assert!(diff.starts_with("--- a/crates/x/src/a.rs\n+++ b/crates/x/src/a.rs\n"));
        assert!(diff.contains("@@ -1,7 +1,7 @@\n"), "{diff}");
        assert!(diff.contains("-d\n+D\n"), "{diff}");
        // Three lines of context either side.
        assert!(diff.contains(" a\n b\n c\n-d\n"), "{diff}");
        assert!(diff.ends_with("+D\n e\n f\n g\n"), "{diff}");
    }

    #[test]
    fn identical_texts_diff_to_nothing() {
        assert_eq!(unified_diff("x", "same\n", "same\n"), "");
    }
}
