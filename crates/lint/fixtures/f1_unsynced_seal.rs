// Bad example for rule F1 (segment seal): the tail is fsynced before
// the rename, but the parent directory never is — so the sealed segment
// name itself can vanish in a power cut, resurrecting the tail under
// its old name on one boot and the segment on the next.

use std::path::Path;

pub fn seal_segment(tail: &Path, sealed: &Path) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(tail)?;
    file.sync_all()?; // the data is durable…
    std::fs::rename(tail, sealed) // …but the rename is not
}
