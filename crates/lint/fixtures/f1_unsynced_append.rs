// Bad example for rule F1 (in-place write sites): a WAL-tail append and
// a delta-frame append that reach the page cache but never fsync. The
// caller acknowledges the record, the machine loses power, and the
// "durable" suffix evaporates — exactly the torn-tail class the
// recovery suite injects.

use std::io::Write;
use std::path::Path;

pub fn append_wal_record(path: &Path, line: &str) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())?;
    file.flush()?; // library-buffer flush, not an fsync
    Ok(())
}

pub fn append_delta_frame(path: &Path, frame: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(frame)
}
