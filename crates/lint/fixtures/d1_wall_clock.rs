// Bad example for rule D1: reads the wall clock outside the virtual
// clock module. Any timing read from the host makes seeded replay
// diverge between runs and machines.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn elapsed_nanos() -> u128 {
    let t0 = Instant::now();
    busy_work();
    t0.elapsed().as_nanos()
}

pub fn epoch_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn busy_work() {}
