// Bad example for rule D3: iterating a HashMap while serializing. The
// iteration order is randomized per process, so the emitted JSONL
// differs between two identical runs.

use std::collections::HashMap;

pub struct Report {
    counts: HashMap<String, u64>,
}

pub fn to_jsonl(report: &Report) -> String {
    let mut out = String::new();
    for (key, n) in report.counts.iter() {
        out.push_str(&format!("{{\"key\":\"{key}\",\"n\":{n}}}\n"));
    }
    out
}

// The compliant version: collect and sort before emitting. The same
// iteration does not fire because the statement sorts.
pub fn to_jsonl_sorted(report: &Report) -> String {
    let mut rows: Vec<(&String, &u64)> = report.counts.iter().collect();
    rows.sort();
    let mut out = String::new();
    for (key, n) in rows {
        out.push_str(&format!("{{\"key\":\"{key}\",\"n\":{n}}}\n"));
    }
    out
}
