// Bad example for rule L1: two functions taking the same pair of locks
// in opposite order. Thread 1 in `transfer` holding `ledger` while
// thread 2 in `audit` holds `journal` deadlocks both.

use parking_lot::Mutex;

pub struct Bank {
    pub ledger: Mutex<u64>,
    pub journal: Mutex<Vec<String>>,
}

pub fn transfer(ledger: &Mutex<u64>, journal: &Mutex<Vec<String>>, amount: u64) {
    let mut balance = ledger.lock();
    let mut log = journal.lock();
    *balance += amount;
    log.push(format!("+{amount}"));
}

pub fn audit(ledger: &Mutex<u64>, journal: &Mutex<Vec<String>>) -> usize {
    let log = journal.lock();
    let _balance = ledger.lock();
    log.len()
}
