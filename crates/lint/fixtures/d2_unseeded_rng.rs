// Bad example for rule D2: RNGs seeded from environment entropy. A
// `thread_rng`/`OsRng` draw is different on every run, so any value it
// feeds into a simulation breaks byte-identical replay.

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn roll_os() -> u64 {
    let mut rng = OsRng;
    rng.next_u64()
}

pub fn reseed() -> StdRng {
    StdRng::from_entropy()
}

pub fn convenience() -> f64 {
    rand::random()
}
