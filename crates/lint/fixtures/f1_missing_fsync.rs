// Bad example for rule F1: a durable-looking write that never fsyncs.
// The data reaches the page cache, the rename reorders freely against
// it, and a power cut can leave an empty (or stale) file behind the
// "committed" name.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

pub fn save_snapshot(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.flush()?; // flush() is a library-buffer flush, not an fsync
    fs::rename(&tmp, path)?;
    Ok(())
}
