// Bad example for rule P1: panicking on malformed input inside a
// recovery path. A torn WAL tail is an *expected* input after a crash;
// unwrap/expect/panic! here turns one crash into a permanently
// unbootable runtime.

pub fn wal_replay(text: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (seq, _rest) = line.split_once('\t').expect("well-formed record");
        out.push(seq.parse().unwrap());
    }
    out
}

pub fn load_snapshot(bytes: &[u8]) -> String {
    match std::str::from_utf8(bytes) {
        Ok(s) => s.to_string(),
        Err(_) => panic!("snapshot is not UTF-8"),
    }
}
