//! Round-trip proof for the autofix engine: applying every suggested
//! fix to a fixture and re-scanning must leave it lint-clean (or, for
//! the partially-fixable P1 fixture, leave exactly the unfixable
//! finding). A fix that survives its own re-scan is a rule bug.

use aida_lint::rules::{self, Finding};
use aida_lint::{fix, Config};
use std::path::PathBuf;

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    (name.to_string(), src)
}

fn fixture_cfg(rel: &str) -> Config {
    let mut cfg = Config::default_config();
    cfg.serializer_modules = vec![rel.to_string()];
    cfg.durability_files = vec![rel.to_string()];
    cfg.recovery_files = vec![rel.to_string()];
    cfg
}

fn scan(rel: &str, src: &str) -> Vec<Finding> {
    rules::scan_file(rel, src, &fixture_cfg(rel))
}

/// Scan → apply every fix → re-scan; returns (fixes applied, findings
/// remaining, fixed source).
fn round_trip(name: &str) -> (usize, Vec<Finding>, String) {
    let (rel, src) = fixture(name);
    let findings = scan(&rel, &src);
    assert!(!findings.is_empty(), "{name}: fixture must fire");
    let (fixed, applied) = fix::apply(&src, &findings);
    let remaining = scan(&rel, &fixed);
    (applied, remaining, fixed)
}

#[test]
fn d2_fixture_fixes_to_clean() {
    let (rel, src) = fixture("d2_unseeded_rng.rs");
    let findings = scan(&rel, &src);
    // Every entropy source in the fixture is mechanically fixable.
    assert!(findings.iter().all(|f| f.fix.is_some()), "{findings:?}");
    let (applied, remaining, fixed) = round_trip("d2_unseeded_rng.rs");
    assert!(applied >= 4, "applied {applied}");
    assert!(remaining.is_empty(), "{remaining:?}\n{fixed}");
    assert!(fixed.contains("StdRng::seed_from_u64(0)"), "{fixed}");
    assert!(!fixed.contains("thread_rng()"), "{fixed}");
}

#[test]
fn f1_missing_fsync_fixes_to_clean() {
    let (applied, remaining, fixed) = round_trip("f1_missing_fsync.rs");
    assert_eq!(applied, 2, "{fixed}");
    assert!(remaining.is_empty(), "{remaining:?}\n{fixed}");
    // The fsync lands after the last buffered write, before the rename
    // publishes the file; the parent-dir fsync lands after the rename.
    let sync = fixed.find("file.sync_all()?;").expect("sync_all inserted");
    let rename = fixed.find("fs::rename").expect("rename kept");
    assert!(sync < rename, "{fixed}");
    assert!(fixed.contains("sync_parent_dir(path)?;"), "{fixed}");
}

#[test]
fn f1_append_fixture_fixes_both_statement_and_tail_forms() {
    let (applied, remaining, fixed) = round_trip("f1_unsynced_append.rs");
    assert_eq!(applied, 2, "{fixed}");
    assert!(remaining.is_empty(), "{remaining:?}\n{fixed}");
    // Statement form: a new `sync_all` statement after the flush.
    assert!(fixed.contains("file.sync_all()?;"), "{fixed}");
    // Tail form: the write is `?`-terminated and the fsync becomes the
    // new tail expression.
    assert!(fixed.contains("file.write_all(frame)?;"), "{fixed}");
    assert!(fixed.trim_end().ends_with("file.sync_all()\n}"), "{fixed}");
}

#[test]
fn f1_seal_fixture_gets_a_parent_dir_fsync_tail() {
    let (applied, remaining, fixed) = round_trip("f1_unsynced_seal.rs");
    assert_eq!(applied, 1, "{fixed}");
    assert!(remaining.is_empty(), "{remaining:?}\n{fixed}");
    assert!(fixed.contains("std::fs::rename(tail, sealed)?;"), "{fixed}");
    assert!(fixed.contains("sync_parent_dir(sealed)"), "{fixed}");
}

#[test]
fn p1_fixes_unwraps_but_leaves_the_macro_to_a_human() {
    let (rel, src) = fixture("p1_panic_recovery.rs");
    let findings = scan(&rel, &src);
    let fixable: Vec<_> = findings.iter().filter(|f| f.fix.is_some()).collect();
    // `.expect(..)` and `.unwrap()` rewrite to `?`; `panic!` does not.
    assert_eq!(fixable.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.fix.is_none() && f.message.contains("panic")));
    let (applied, remaining, fixed) = round_trip("p1_panic_recovery.rs");
    assert_eq!(applied, 2);
    assert_eq!(remaining.len(), 1, "{remaining:?}");
    assert!(remaining[0].message.contains("panic"), "{remaining:?}");
    assert!(fixed.contains("line.split_once('\\t')?"), "{fixed}");
    assert!(fixed.contains("seq.parse()?"), "{fixed}");
    assert!(!fixed.contains(".unwrap()"), "{fixed}");
}

#[test]
fn dry_run_diff_shape_for_a_fixture() {
    let (rel, src) = fixture("d2_unseeded_rng.rs");
    let findings = scan(&rel, &src);
    let (fixed, _) = fix::apply(&src, &findings);
    let diff = fix::unified_diff(&rel, &src, &fixed);
    assert!(diff.starts_with("--- a/d2_unseeded_rng.rs\n+++ b/d2_unseeded_rng.rs\n"));
    assert!(diff.contains("@@ -"), "{diff}");
    assert!(diff.contains("-    let mut rng = thread_rng();"), "{diff}");
    assert!(
        diff.contains("+    let mut rng = StdRng::seed_from_u64(0);"),
        "{diff}"
    );
}

#[test]
fn jsonl_export_carries_fixture_fixes() {
    let (rel, src) = fixture("f1_missing_fsync.rs");
    let findings = scan(&rel, &src);
    let jsonl = aida_lint::report::render_jsonl(&findings, &[], 1);
    assert!(jsonl.contains("\"suggested_fix\""), "{jsonl}");
    assert!(jsonl.contains("sync_parent_dir"), "{jsonl}");
}
