//! Property tests for the lint lexer: it must be *total* (never panic,
//! never loop) and span-faithful (tokens tile the source with only
//! whitespace between them) on arbitrary byte soup, because it runs
//! over every file in the workspace including ones mid-edit.

use aida_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

fn assert_spans_tile(src: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let toks = lex(src);
    let mut prev_end = 0usize;
    for t in &toks {
        prop_assert!(t.start >= prev_end, "overlap at {}..{}", t.start, t.end);
        prop_assert!(t.end > t.start, "empty token at {}", t.start);
        prop_assert!(t.end <= src.len());
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        prop_assert!(
            src[prev_end..t.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?}",
            &src[prev_end..t.start]
        );
        prev_end = t.end;
    }
    prop_assert!(
        src[prev_end..].chars().all(char::is_whitespace),
        "non-whitespace tail {:?}",
        &src[prev_end..]
    );
    // Lines are monotone non-decreasing and 1-based.
    let mut last_line = 1usize;
    for t in &toks {
        prop_assert!(t.line >= last_line);
        last_line = t.line;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    // Printable-ASCII soup: covers quotes, hashes, braces, slashes —
    // every literal/comment opener — in arbitrary, mostly-invalid
    // arrangements.
    #[test]
    fn lexer_never_panics_and_spans_tile(src in "[ -~\n\t]{0,120}") {
        assert_spans_tile(&src)?;
    }

    // Rust-flavored soup biased toward the characters with tricky
    // lexical state: quotes, hashes, slashes, stars (raw strings, char
    // vs lifetime, nested comments), plus digits and dots for numeric
    // edge cases like `1.5e-` and `0x_`.
    #[test]
    fn lexer_handles_rusty_fragments(
        head in "[rb#\"'/\\*]{0,24}",
        tail in "[a-z0-9_\"'#/\\*{}().;:e\\-x ]{0,60}",
    ) {
        let src = format!("{head}{tail}");
        assert_spans_tile(&src)?;
    }

    // Token texts round-trip: re-lexing the concatenation of token
    // texts (joined by single spaces) yields the same kind sequence for
    // sources without raw-string/comment ambiguity... which we enforce
    // by only generating idents, numbers, and simple punctuation.
    #[test]
    fn simple_token_streams_round_trip(src in "[a-z_0-9+=;,<>() ]{0,80}") {
        let toks = lex(&src);
        let joined: String = toks
            .iter()
            .map(|t| t.text(&src))
            .collect::<Vec<_>>()
            .join(" ");
        let relexed = lex(&joined);
        prop_assert_eq!(toks.len(), relexed.len());
        for (a, b) in toks.iter().zip(relexed.iter()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.text(&src), b.text(&joined));
        }
    }
}

#[test]
fn pathological_inputs_terminate() {
    // Worst cases for each lexical mode, incl. unterminated everything.
    let cases = [
        "\"".repeat(2000),
        "r#".repeat(1500),
        "/*".repeat(1500),
        "'".repeat(3000),
        "1.".repeat(2000),
        "🦀'🦀\"🦀/*🦀".repeat(200),
        format!("r{}\"never closed", "#".repeat(500)),
    ];
    for src in &cases {
        let toks = lex(src);
        assert!(!toks.is_empty());
        assert_eq!(toks.last().unwrap().end, src.len());
    }
}

#[test]
fn kinds_are_stable_on_real_code() {
    // Smoke: lex this very test file and check basic invariants.
    let src = std::fs::read_to_string(file!()).or_else(|_| {
        std::fs::read_to_string(
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lexer_props.rs"),
        )
    });
    let src = src.expect("can read own source");
    let toks = lex(&src);
    assert!(toks.iter().any(|t| t.kind == TokKind::Ident));
    assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
    assert_eq!(toks.last().unwrap().end, src.trim_end().len());
}
