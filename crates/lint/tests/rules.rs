//! Fixture-based proof that every rule family fires, plus end-to-end
//! determinism of the workspace run.

use aida_lint::rules::{self, Finding};
use aida_lint::{baseline, Config};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    (name.to_string(), src)
}

/// A config whose per-file rule scoping targets the fixture itself.
fn fixture_cfg(rel: &str) -> Config {
    let mut cfg = Config::default_config();
    cfg.serializer_modules = vec![rel.to_string()];
    cfg.durability_files = vec![rel.to_string()];
    cfg.recovery_files = vec![rel.to_string()];
    cfg
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn d1_fixture_fires() {
    let (rel, src) = fixture("d1_wall_clock.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["D1"], "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("Instant")));
}

#[test]
fn d2_fixture_fires() {
    let (rel, src) = fixture("d2_unseeded_rng.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["D2"], "{findings:?}");
    // All four entropy sources in the fixture are caught.
    assert!(findings.len() >= 4, "{findings:?}");
}

#[test]
fn d3_fixture_fires_only_on_unsorted_iteration() {
    let (rel, src) = fixture("d3_unsorted_iter.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["D3"], "{findings:?}");
    // Exactly one: `to_jsonl` fires, `to_jsonl_sorted` does not.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].snippet.contains("counts.iter()"));
}

#[test]
fn f1_fixture_fires_for_both_missing_fsyncs() {
    let (rel, src) = fixture("f1_missing_fsync.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["F1"], "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("sync_all")));
    assert!(findings.iter().any(|f| f.message.contains("parent")));
}

#[test]
fn f1_fixture_fires_for_unsynced_in_place_writes() {
    let (rel, src) = fixture("f1_unsynced_append.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["F1"], "{findings:?}");
    // Both append sites fire the sync_all finding; neither renames, so
    // the parent-directory finding stays quiet.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .all(|f| f.message.contains("in-place writes")));
}

#[test]
fn f1_fixture_fires_for_seal_without_dir_fsync() {
    let (rel, src) = fixture("f1_unsynced_seal.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["F1"], "{findings:?}");
    // sync_all is present, so only the parent-directory finding fires.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("parent"));
}

#[test]
fn p1_fixture_fires_for_every_panic_site() {
    let (rel, src) = fixture("p1_panic_recovery.rs");
    let findings = rules::scan_file(&rel, &src, &fixture_cfg(&rel));
    assert_eq!(rules_fired(&findings), vec!["P1"], "{findings:?}");
    // expect + unwrap in wal_replay, panic! in load_snapshot.
    assert_eq!(findings.len(), 3, "{findings:?}");
}

#[test]
fn l1_fixture_fires_on_the_cycle() {
    let (rel, src) = fixture("l1_lock_cycle.rs");
    let seqs = rules::lock_sequences(&rel, &src);
    let findings = rules::rule_l1_lock_cycles(&seqs);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "L1");
    assert!(findings[0].message.contains("ledger"));
    assert!(findings[0].message.contains("journal"));
}

#[test]
fn baseline_suppresses_a_fixture_finding() {
    let (rel, src) = fixture("d3_unsorted_iter.rs");
    let cfg = fixture_cfg(&rel);
    let findings = rules::scan_file(&rel, &src, &cfg);
    let allow = baseline::Allow {
        rule: "D3".into(),
        file: rel.clone(),
        contains: "counts.iter".into(),
        reason: "fixture exercise".into(),
    };
    let (new, baselined) = baseline::apply_baseline(findings, &[allow]);
    assert!(new.is_empty(), "{new:?}");
    assert_eq!(baselined.len(), 1);
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_run_is_deterministic_and_clean() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("config loads");
    let a = aida_lint::run(&root, &cfg).expect("first run");
    let b = aida_lint::run(&root, &cfg).expect("second run");
    // Byte-identical JSONL across two runs is the determinism contract
    // ci.sh also `cmp`s.
    assert_eq!(a.jsonl(), b.jsonl());
    assert!(a.files_scanned > 50, "scanned {}", a.files_scanned);
    // The workspace itself stays clean above the checked-in baseline.
    assert!(
        a.new.is_empty(),
        "new findings above baseline:\n{}",
        a.text()
    );
}

#[test]
fn fixtures_are_excluded_from_the_workspace_walk() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("config loads");
    let report = aida_lint::run(&root, &cfg).expect("run");
    // None of the deliberately-bad fixture files may leak into the scan:
    // the jsonl would otherwise carry their findings.
    assert!(!report.jsonl().contains("fixtures/"));
}

#[test]
fn jsonl_paths_are_relative_forward_slash() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("config loads");
    let report = aida_lint::run(&root, &cfg).expect("run");
    let jsonl = report.jsonl();
    assert!(!jsonl.contains(&root.display().to_string()));
    assert!(!jsonl.contains('\\'), "backslash in report: {jsonl}");
}

#[test]
fn config_path_scoping_matches_suffixes() {
    // durability_files entries match by suffix, so the checked-in
    // config's entries bind to real files.
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("config loads");
    for rel in cfg
        .serializer_modules
        .iter()
        .chain(cfg.durability_files.iter())
        .chain(cfg.recovery_files.iter())
        .chain(std::iter::once(&cfg.clock_file))
    {
        assert!(
            Path::new(&root).join(rel).is_file(),
            "lint.toml references missing file {rel}"
        );
    }
}
