//! # netsim — a deterministic in-process network fabric
//!
//! A discrete-event stand-in for a TCP stack, so the serving layer's
//! listener can be soaked with thousands of connections — partial
//! reads, partial writes, reordered readiness, and mid-frame
//! disconnects included — without opening a socket and without giving
//! up byte-identical replay.
//!
//! The model: every connection is a pair of one-way pipes. A send is
//! split into 1..=`max_chunk`-byte segments, each assigned a seeded
//! propagation delay; a segment becomes readable once virtual time
//! passes its delivery instant. Per-pipe delivery is FIFO (delays are
//! monotone within a pipe), but *across* connections readiness order is
//! a seeded shuffle — the interleaving a real `poll(2)` loop would see,
//! minus the nondeterminism.
//!
//! Everything is keyed off one [`KeyedRng`] advanced only by the
//! single-threaded simulation loop, so the whole fabric replays exactly
//! at the same seed.

use aida_llm::noise::KeyedRng;
use std::collections::{BTreeMap, VecDeque};
use std::io;

/// Tuning knobs for the simulated fabric. Shrinking `max_chunk` /
/// `max_write` injects aggressive partial reads and writes.
#[derive(Debug, Clone)]
pub struct NetSimConfig {
    /// Seed for chunking, delays, and readiness shuffles.
    pub seed: u64,
    /// Mean per-segment propagation delay (virtual seconds).
    pub mean_delay_s: f64,
    /// Largest contiguous segment a send is split into (>= 1). One
    /// `read` returns at most one segment, so this caps read sizes.
    pub max_chunk: usize,
    /// Most bytes one `write` call accepts (>= 1); the remainder is
    /// reported as a short write, as a congested socket would.
    pub max_write: usize,
}

impl Default for NetSimConfig {
    fn default() -> Self {
        NetSimConfig {
            seed: 0,
            mean_delay_s: 0.01,
            max_chunk: 512,
            max_write: 4096,
        }
    }
}

#[derive(Debug)]
struct Segment {
    deliver_s: f64,
    bytes: Vec<u8>,
    offset: usize,
}

#[derive(Debug, Default)]
struct Pipe {
    segments: VecDeque<Segment>,
    /// Last scheduled delivery instant — keeps the pipe FIFO.
    last_deliver_s: f64,
    /// Clean-close instant (readable as EOF once queued data drains).
    fin_s: Option<f64>,
}

impl Pipe {
    fn readable_at(&self, now_s: f64) -> bool {
        self.segments
            .front()
            .is_some_and(|seg| seg.deliver_s <= now_s)
    }

    fn eof_at(&self, now_s: f64) -> bool {
        self.segments.is_empty() && self.fin_s.is_some_and(|fin| fin <= now_s)
    }
}

#[derive(Debug)]
struct Conn {
    connect_s: f64,
    accepted: bool,
    /// Abrupt client disconnect instant (undelivered bytes dropped).
    abort_s: Option<f64>,
    server_closed: bool,
    to_server: Pipe,
    to_client: Pipe,
}

/// The simulated fabric: both ends of every connection, one virtual
/// clock, one seeded RNG. The server side (accept/poll/read/write) is
/// consumed by the listener; the client side (`connect`/`client_send`/
/// `client_recv`/...) by the closed-loop driver.
#[derive(Debug)]
pub struct NetSim {
    cfg: NetSimConfig,
    rng: KeyedRng,
    conns: BTreeMap<usize, Conn>,
    next_token: usize,
    now_s: f64,
}

impl NetSim {
    /// Creates a fabric with the given knobs.
    pub fn new(cfg: NetSimConfig) -> NetSim {
        let rng = KeyedRng::new(cfg.seed ^ 0x6E65_7473_696D_0001);
        NetSim {
            cfg,
            rng,
            conns: BTreeMap::new(),
            next_token: 0,
            now_s: 0.0,
        }
    }

    /// Creates a fabric with default knobs and the given seed.
    pub fn seeded(seed: u64) -> NetSim {
        NetSim::new(NetSimConfig {
            seed,
            ..NetSimConfig::default()
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Advances virtual time (never backwards).
    pub fn advance(&mut self, now_s: f64) {
        if now_s > self.now_s {
            self.now_s = now_s;
        }
    }

    /// The next instant at which anything changes: a pending connect, a
    /// segment delivery, or a queued FIN. `None` when fully quiescent.
    pub fn next_event_s(&self) -> Option<f64> {
        let mut next = f64::INFINITY;
        let mut fold = |t: f64| {
            if t > self.now_s && t < next {
                next = t;
            }
        };
        for conn in self.conns.values() {
            if !conn.accepted {
                fold(conn.connect_s);
            }
            for pipe in [&conn.to_server, &conn.to_client] {
                if let Some(seg) = pipe.segments.front() {
                    fold(seg.deliver_s);
                }
                if let Some(fin) = pipe.fin_s {
                    fold(fin);
                }
            }
        }
        next.is_finite().then_some(next)
    }

    fn transmit(rng: &mut KeyedRng, cfg: &NetSimConfig, pipe: &mut Pipe, now_s: f64, bytes: &[u8]) {
        let mut at = pipe.last_deliver_s.max(now_s);
        let mut off = 0;
        while off < bytes.len() {
            let n = (bytes.len() - off).min(1 + rng.below(cfg.max_chunk.max(1)));
            at += cfg.mean_delay_s * (0.5 + rng.next_f64());
            pipe.segments.push_back(Segment {
                deliver_s: at,
                bytes: bytes[off..off + n].to_vec(),
                offset: 0,
            });
            pipe.last_deliver_s = at;
            off += n;
        }
    }

    fn shuffled(&mut self, mut tokens: Vec<usize>) -> Vec<usize> {
        for i in (1..tokens.len()).rev() {
            tokens.swap(i, self.rng.below(i + 1));
        }
        tokens
    }

    // ----- client side -------------------------------------------------

    /// Opens a connection that the server can accept from `at_s` on.
    /// Returns the connection token shared by both ends.
    pub fn connect(&mut self, at_s: f64) -> usize {
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(
            token,
            Conn {
                connect_s: at_s.max(self.now_s),
                accepted: false,
                abort_s: None,
                server_closed: false,
                to_server: Pipe::default(),
                to_client: Pipe::default(),
            },
        );
        token
    }

    /// Queues bytes toward the server (chunked, delayed). Sends on an
    /// aborted or closed connection are dropped on the floor, exactly
    /// like packets after a RST.
    pub fn client_send(&mut self, token: usize, bytes: &[u8]) {
        let now = self.now_s;
        let mut rng = self.rng.clone();
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.abort_s.is_some() || conn.to_server.fin_s.is_some() {
                return;
            }
            Self::transmit(&mut rng, &self.cfg, &mut conn.to_server, now, bytes);
            self.rng = rng;
        }
    }

    /// Drains every server->client byte delivered by now.
    pub fn client_recv(&mut self, token: usize) -> Vec<u8> {
        let now = self.now_s;
        let mut out = Vec::new();
        if let Some(conn) = self.conns.get_mut(&token) {
            while conn.to_client.readable_at(now) {
                let seg = conn.to_client.segments.pop_front().expect("front checked");
                out.extend_from_slice(&seg.bytes[seg.offset..]);
            }
        }
        out
    }

    /// Whether the client end has delivered bytes waiting.
    pub fn client_readable(&self, token: usize) -> bool {
        self.conns
            .get(&token)
            .is_some_and(|conn| conn.to_client.readable_at(self.now_s))
    }

    /// Cleanly closes the client end: queued bytes still deliver, then
    /// the server reads EOF.
    pub fn client_close(&mut self, token: usize) {
        let now = self.now_s;
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.to_server.fin_s.is_none() {
                conn.to_server.fin_s = Some(conn.to_server.last_deliver_s.max(now));
            }
        }
    }

    /// Abruptly disconnects the client: bytes not yet delivered are
    /// dropped (this is how a mid-frame disconnect is injected), reads
    /// on the server side fail with `ConnectionReset` once drained, and
    /// server writes fail with `BrokenPipe` immediately.
    pub fn client_abort(&mut self, token: usize) {
        let now = self.now_s;
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.abort_s.is_none() {
                conn.abort_s = Some(now);
                conn.to_server.segments.retain(|seg| seg.deliver_s <= now);
                conn.to_client.segments.clear();
                conn.to_server.fin_s = None;
            }
        }
    }

    // ----- server side -------------------------------------------------

    /// Connections that have arrived and not yet been accepted, in a
    /// seeded order.
    pub fn accept(&mut self) -> Vec<usize> {
        let now = self.now_s;
        let fresh: Vec<usize> = self
            .conns
            .iter_mut()
            .filter(|(_, conn)| !conn.accepted && conn.connect_s <= now)
            .map(|(token, conn)| {
                conn.accepted = true;
                *token
            })
            .collect();
        self.shuffled(fresh)
    }

    /// Accepted, server-open connections with something to report:
    /// delivered bytes, a reachable EOF, or an abort. Seeded order.
    pub fn poll(&mut self) -> Vec<usize> {
        let now = self.now_s;
        let ready: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                conn.accepted
                    && !conn.server_closed
                    && (conn.to_server.readable_at(now)
                        || conn.to_server.eof_at(now)
                        || conn.abort_s.is_some_and(|at| at <= now))
            })
            .map(|(token, _)| *token)
            .collect();
        self.shuffled(ready)
    }

    /// Nonblocking read on the server end. Returns at most one
    /// delivered segment per call (partial reads are the norm);
    /// `Ok(0)` is a clean EOF, `WouldBlock` means undelivered data (or
    /// none yet), `ConnectionReset` reports a client abort.
    pub fn read(&mut self, token: usize, buf: &mut [u8]) -> io::Result<usize> {
        let now = self.now_s;
        let conn = self
            .conns
            .get_mut(&token)
            .filter(|conn| conn.accepted && !conn.server_closed)
            .ok_or_else(|| io::Error::from(io::ErrorKind::NotConnected))?;
        if conn.to_server.readable_at(now) {
            let seg = conn.to_server.segments.front_mut().expect("front checked");
            let n = buf.len().min(seg.bytes.len() - seg.offset);
            buf[..n].copy_from_slice(&seg.bytes[seg.offset..seg.offset + n]);
            seg.offset += n;
            if seg.offset == seg.bytes.len() {
                conn.to_server.segments.pop_front();
            }
            return Ok(n);
        }
        if conn.abort_s.is_some_and(|at| at <= now) {
            return Err(io::Error::from(io::ErrorKind::ConnectionReset));
        }
        if conn.to_server.eof_at(now) {
            return Ok(0);
        }
        Err(io::Error::from(io::ErrorKind::WouldBlock))
    }

    /// Nonblocking write on the server end: accepts at most
    /// `max_write` bytes (short writes exercise the caller's
    /// out-buffer), queues them toward the client with seeded delays.
    pub fn write(&mut self, token: usize, bytes: &[u8]) -> io::Result<usize> {
        let now = self.now_s;
        let mut rng = self.rng.clone();
        let cfg = self.cfg.clone();
        let conn = self
            .conns
            .get_mut(&token)
            .filter(|conn| conn.accepted && !conn.server_closed)
            .ok_or_else(|| io::Error::from(io::ErrorKind::NotConnected))?;
        if conn.abort_s.is_some_and(|at| at <= now) {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        }
        if bytes.is_empty() {
            return Ok(0);
        }
        let n = bytes.len().min(cfg.max_write.max(1));
        Self::transmit(&mut rng, &cfg, &mut conn.to_client, now, &bytes[..n]);
        self.rng = rng;
        Ok(n)
    }

    /// Closes the server end; further server reads/writes fail.
    pub fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.server_closed = true;
        }
    }

    /// Whether the server has closed its end of `token`.
    pub fn server_closed(&self, token: usize) -> bool {
        self.conns.get(&token).is_none_or(|conn| conn.server_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sim: &mut NetSim, token: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match sim.read(token, &mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        out
    }

    #[test]
    fn bytes_round_trip_in_order() {
        let mut sim = NetSim::seeded(7);
        let token = sim.connect(0.0);
        sim.advance(0.0);
        assert_eq!(sim.accept(), vec![token]);
        sim.client_send(token, b"hello fabric, this is a long-ish message");
        // Nothing is readable before its delivery instant.
        assert!(sim.poll().is_empty());
        let mut got = Vec::new();
        while let Some(t) = sim.next_event_s() {
            sim.advance(t);
            for ready in sim.poll() {
                got.extend(drain(&mut sim, ready));
            }
        }
        assert_eq!(got, b"hello fabric, this is a long-ish message");
    }

    #[test]
    fn same_seed_replays_identical_event_sequence() {
        let run = |seed: u64| {
            let mut sim = NetSim::seeded(seed);
            let a = sim.connect(0.0);
            let b = sim.connect(0.0);
            sim.advance(0.0);
            let order = sim.accept();
            sim.client_send(a, b"aaaaaaaaaaaaaaaaaaaaaaaa");
            sim.client_send(b, b"bbbbbbbbbbbbbbbbbbbbbbbb");
            let mut log: Vec<(usize, Vec<u8>)> = vec![];
            while let Some(t) = sim.next_event_s() {
                sim.advance(t);
                for ready in sim.poll() {
                    let bytes = drain(&mut sim, ready);
                    if !bytes.is_empty() {
                        log.push((ready, bytes));
                    }
                }
            }
            (order, log)
        };
        assert_eq!(run(3), run(3));
        // A different seed perturbs chunking/interleaving but not content.
        let (_, log3) = run(3);
        let (_, log4) = run(4);
        let cat = |log: &[(usize, Vec<u8>)], t: usize| -> Vec<u8> {
            log.iter()
                .filter(|(tok, _)| *tok == t)
                .flat_map(|(_, b)| b.clone())
                .collect()
        };
        assert_eq!(cat(&log3, 0), cat(&log4, 0));
        assert_eq!(cat(&log3, 1), cat(&log4, 1));
    }

    #[test]
    fn chunking_injects_partial_reads() {
        let mut sim = NetSim::new(NetSimConfig {
            seed: 1,
            max_chunk: 3,
            ..NetSimConfig::default()
        });
        let token = sim.connect(0.0);
        sim.advance(0.0);
        sim.accept();
        sim.client_send(token, b"0123456789");
        sim.advance(1e9);
        let mut buf = [0u8; 64];
        let first = sim.read(token, &mut buf).unwrap();
        assert!(first <= 3, "segment cap respected, got {first}");
        assert_eq!(drain(&mut sim, token).len(), 10 - first);
    }

    #[test]
    fn short_writes_respect_max_write() {
        let mut sim = NetSim::new(NetSimConfig {
            seed: 1,
            max_write: 4,
            ..NetSimConfig::default()
        });
        let token = sim.connect(0.0);
        sim.advance(0.0);
        sim.accept();
        assert_eq!(sim.write(token, b"0123456789").unwrap(), 4);
        assert_eq!(sim.write(token, b"456789").unwrap(), 4);
        assert_eq!(sim.write(token, b"89").unwrap(), 2);
        sim.advance(1e9);
        assert_eq!(sim.client_recv(token), b"0123456789");
    }

    #[test]
    fn clean_close_yields_eof_after_data() {
        let mut sim = NetSim::seeded(9);
        let token = sim.connect(0.0);
        sim.advance(0.0);
        sim.accept();
        sim.client_send(token, b"tail");
        sim.client_close(token);
        sim.advance(1e9);
        assert_eq!(drain(&mut sim, token), b"tail");
        let mut buf = [0u8; 8];
        assert_eq!(sim.read(token, &mut buf).unwrap(), 0);
    }

    #[test]
    fn abort_drops_undelivered_bytes_and_resets() {
        let mut sim = NetSim::seeded(11);
        let token = sim.connect(0.0);
        sim.advance(0.0);
        sim.accept();
        sim.client_send(token, b"this frame will be torn off mid-flight");
        // Let a prefix deliver, then yank the cable.
        let first = sim.next_event_s().unwrap();
        sim.advance(first);
        let prefix = drain(&mut sim, token);
        sim.client_abort(token);
        sim.advance(1e9);
        assert!(prefix.len() < 39);
        let mut buf = [0u8; 64];
        let err = sim.read(token, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = sim.write(token, b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn server_close_disconnects_the_token() {
        let mut sim = NetSim::seeded(2);
        let token = sim.connect(0.0);
        sim.advance(0.0);
        sim.accept();
        sim.close(token);
        assert!(sim.server_closed(token));
        let mut buf = [0u8; 8];
        assert_eq!(
            sim.read(token, &mut buf).unwrap_err().kind(),
            io::ErrorKind::NotConnected
        );
        assert!(sim.poll().is_empty());
    }

    #[test]
    fn connects_are_not_visible_before_their_instant() {
        let mut sim = NetSim::seeded(5);
        let _early = sim.connect(1.0);
        let _late = sim.connect(5.0);
        sim.advance(0.5);
        assert!(sim.accept().is_empty());
        assert_eq!(sim.next_event_s(), Some(1.0));
        sim.advance(1.0);
        assert_eq!(sim.accept().len(), 1);
        sim.advance(5.0);
        assert_eq!(sim.accept().len(), 1);
    }
}
