//! # aida-testkit — deterministic crash-injection test harness
//!
//! Shared scaffolding for the durability test suite: per-test temp
//! directories (so `cargo test` is parallel-safe), byte-level file
//! corruption helpers, and re-exports of the crash-injection machinery
//! from [`aida_llm::snapshot`].
//!
//! The crash model these tools exercise: a process can die at any of the
//! [`CrashPoint`]s threaded through the snapshot-save and WAL-append
//! paths, possibly leaving a torn (prefix-only) write behind. Recovery
//! must land in either the pre-crash persisted state or the committed
//! state — never anything in between.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

pub mod netsim;

pub use aida_llm::snapshot::{CrashPoint, FailPlan};
pub use netsim::{NetSim, NetSimConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A per-test scratch directory, removed on drop.
///
/// The path embeds the label, the process id, and a process-wide
/// counter, so concurrently running tests (and concurrently running
/// `cargo test` invocations) never collide on artifact paths.
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Creates a fresh scratch directory under the system temp dir.
    pub fn new(label: &str) -> TestDir {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("aida-test-{label}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path).expect("create test dir");
        TestDir { path }
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for a named file inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Every crash point, for exhaustive matrix tests.
pub fn crash_points() -> &'static [CrashPoint] {
    &CrashPoint::ALL
}

/// Flips one byte of a file in place (torn-media simulation). The index
/// wraps modulo the file length. Panics on an empty or missing file.
pub fn corrupt_byte(path: &Path, index: usize) {
    let mut bytes = fs::read(path).expect("read file to corrupt");
    assert!(!bytes.is_empty(), "cannot corrupt an empty file");
    let i = index % bytes.len();
    bytes[i] ^= 0x5a;
    fs::write(path, bytes).expect("write corrupted file");
}

/// Drops the last `n` bytes of a file (truncated-write simulation).
/// Truncating more than the file holds leaves it empty.
pub fn truncate_tail(path: &Path, n: usize) {
    let bytes = fs::read(path).expect("read file to truncate");
    let keep = bytes.len().saturating_sub(n);
    fs::write(path, &bytes[..keep]).expect("write truncated file");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_dirs_are_distinct_and_cleaned_up() {
        let a = TestDir::new("x");
        let b = TestDir::new("x");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        fs::write(a.file("f.txt"), "data").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn corruption_helpers_change_exactly_what_they_claim() {
        let dir = TestDir::new("corrupt");
        let path = dir.file("f.bin");
        fs::write(&path, b"hello world").unwrap();

        corrupt_byte(&path, 1);
        let bytes = fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 11);
        assert_ne!(bytes[1], b'e');
        assert_eq!(bytes[0], b'h');

        truncate_tail(&path, 6);
        assert_eq!(fs::read(&path).unwrap().len(), 5);
        truncate_tail(&path, 100);
        assert_eq!(fs::read(&path).unwrap().len(), 0);
    }

    #[test]
    fn crash_point_matrix_is_exhaustive() {
        assert_eq!(crash_points().len(), 10);
        // The log-structured sites (segment seal, delta append, group
        // flush) all fire before their write commits, so the post-commit
        // set is still exactly the two acknowledge-lost points.
        let post: Vec<_> = crash_points()
            .iter()
            .filter(|p| p.is_post_commit())
            .collect();
        assert_eq!(post.len(), 2);
    }
}
