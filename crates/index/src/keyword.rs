//! Inverted keyword index with BM25 ranking.
//!
//! Used as the "secondary index over a data lake" tool the paper mentions:
//! agents search it instead of grepping every file. Documents are
//! tokenized into lowercase alphanumeric terms; scoring is classic
//! Okapi BM25 (k1 = 1.2, b = 0.75).

use crate::topk::TopK;
use crate::Hit;
use std::collections::HashMap;

const K1: f32 = 1.2;
const B: f32 = 0.75;

/// An inverted keyword index.
#[derive(Debug, Clone, Default)]
pub struct KeywordIndex {
    // term -> postings of (doc index, term frequency)
    postings: HashMap<String, Vec<(usize, u32)>>,
    ids: Vec<String>,
    doc_lens: Vec<u32>,
    total_len: u64,
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1)
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

impl KeywordIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a document's text under an id. Re-adding an id is not
    /// supported (build once per lake snapshot).
    pub fn add(&mut self, id: &str, text: &str) {
        let doc = self.ids.len();
        self.ids.push(id.to_string());
        let terms = tokenize(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &terms {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            self.postings.entry(term).or_default().push((doc, count));
        }
        self.doc_lens.push(terms.len() as u32);
        self.total_len += terms.len() as u64;
    }

    /// Number of documents indexed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the index has no documents.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> usize {
        self.postings
            .get(&term.to_ascii_lowercase())
            .map_or(0, Vec::len)
    }

    /// BM25 search; returns up to `k` hits, best first. Documents matching
    /// no query term are never returned.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let n = self.ids.len();
        if n == 0 {
            return Vec::new();
        }
        let avg_len = (self.total_len as f32 / n as f32).max(1.0);
        let mut scores: HashMap<usize, f32> = HashMap::new();
        for term in tokenize(query) {
            let Some(posting) = self.postings.get(&term) else {
                continue;
            };
            let df = posting.len() as f32;
            let idf = ((n as f32 - df + 0.5) / (df + 0.5) + 1.0).ln();
            for (doc, tf) in posting {
                let tf = *tf as f32;
                let len_norm = 1.0 - B + B * self.doc_lens[*doc] as f32 / avg_len;
                let term_score = idf * (tf * (K1 + 1.0)) / (tf + K1 * len_norm);
                *scores.entry(*doc).or_insert(0.0) += term_score;
            }
        }
        let mut topk = TopK::new(k);
        // Deterministic iteration order: by doc index.
        let mut entries: Vec<(usize, f32)> = scores.into_iter().collect();
        entries.sort_unstable_by_key(|(doc, _)| *doc);
        for (doc, score) in entries {
            topk.push(score, doc);
        }
        topk.into_sorted_vec()
            .into_iter()
            .map(|(score, doc)| Hit {
                id: self.ids[doc].clone(),
                score,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> KeywordIndex {
        let mut idx = KeywordIndex::new();
        idx.add(
            "national.csv",
            "national identity theft and fraud reports by year 2001 2024",
        );
        idx.add("alabama.csv", "alabama state fraud reports 2024");
        idx.add("pipeline.txt", "natural gas pipeline maintenance schedule");
        idx.add("trends.html", "identity theft trends over two decades");
        idx
    }

    #[test]
    fn search_ranks_relevant_docs_first() {
        let idx = build();
        let hits = idx.search("identity theft reports", 4);
        assert_eq!(hits[0].id, "national.csv");
        assert!(hits.iter().all(|h| h.id != "pipeline.txt"));
    }

    #[test]
    fn rare_terms_outweigh_common_terms() {
        let mut idx = KeywordIndex::new();
        for i in 0..20 {
            idx.add(&format!("common{i}"), "reports reports reports");
        }
        idx.add("rare", "reports unicorn");
        let hits = idx.search("unicorn reports", 1);
        assert_eq!(hits[0].id, "rare");
    }

    #[test]
    fn no_matching_terms_returns_empty() {
        let idx = build();
        assert!(idx.search("zzzz qqqq", 5).is_empty());
        assert!(idx.search("", 5).is_empty());
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = KeywordIndex::new();
        assert!(idx.search("anything", 3).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let idx = build();
        assert_eq!(idx.df("identity"), 2);
        assert_eq!(idx.df("IDENTITY"), 2);
        assert_eq!(idx.df("unicorn"), 0);
    }

    #[test]
    fn k_bounds_results() {
        let idx = build();
        assert_eq!(idx.search("reports", 1).len(), 1);
        assert!(idx.search("reports", 10).len() >= 2);
    }

    #[test]
    fn single_char_tokens_ignored() {
        let mut idx = KeywordIndex::new();
        idx.add("d", "a b c real words");
        assert_eq!(idx.df("a"), 0);
        assert_eq!(idx.df("real"), 1);
    }
}
