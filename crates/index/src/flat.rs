//! Exact brute-force vector search.

use crate::topk::TopK;
use crate::{Hit, VectorIndex};
use aida_llm::embed;

/// An exact cosine-similarity index: stores every vector and scans on
/// search. The right choice below a few tens of thousands of items — which
/// covers every lake in the paper's evaluation.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    ids: Vec<String>,
    vectors: Vec<Vec<f32>>,
}

impl FlatIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from `(id, vector)` pairs.
    pub fn from_items(items: impl IntoIterator<Item = (String, Vec<f32>)>) -> Self {
        let mut index = FlatIndex::new();
        for (id, v) in items {
            index.add(&id, v);
        }
        index
    }

    /// Iterates over `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f32])> {
        self.ids
            .iter()
            .zip(self.vectors.iter())
            .map(|(id, v)| (id.as_str(), v.as_slice()))
    }

    /// Returns the stored vector for an id.
    pub fn get(&self, id: &str) -> Option<&[f32]> {
        let idx = self.ids.iter().position(|i| i == id)?;
        Some(&self.vectors[idx])
    }
}

impl VectorIndex for FlatIndex {
    fn add(&mut self, id: &str, vector: Vec<f32>) {
        match self.ids.iter().position(|i| i == id) {
            Some(idx) => self.vectors[idx] = vector,
            None => {
                self.ids.push(id.to_string());
                self.vectors.push(vector);
            }
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut topk = TopK::new(k);
        for (id, v) in self.iter() {
            topk.push(embed::cosine(query, v), id);
        }
        topk.into_sorted_vec()
            .into_iter()
            .map(|(score, id)| Hit {
                id: id.to_string(),
                score,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_llm::Embedder;

    fn build() -> (FlatIndex, Embedder) {
        let e = Embedder::default();
        let mut idx = FlatIndex::new();
        idx.add("theft", e.embed("identity theft reports by year"));
        idx.add("fraud", e.embed("fraud complaints by state"));
        idx.add("gas", e.embed("natural gas pipeline maintenance"));
        (idx, e)
    }

    #[test]
    fn search_returns_most_similar_first() {
        let (idx, e) = build();
        let hits = idx.search(&e.embed("identity theft in 2024"), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, "theft");
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn add_replaces_existing_id() {
        let (mut idx, e) = build();
        let replacement = e.embed("completely different topic now");
        idx.add("theft", replacement.clone());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get("theft"), Some(replacement.as_slice()));
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let (idx, e) = build();
        let hits = idx.search(&e.embed("anything"), 10);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new();
        assert!(idx.search(&[1.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn get_retrieves_stored_vector() {
        let (idx, e) = build();
        let v = idx.get("fraud").unwrap();
        assert_eq!(v, e.embed("fraud complaints by state").as_slice());
        assert!(idx.get("missing").is_none());
    }
}
