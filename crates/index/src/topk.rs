//! Bounded top-k collection.
//!
//! A small binary min-heap keyed by score: pushing is O(log k), and the
//! final `into_sorted_vec` returns the best `k` items best-first. Ties are
//! broken deterministically by insertion order (earlier wins), which keeps
//! every search reproducible.

/// A bounded collector keeping the `k` highest-scoring items.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    // Min-heap: heap[0] is the *worst* retained item.
    heap: Vec<(f32, u64, T)>,
    counter: u64,
}

impl<T> TopK<T> {
    /// Creates a collector retaining at most `k` items.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: Vec::with_capacity(k.min(1024)),
            counter: 0,
        }
    }

    /// Number of retained items so far.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best score (the admission threshold), if full.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() == self.k {
            self.heap.first().map(|(s, _, _)| *s)
        } else {
            None
        }
    }

    /// Offers an item; it is retained if the collector is not yet full or
    /// the score beats the current worst.
    pub fn push(&mut self, score: f32, item: T) {
        if self.k == 0 {
            return;
        }
        let seq = self.counter;
        self.counter += 1;
        if self.heap.len() < self.k {
            self.heap.push((score, seq, item));
            self.sift_up(self.heap.len() - 1);
        } else if self.beats_worst(score, seq) {
            self.heap[0] = (score, seq, item);
            self.sift_down(0);
        }
    }

    fn beats_worst(&self, score: f32, _seq: u64) -> bool {
        match self.heap.first() {
            Some((worst, _, _)) => score > *worst,
            None => true,
        }
    }

    /// Consumes the collector, returning items best-first.
    pub fn into_sorted_vec(mut self) -> Vec<(f32, T)> {
        // Pop everything (worst-first), then reverse.
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(entry) = self.pop_worst() {
            out.push(entry);
        }
        out.reverse();
        out.into_iter().map(|(s, _, t)| (s, t)).collect()
    }

    fn pop_worst(&mut self) -> Option<(f32, u64, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let worst = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        worst
    }

    // Min-heap order: smaller score first; on equal scores, *later* sequence
    // first (so it is evicted before an earlier equal-scored item).
    fn less(&self, a: usize, b: usize) -> bool {
        let (sa, qa, _) = &self.heap[a];
        let (sb, qb, _) = &self.heap[b];
        match sa.partial_cmp(sb) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => qa > qb,
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_best_k() {
        let mut topk = TopK::new(3);
        for (score, id) in [(0.1, "a"), (0.9, "b"), (0.5, "c"), (0.7, "d"), (0.3, "e")] {
            topk.push(score, id);
        }
        let out = topk.into_sorted_vec();
        let ids: Vec<&str> = out.iter().map(|(_, id)| *id).collect();
        assert_eq!(ids, vec!["b", "d", "c"]);
    }

    #[test]
    fn fewer_than_k_returns_all_sorted() {
        let mut topk = TopK::new(10);
        topk.push(0.2, 1);
        topk.push(0.8, 2);
        let out = topk.into_sorted_vec();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 2);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut topk = TopK::new(0);
        topk.push(1.0, "x");
        assert!(topk.is_empty());
        assert!(topk.into_sorted_vec().is_empty());
    }

    #[test]
    fn ties_prefer_earlier_insertion() {
        let mut topk = TopK::new(2);
        topk.push(0.5, "first");
        topk.push(0.5, "second");
        topk.push(0.5, "third");
        let out = topk.into_sorted_vec();
        let ids: Vec<&str> = out.iter().map(|(_, id)| *id).collect();
        assert_eq!(ids, vec!["first", "second"]);
    }

    #[test]
    fn threshold_reports_kth_best() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), None);
        topk.push(0.9, ());
        assert_eq!(topk.threshold(), None);
        topk.push(0.4, ());
        assert_eq!(topk.threshold(), Some(0.4));
        topk.push(0.6, ());
        assert_eq!(topk.threshold(), Some(0.6));
    }

    proptest! {
        #[test]
        fn matches_naive_sort(scores in prop::collection::vec(0.0f32..1.0, 0..200), k in 0usize..20) {
            let mut topk = TopK::new(k);
            for (i, s) in scores.iter().enumerate() {
                topk.push(*s, i);
            }
            let got: Vec<f32> = topk.into_sorted_vec().into_iter().map(|(s, _)| s).collect();
            let mut expect = scores.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            expect.truncate(k);
            prop_assert_eq!(got, expect);
        }
    }
}
