//! IVF (inverted-file) approximate vector search.
//!
//! Vectors are partitioned into `nlist` cells by a k-means coarse
//! quantizer; a search probes the `nprobe` nearest cells and scans only
//! their members. With `nprobe == nlist` the result is exact, which the
//! property tests exploit.

use crate::topk::TopK;
use crate::{Hit, VectorIndex};
use aida_llm::embed;
use aida_llm::noise::KeyedRng;

/// An IVF index with a k-means coarse quantizer.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    nlist: usize,
    nprobe: usize,
    seed: u64,
    centroids: Vec<Vec<f32>>,
    /// One posting list per centroid: indices into `ids`/`vectors`.
    lists: Vec<Vec<usize>>,
    ids: Vec<String>,
    vectors: Vec<Vec<f32>>,
    trained: bool,
}

impl IvfIndex {
    /// Creates an index with `nlist` cells probing `nprobe` cells per
    /// search. Training happens lazily on first search (or via [`train`]).
    ///
    /// [`train`]: IvfIndex::train
    pub fn new(nlist: usize, nprobe: usize, seed: u64) -> Self {
        IvfIndex {
            nlist: nlist.max(1),
            nprobe: nprobe.max(1),
            seed,
            centroids: Vec::new(),
            lists: Vec::new(),
            ids: Vec::new(),
            vectors: Vec::new(),
            trained: false,
        }
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Cells probed per search.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Adjusts the probe width (clamped to `nlist`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.nlist);
    }

    /// Runs k-means (Lloyd's algorithm, fixed 8 iterations, deterministic
    /// seeding) and assigns every vector to its nearest centroid.
    pub fn train(&mut self) {
        let n = self.vectors.len();
        if n == 0 {
            self.trained = true;
            return;
        }
        let k = self.nlist.min(n);
        // Deterministic init: pick k distinct vectors.
        let mut rng = KeyedRng::new(self.seed);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let cand = rng.below(n);
            if !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        self.centroids = chosen.iter().map(|&i| self.vectors[i].clone()).collect();
        for _ in 0..8 {
            let mut sums: Vec<Vec<f32>> =
                self.centroids.iter().map(|c| vec![0.0; c.len()]).collect();
            let mut counts = vec![0usize; k];
            for v in &self.vectors {
                let c = self.nearest_centroid(v);
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v.iter()) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in sums.into_iter().zip(counts.iter()).enumerate() {
                if *count > 0 {
                    self.centroids[c] = sum.into_iter().map(|s| s / *count as f32).collect();
                }
            }
        }
        self.lists = vec![Vec::new(); k];
        for (i, v) in self.vectors.iter().enumerate() {
            let c = self.nearest_centroid(v);
            self.lists[c].push(i);
        }
        self.trained = true;
    }

    fn nearest_centroid(&self, v: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = embed::l2_sq(v, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn probe_cells(&self, query: &[f32]) -> Vec<usize> {
        let mut scored: Vec<(f32, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (embed::l2_sq(query, c), i))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        scored
            .into_iter()
            .take(self.nprobe.min(self.centroids.len()))
            .map(|(_, i)| i)
            .collect()
    }
}

impl VectorIndex for IvfIndex {
    fn add(&mut self, id: &str, vector: Vec<f32>) {
        match self.ids.iter().position(|i| i == id) {
            Some(idx) => self.vectors[idx] = vector,
            None => {
                self.ids.push(id.to_string());
                self.vectors.push(vector);
            }
        }
        self.trained = false;
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        // Lazily (re)train on a clone when called on an untrained index.
        if !self.trained {
            let mut fresh = self.clone();
            fresh.train();
            return fresh.search(query, k);
        }
        let mut topk = TopK::new(k);
        for cell in self.probe_cells(query) {
            for &i in &self.lists[cell] {
                topk.push(embed::cosine(query, &self.vectors[i]), i);
            }
        }
        topk.into_sorted_vec()
            .into_iter()
            .map(|(score, i)| Hit {
                id: self.ids[i].clone(),
                score,
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use aida_llm::Embedder;
    use proptest::prelude::*;

    fn corpus() -> Vec<(String, Vec<f32>)> {
        let e = Embedder::default();
        let topics = [
            "identity theft reports 2024",
            "identity theft reports 2001",
            "fraud complaints by state alabama",
            "fraud complaints by state alaska",
            "natural gas pipeline maintenance",
            "quarterly earnings call transcript",
            "employee stock option grants",
            "consumer sentinel network data book",
        ];
        topics
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("doc{i}"), e.embed(t)))
            .collect()
    }

    #[test]
    fn full_probe_matches_flat_exactly() {
        let items = corpus();
        let mut ivf = IvfIndex::new(3, 3, 7);
        let mut flat = FlatIndex::new();
        for (id, v) in &items {
            ivf.add(id, v.clone());
            flat.add(id, v.clone());
        }
        ivf.train();
        let e = Embedder::default();
        let q = e.embed("identity theft statistics");
        let ivf_hits: Vec<String> = ivf.search(&q, 3).into_iter().map(|h| h.id).collect();
        let flat_hits: Vec<String> = flat.search(&q, 3).into_iter().map(|h| h.id).collect();
        assert_eq!(ivf_hits, flat_hits);
    }

    #[test]
    fn narrow_probe_still_finds_close_neighbors() {
        let items = corpus();
        let mut ivf = IvfIndex::new(4, 1, 7);
        for (id, v) in &items {
            ivf.add(id, v.clone());
        }
        ivf.train();
        let e = Embedder::default();
        let hits = ivf.search(&e.embed("identity theft reports 2024"), 1);
        assert_eq!(hits[0].id, "doc0");
    }

    #[test]
    fn lazy_training_on_search() {
        let items = corpus();
        let mut ivf = IvfIndex::new(2, 2, 7);
        for (id, v) in &items {
            ivf.add(id, v.clone());
        }
        // No explicit train(): search still works.
        let e = Embedder::default();
        assert!(!ivf.search(&e.embed("fraud complaints"), 2).is_empty());
    }

    #[test]
    fn empty_index_trains_and_searches_safely() {
        let mut ivf = IvfIndex::new(4, 2, 1);
        ivf.train();
        assert!(ivf.search(&[0.0; 8], 3).is_empty());
    }

    #[test]
    fn nprobe_clamps_to_nlist() {
        let mut ivf = IvfIndex::new(4, 2, 1);
        ivf.set_nprobe(100);
        assert_eq!(ivf.nprobe(), 4);
        ivf.set_nprobe(0);
        assert_eq!(ivf.nprobe(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn full_probe_equals_flat_on_random_corpora(
            seeds in prop::collection::vec(0u64..1000, 4..40),
            k in 1usize..6,
        ) {
            let e = Embedder::new(32);
            let mut ivf = IvfIndex::new(4, 4, 11);
            let mut flat = FlatIndex::new();
            for (i, s) in seeds.iter().enumerate() {
                // Include the index so every document embeds uniquely;
                // equal-scored ties would otherwise break differently in
                // the two indexes.
                let text = format!("topic {} term{} body{} unique{}", s, s % 7, s % 13, i);
                let id = format!("d{i}");
                ivf.add(&id, e.embed(&text));
                flat.add(&id, e.embed(&text));
            }
            ivf.train();
            let q = e.embed("topic 3 term3");
            let a = ivf.search(&q, k);
            let b = flat.search(&q, k);
            // Full probe must be exact: identical score sequence. Ids are
            // not compared rank-by-rank here because equal or nearly-equal
            // scores (common when a doc shares no tokens with the query)
            // tie-break by scan order, which legitimately differs between
            // the flat scan and the cell-grouped IVF scan; the curated
            // `full_probe_matches_flat_exactly` test covers id agreement.
            prop_assert_eq!(a.len(), b.len());
            for (ha, hb) in a.iter().zip(&b) {
                prop_assert!((ha.score - hb.score).abs() < 1e-5,
                    "score mismatch: {} vs {}", ha.score, hb.score);
            }
        }
    }
}
