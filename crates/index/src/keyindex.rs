//! Exact key → document point lookups.
//!
//! The `Context.index()` method in the paper lets programmers register
//! key-based lookups over their datasets (e.g. `state name → state CSV`,
//! `year → report page`). `KeyIndex` is that registry: a multimap from
//! normalized string keys to document ids.

use std::collections::HashMap;

/// A normalized-key multimap index.
#[derive(Debug, Clone, Default)]
pub struct KeyIndex {
    entries: HashMap<String, Vec<String>>,
}

fn normalize(key: &str) -> String {
    key.trim().to_ascii_lowercase()
}

impl KeyIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates `key` with a document id (duplicates are ignored).
    pub fn insert(&mut self, key: &str, doc_id: &str) {
        let ids = self.entries.entry(normalize(key)).or_default();
        if !ids.iter().any(|i| i == doc_id) {
            ids.push(doc_id.to_string());
        }
    }

    /// Exact lookup (case/whitespace-insensitive on the key).
    pub fn get(&self, key: &str) -> &[String] {
        self.entries
            .get(&normalize(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when the key has at least one document.
    pub fn contains(&self, key: &str) -> bool {
        !self.get(key).is_empty()
    }

    /// All keys in sorted order (deterministic listings for agents).
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup_normalizes() {
        let mut idx = KeyIndex::new();
        idx.insert("Alabama", "al.csv");
        assert_eq!(idx.get("alabama"), ["al.csv"]);
        assert_eq!(idx.get("  ALABAMA  "), ["al.csv"]);
        assert!(idx.get("alaska").is_empty());
    }

    #[test]
    fn duplicate_doc_ids_deduplicate() {
        let mut idx = KeyIndex::new();
        idx.insert("2024", "national.csv");
        idx.insert("2024", "national.csv");
        idx.insert("2024", "trends.html");
        assert_eq!(idx.get("2024").len(), 2);
    }

    #[test]
    fn keys_are_sorted() {
        let mut idx = KeyIndex::new();
        idx.insert("b", "1");
        idx.insert("a", "2");
        idx.insert("c", "3");
        assert_eq!(idx.keys(), vec!["a", "b", "c"]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn contains_reflects_presence() {
        let mut idx = KeyIndex::new();
        assert!(!idx.contains("x"));
        idx.insert("x", "d");
        assert!(idx.contains("x"));
    }
}
