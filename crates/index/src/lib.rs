//! `aida-index`: index substrates for the `Context` abstraction.
//!
//! The paper's `Context` class lets programmers attach key-based point
//! lookups and vector search to their datasets. This crate supplies the
//! implementations the runtime (and user programs) attach:
//!
//! * [`FlatIndex`] — exact brute-force cosine search.
//! * [`IvfIndex`] — inverted-file approximate search with a k-means coarse
//!   quantizer (for larger lakes).
//! * [`KeywordIndex`] — an inverted keyword index with BM25 ranking (the
//!   "secondary index over a data lake" tool from the paper).
//! * [`KeyIndex`] — exact key → document point lookups.
//! * [`topk::TopK`] — the bounded-heap top-k collector shared by all of the
//!   above.

pub mod flat;
pub mod ivf;
pub mod keyindex;
pub mod keyword;
pub mod topk;

pub use flat::FlatIndex;
pub use ivf::IvfIndex;
pub use keyindex::KeyIndex;
pub use keyword::KeywordIndex;
pub use topk::TopK;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Identifier of the matching item (usually a document name).
    pub id: String,
    /// Similarity/relevance score; higher is better.
    pub score: f32,
}

/// Common interface over vector indexes so `Context` can hold either.
pub trait VectorIndex: Send + Sync {
    /// Adds a vector under an id (replacing an existing id).
    fn add(&mut self, id: &str, vector: Vec<f32>);
    /// Returns the `k` nearest ids by cosine similarity, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;
    /// Number of indexed vectors.
    fn len(&self) -> usize;
    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
