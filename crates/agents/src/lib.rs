//! `aida-agents`: Deep Research CodeAgents.
//!
//! Reproduces the SmolAgents-style *CodeAgent* architecture the paper uses
//! both as its baselines and as the physical implementation of its new
//! operators: an LLM agent that, each step, (1) reads the task and its
//! accumulated observations, (2) writes a program in the bundled
//! Python-like language (`aida-script`), (3) executes it against a tool
//! registry, and (4) feeds the printed output back into the next step.
//!
//! The "LLM" side of each step is a deterministic, seeded planner
//! ([`policy::AgentPolicy`]) standing in for the model — but every step is
//! billed to the simulated LLM (prompt = task + tool specs + observation
//! tail; completion = the generated code), so agents have exactly the cost
//! and latency profile the paper measures.
//!
//! The paper's observed failure modes are explicit, parameterized
//! behaviours of the planner ([`Persona`]): *shortcut-taking* (keyword
//! heuristics instead of exhaustive reads) and *premature termination*
//! (giving up on long scans).
//!
//! Baselines built here:
//! * [`CodeAgent`] with lake tools (`list_files`, `read_file`,
//!   `search_keywords`) — the paper's "CodeAgent".
//! * The same agent plus unoptimized semantic-operator tools
//!   (`sem_filter_tool`, `sem_extract_tool`) — the paper's "CodeAgent+".

pub mod policy;
pub mod runtime;
pub mod tool;
pub mod tools;

pub use policy::{AgentPolicy, DeepResearchPolicy, PolicyAction, PolicyContext};
pub use runtime::{AgentOutcome, AgentRuntime, StepTrace};
pub use tool::{FnTool, Tool, ToolRegistry, ToolSpec};

use aida_llm::ModelId;

/// Behavioural parameters of the simulated planner — the paper's observed
/// Deep Research failure modes, made explicit.
#[derive(Debug, Clone)]
pub struct Persona {
    /// Tendency to rely on cheap heuristics (filename/keyword matching)
    /// instead of exhaustive reads, in `[0, 1]`.
    pub shortcut_bias: f64,
    /// Probability of abandoning a long scan before finishing.
    pub premature_stop: f64,
    /// How many candidate items the agent will read and judge manually.
    pub verify_budget: usize,
}

impl Default for Persona {
    fn default() -> Self {
        // Matches the paper's description of open Deep Research agents.
        Persona {
            shortcut_bias: 0.8,
            premature_stop: 0.25,
            verify_budget: 6,
        }
    }
}

/// Configuration for a CodeAgent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Model the agent plans with (every step is billed to it).
    pub model: ModelId,
    /// Maximum planning steps before the agent must answer.
    pub max_steps: usize,
    /// Behavioural parameters.
    pub persona: Persona,
    /// Seed for the planner's tie-breaking noise.
    pub seed: u64,
    /// Per-step worst-case dollar ceiling, enforced *before* billing: a
    /// step whose static cost bound (priced at this agent's model) is
    /// finite and exceeds the ceiling is rejected at $0 spend and zero
    /// virtual time, with the violation fed back as the observation.
    /// Plans the analyzer cannot bound are let through — the ceiling
    /// rejects proven overspend, not ignorance. `None` disables the
    /// check.
    pub step_usd_ceiling: Option<f64>,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            model: ModelId::Flagship,
            max_steps: 12,
            persona: Persona::default(),
            seed: 0,
            step_usd_ceiling: None,
        }
    }
}

/// A Deep Research CodeAgent: a policy plus a configuration, run by an
/// [`AgentRuntime`].
pub struct CodeAgent {
    /// Configuration.
    pub config: AgentConfig,
    /// The planning policy.
    pub policy: Box<dyn AgentPolicy>,
}

impl CodeAgent {
    /// Creates an agent with the standard Deep Research policy.
    pub fn deep_research(config: AgentConfig) -> Self {
        CodeAgent {
            config,
            policy: Box::new(DeepResearchPolicy),
        }
    }

    /// Creates an agent with a custom policy (the `compute`/`search`
    /// operators in `aida-core` plug in here).
    pub fn with_policy(config: AgentConfig, policy: Box<dyn AgentPolicy>) -> Self {
        CodeAgent { config, policy }
    }
}
