//! Standard tool implementations.
//!
//! * Lake tools: `list_files`, `read_file`, `search_keywords` — free (the
//!   cost is paid when their output enters the next planning prompt).
//! * `final_answer` — stores the agent's answer and ends the run.
//! * Semantic-operator tools (`sem_filter_tool`, `sem_extract_tool`) — the
//!   *unoptimized* per-file LLM operations given to CodeAgent+: every call
//!   runs sequentially at a fixed model with no batching, no model
//!   selection, and no operator reordering.

use crate::tool::{FnTool, Tool, ToolSpec};
use aida_data::{DataLake, Value};
use aida_index::KeywordIndex;
use aida_llm::oracle::Subject;
use aida_llm::{LlmTask, ModelId};
use aida_script::{ScriptError, ScriptValue};
use aida_semops::ExecEnv;
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared slot the `final_answer` tool writes into.
#[derive(Debug, Clone, Default)]
pub struct AnswerCell {
    inner: Arc<Mutex<Option<Value>>>,
}

impl AnswerCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored answer, if any.
    pub fn get(&self) -> Option<Value> {
        self.inner.lock().clone()
    }

    /// True once an answer was submitted.
    pub fn is_set(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// Clears the cell (for reuse across trials).
    pub fn reset(&self) {
        *self.inner.lock() = None;
    }

    fn set(&self, value: Value) {
        *self.inner.lock() = Some(value);
    }
}

/// Builds the three standard lake tools.
pub fn lake_tools(lake: &DataLake) -> Vec<Arc<dyn Tool>> {
    let names: Vec<String> = lake.names().iter().map(|s| s.to_string()).collect();
    let list_lake = names.clone();
    let list_files: Arc<dyn Tool> = Arc::new(FnTool::new(
        ToolSpec::new(
            "list_files",
            "list_files() -> list[str]",
            "returns the names of every file in the data lake",
        ),
        move |_args| {
            Ok(ScriptValue::list(
                list_lake
                    .iter()
                    .map(|n| ScriptValue::str(n.clone()))
                    .collect(),
            ))
        },
    ));

    let read_lake = lake.clone();
    let read_file: Arc<dyn Tool> = Arc::new(FnTool::new(
        ToolSpec::new(
            "read_file",
            "read_file(name: str) -> str",
            "returns the full text content of a file",
        ),
        move |args| {
            let name = args
                .first()
                .ok_or_else(|| ScriptError::host("read_file needs a file name"))?
                .as_str()?;
            let doc = read_lake
                .get(name)
                .ok_or_else(|| ScriptError::host(format!("no such file: {name}")))?;
            Ok(ScriptValue::str(doc.text()))
        },
    ));

    let mut index = KeywordIndex::new();
    for doc in lake.docs() {
        index.add(&doc.name, &doc.text());
    }
    let search_keywords: Arc<dyn Tool> = Arc::new(FnTool::new(
        ToolSpec::new(
            "search_keywords",
            "search_keywords(query: str, k: int) -> list[str]",
            "BM25 keyword search over the lake; returns the top-k file names",
        ),
        move |args| {
            let query = args
                .first()
                .ok_or_else(|| ScriptError::host("search_keywords needs a query"))?
                .as_str()?;
            let k = args
                .get(1)
                .map(|v| v.as_int())
                .transpose()?
                .unwrap_or(5)
                .max(1) as usize;
            Ok(ScriptValue::list(
                index
                    .search(query, k)
                    .into_iter()
                    .map(|hit| ScriptValue::str(hit.id))
                    .collect(),
            ))
        },
    ));

    vec![list_files, read_file, search_keywords]
}

/// Builds the `final_answer` tool writing into `cell`.
pub fn final_answer_tool(cell: &AnswerCell) -> Arc<dyn Tool> {
    let cell = cell.clone();
    Arc::new(FnTool::new(
        ToolSpec::new(
            "final_answer",
            "final_answer(answer) -> None",
            "submits the final answer and ends the task",
        ),
        move |args| {
            let value = args.first().cloned().unwrap_or(ScriptValue::None);
            cell.set(value.to_data()?);
            Ok(ScriptValue::None)
        },
    ))
}

/// Builds the unoptimized semantic-filter tool for CodeAgent+.
///
/// `sem_filter_tool(instruction, filenames)` runs one LLM filter call per
/// file, **sequentially**, at a fixed model — the paper's "semantic
/// operators as tools" configuration with none of Palimpzest's optimized
/// execution.
pub fn sem_filter_tool(env: &ExecEnv, lake: &DataLake, model: ModelId) -> Arc<dyn Tool> {
    let env = env.clone();
    let lake = lake.clone();
    Arc::new(FnTool::new(
        ToolSpec::new(
            "sem_filter_tool",
            "sem_filter_tool(instruction: str, filenames: list[str]) -> list[str]",
            "applies a natural-language filter to each file with an LLM; returns matches",
        ),
        move |args| {
            let instruction = args
                .first()
                .ok_or_else(|| ScriptError::host("sem_filter_tool needs an instruction"))?
                .as_str()?
                .to_string();
            let names = name_list(args.get(1))?;
            let mut kept = Vec::new();
            for name in names {
                let doc = lake
                    .get(&name)
                    .ok_or_else(|| ScriptError::host(format!("no such file: {name}")))?;
                let resp = env.llm.invoke(
                    model,
                    &LlmTask::Filter {
                        instruction: &instruction,
                        subject: Subject::doc(doc),
                    },
                );
                env.clock.advance(resp.latency_s); // sequential: no batching
                if resp.value.truthy() {
                    kept.push(ScriptValue::str(name));
                }
            }
            Ok(ScriptValue::list(kept))
        },
    ))
}

/// Builds the unoptimized semantic-extraction tool for CodeAgent+.
///
/// `sem_extract_tool(instruction, field, filenames)` runs one LLM
/// extraction per file, sequentially, at a fixed model; returns one value
/// per file.
pub fn sem_extract_tool(env: &ExecEnv, lake: &DataLake, model: ModelId) -> Arc<dyn Tool> {
    let env = env.clone();
    let lake = lake.clone();
    Arc::new(FnTool::new(
        ToolSpec::new(
            "sem_extract_tool",
            "sem_extract_tool(instruction: str, field: str, filenames: list[str]) -> list",
            "extracts a field from each file with an LLM; returns one value per file",
        ),
        move |args| {
            let instruction = args
                .first()
                .ok_or_else(|| ScriptError::host("sem_extract_tool needs an instruction"))?
                .as_str()?
                .to_string();
            let field = args
                .get(1)
                .ok_or_else(|| ScriptError::host("sem_extract_tool needs a field name"))?
                .as_str()?
                .to_string();
            let names = name_list(args.get(2))?;
            let mut out = Vec::new();
            for name in names {
                let doc = lake
                    .get(&name)
                    .ok_or_else(|| ScriptError::host(format!("no such file: {name}")))?;
                let resp = env.llm.invoke(
                    model,
                    &LlmTask::Extract {
                        instruction: &instruction,
                        field: &field,
                        field_desc: "",
                        subject: Subject::doc(doc),
                    },
                );
                env.clock.advance(resp.latency_s);
                out.push(ScriptValue::from_data(&resp.value));
            }
            Ok(ScriptValue::list(out))
        },
    ))
}

fn name_list(arg: Option<&ScriptValue>) -> Result<Vec<String>, ScriptError> {
    match arg {
        Some(ScriptValue::List(items)) => items
            .borrow()
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect(),
        Some(other) => Err(ScriptError::host(format!(
            "expected a list of file names, found {}",
            other.type_name()
        ))),
        None => Err(ScriptError::host("expected a list of file names")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aida_data::Document;
    use aida_llm::SimLlm;
    use aida_script::Interpreter;

    fn lake() -> DataLake {
        DataLake::from_docs([
            Document::new("theft.txt", "identity theft statistics for 2024")
                .with_label("difficulty", 0.0),
            Document::new("gas.txt", "natural gas pipeline notes").with_label("difficulty", 0.0),
        ])
    }

    fn interp_with(tools: Vec<Arc<dyn Tool>>) -> Interpreter {
        let mut registry = crate::tool::ToolRegistry::new();
        for t in tools {
            registry.register(t);
        }
        let mut interp = Interpreter::new();
        registry.bind_into(&mut interp);
        interp
    }

    #[test]
    fn list_and_read_files() {
        let mut interp = interp_with(lake_tools(&lake()));
        assert_eq!(
            interp.run("len(list_files())").unwrap(),
            ScriptValue::Int(2)
        );
        let content = interp.run("read_file('theft.txt')").unwrap();
        assert!(content.as_str().unwrap().contains("identity theft"));
        assert!(interp.run("read_file('missing.txt')").is_err());
    }

    #[test]
    fn keyword_search_ranks_by_relevance() {
        let mut interp = interp_with(lake_tools(&lake()));
        let hits = interp.run("search_keywords('identity theft', 1)").unwrap();
        assert_eq!(hits.to_string(), "['theft.txt']");
    }

    #[test]
    fn final_answer_sets_cell() {
        let cell = AnswerCell::new();
        let mut interp = interp_with(vec![final_answer_tool(&cell)]);
        assert!(!cell.is_set());
        interp.run("final_answer(13.16)").unwrap();
        assert_eq!(cell.get(), Some(Value::Float(13.16)));
        cell.reset();
        assert!(!cell.is_set());
    }

    #[test]
    fn sem_filter_tool_bills_per_file_sequentially() {
        let env = ExecEnv::new(SimLlm::new(1));
        let lake = lake();
        let mut interp = interp_with(vec![sem_filter_tool(&env, &lake, ModelId::Flagship)]);
        let t0 = env.clock.now();
        let out = interp
            .run("sem_filter_tool('mentions identity theft', list(['theft.txt', 'gas.txt']))")
            .unwrap_err();
        // `list` isn't a builtin: pass the literal instead.
        let _ = out;
        let out = interp
            .run("sem_filter_tool('mentions identity theft', ['theft.txt', 'gas.txt'])")
            .unwrap();
        assert_eq!(out.to_string(), "['theft.txt']");
        assert_eq!(env.llm.meter().snapshot().total_calls(), 2);
        assert!(env.clock.now() > t0, "sequential calls advance the clock");
    }

    #[test]
    fn sem_extract_tool_returns_value_per_file() {
        let env = ExecEnv::new(SimLlm::new(1));
        let lake = DataLake::from_docs([Document::new(
            "t.csv",
            "year,identity_theft_reports\n2001,86250\n2005,100000\n2024,1135291\n",
        )]);
        let mut interp = interp_with(vec![sem_extract_tool(&env, &lake, ModelId::Flagship)]);
        let out = interp
            .run("sem_extract_tool('identity theft reports in 2024', 'thefts', ['t.csv'])[0]")
            .unwrap();
        assert_eq!(out, ScriptValue::Int(1_135_291));
    }

    #[test]
    fn bad_arguments_are_tool_errors() {
        let env = ExecEnv::new(SimLlm::new(1));
        let lake = lake();
        let mut interp = interp_with(vec![sem_filter_tool(&env, &lake, ModelId::Nano)]);
        assert!(interp.run("sem_filter_tool('x', 'not-a-list')").is_err());
        assert!(interp.run("sem_filter_tool('x')").is_err());
    }
}
