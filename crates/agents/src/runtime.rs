//! The CodeAgent execution loop.
//!
//! Each step: the policy (standing in for the planning LLM) produces code;
//! the step is billed to the simulated LLM as a call whose prompt is the
//! task + tool manifest + observation tail and whose completion is the
//! code; the code runs in a persistent interpreter with the tools bound;
//! printed output becomes the next observation. The loop ends when
//! `final_answer` fires or the step budget runs out.

use crate::policy::{PolicyAction, PolicyContext};
use crate::tool::ToolRegistry;
use crate::tools::AnswerCell;
use crate::CodeAgent;
use aida_data::{DataLake, Value};
use aida_llm::noise;
use aida_llm::LlmTask;
use aida_obs::SpanKind;
use aida_script::Interpreter;
use aida_semops::ExecEnv;

/// One executed agent step.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Step index.
    pub step: usize,
    /// The code the policy wrote.
    pub code: String,
    /// The observation the code produced (printed output, final value, or
    /// the error message).
    pub observation: String,
}

/// The result of an agent run.
#[derive(Debug, Clone)]
pub struct AgentOutcome {
    /// The submitted answer, if the agent called `final_answer`.
    pub answer: Option<Value>,
    /// Per-step traces.
    pub steps: Vec<StepTrace>,
    /// Dollars the run spent (planning + any tool LLM calls).
    pub cost_usd: f64,
    /// Virtual seconds the run took.
    pub time_s: f64,
}

impl AgentOutcome {
    /// Renders a compact transcript for figures/traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!("--- step {} ---\n{}\n", step.step, step.code));
            let obs: String = step.observation.chars().take(400).collect();
            out.push_str(&format!("observation: {obs}\n"));
        }
        out.push_str(&format!(
            "answer: {}  (${:.4}, {:.1}s)\n",
            self.answer
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "<none>".into()),
            self.cost_usd,
            self.time_s
        ));
        out
    }
}

/// Runs CodeAgents against a tool registry and data lake.
pub struct AgentRuntime<'a> {
    env: &'a ExecEnv,
    registry: ToolRegistry,
    lake: Option<DataLake>,
}

/// Maximum observation characters fed back into the next planning prompt.
const OBSERVATION_CAP: usize = 12_000;
/// Maximum characters of accumulated observations in a prompt.
const PROMPT_OBS_CAP: usize = 18_000;

impl<'a> AgentRuntime<'a> {
    /// Creates a runtime. `lake` enables the policy's manual-judgement
    /// helper to resolve ground-truth labels, mirroring an agent actually
    /// reading a document in context.
    pub fn new(env: &'a ExecEnv, registry: ToolRegistry, lake: Option<DataLake>) -> Self {
        AgentRuntime {
            env,
            registry,
            lake,
        }
    }

    /// The tool registry.
    pub fn registry(&self) -> &ToolRegistry {
        &self.registry
    }

    /// Runs an agent on a task to completion.
    pub fn run(&self, agent: &CodeAgent, task: &str) -> AgentOutcome {
        let answer = AnswerCell::new();
        let mut registry = self.registry.clone();
        registry.register(crate::tools::final_answer_tool(&answer));

        let mut interp = Interpreter::new().with_fuel(5_000_000);
        registry.bind_into(&mut interp);

        let before = self.env.llm.meter().snapshot();
        let t0 = self.env.clock.now();
        let manifest = registry.manifest();
        let mut observations: Vec<String> = Vec::new();
        let mut steps: Vec<StepTrace> = Vec::new();

        for step in 0..agent.config.max_steps {
            let step_span = self.env.recorder.span(
                SpanKind::AgentStep,
                format!("step {step}"),
                self.env.clock.now(),
            );
            let ctx = PolicyContext {
                task,
                step,
                observations: &observations,
                persona: &agent.config.persona,
                seed: noise::combine(&[agent.config.seed, noise::hash_str(task)]),
                tools: &registry,
                env: self.env,
                lake: self.lake.as_ref(),
                model: agent.config.model,
            };
            let code = match agent.policy.next_step(&ctx) {
                PolicyAction::Code(code) => code,
                PolicyAction::Done => {
                    step_span.finish(self.env.clock.now());
                    break;
                }
            };
            step_span.attr("code", aida_obs::clip(&code, 80));

            // Static check first: a program the checker can prove
            // malformed (unknown tool, name defined nowhere, `while
            // True` with no exit) is rejected *before* the planning
            // call is billed, so a bad generation costs $0 and zero
            // virtual latency — the error still feeds back as the
            // step's observation so the policy can correct course.
            let issues = interp.check_source(&code);
            if let Some(err) = aida_script::check::first_error(&issues) {
                step_span.attr("rejected", "static-check");
                if self.env.recorder.is_enabled() {
                    self.env.recorder.flight(
                        "agents.step",
                        "step_rejected",
                        format!("step {step}: {err}"),
                    );
                }
                let observation = format!("ERROR: {err}");
                steps.push(StepTrace {
                    step,
                    code,
                    observation: observation.clone(),
                });
                observations.push(observation);
                step_span.finish(self.env.clock.now());
                continue;
            }

            // Bill the planning step: the agent "reads" the task, tools,
            // and observation tail, and "writes" the code.
            let obs_tail = tail(&observations.join("\n"), PROMPT_OBS_CAP);
            let prompt = format!("{task}\n{manifest}\n{obs_tail}");
            let resp = self.env.llm.invoke(
                agent.config.model,
                &LlmTask::Freeform {
                    prompt: &prompt,
                    response: &code,
                },
            );
            self.env.clock.advance(resp.latency_s);

            // Execute the code.
            let observation = match interp.run(&code) {
                Ok(value) => {
                    let mut printed = interp.take_output().join("\n");
                    if printed.is_empty() {
                        printed = value.to_string();
                    }
                    tail(&printed, OBSERVATION_CAP)
                }
                Err(err) => format!("ERROR: {err}"),
            };
            if self.env.recorder.is_enabled() {
                self.env.recorder.flight(
                    "agents.step",
                    "step",
                    format!("step {step}: {}", aida_obs::clip(&observation, 80)),
                );
            }
            steps.push(StepTrace {
                step,
                code,
                observation: observation.clone(),
            });
            observations.push(observation);
            step_span.finish(self.env.clock.now());

            if answer.is_set() {
                break;
            }
        }

        let delta = self.env.llm.meter().snapshot().delta_since(&before);
        AgentOutcome {
            answer: answer.get(),
            steps,
            cost_usd: delta.cost(self.env.llm.catalog()),
            time_s: self.env.clock.now() - t0,
        }
    }
}

fn tail(text: &str, cap: usize) -> String {
    if text.len() <= cap {
        return text.to_string();
    }
    let start = text.len() - cap;
    let mut idx = start;
    while idx < text.len() && !text.is_char_boundary(idx) {
        idx += 1;
    }
    format!("…{}", &text[idx..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AgentPolicy, PolicyAction, PolicyContext};
    use crate::tools::lake_tools;
    use crate::{AgentConfig, CodeAgent};
    use aida_data::Document;
    use aida_llm::SimLlm;

    struct FixedPolicy(Vec<&'static str>);
    impl AgentPolicy for FixedPolicy {
        fn next_step(&self, ctx: &PolicyContext<'_>) -> PolicyAction {
            match self.0.get(ctx.step) {
                Some(code) => PolicyAction::Code((*code).to_string()),
                None => PolicyAction::Done,
            }
        }
    }

    fn lake() -> DataLake {
        DataLake::from_docs([Document::new("data.csv", "year,n\n2001,10\n2024,130\n")])
    }

    fn runtime_env() -> ExecEnv {
        ExecEnv::new(SimLlm::new(3))
    }

    fn registry(lake: &DataLake) -> ToolRegistry {
        let mut registry = ToolRegistry::new();
        for tool in lake_tools(lake) {
            registry.register(tool);
        }
        registry
    }

    #[test]
    fn agent_runs_steps_and_answers() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), Some(lake.clone()));
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "files = list_files()\nprint(files)",
                "c = read_file('data.csv')\nlines = c.splitlines()\na = float(lines[2].split(',')[1])\nb = float(lines[1].split(',')[1])\nfinal_answer(a / b)",
            ])),
        );
        let outcome = rt.run(&agent, "compute the 2024/2001 ratio");
        assert_eq!(outcome.answer, Some(Value::Float(13.0)));
        assert_eq!(outcome.steps.len(), 2);
        assert!(outcome.cost_usd > 0.0, "planning steps are billed");
        assert!(outcome.time_s > 0.0);
    }

    #[test]
    fn observations_flow_between_steps() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["print(list_files())"])),
        );
        let outcome = rt.run(&agent, "look around");
        assert!(outcome.steps[0].observation.contains("data.csv"));
        assert!(outcome.answer.is_none());
    }

    #[test]
    fn script_errors_become_observations() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "undefined_function()",
                "final_answer('ok')",
            ])),
        );
        let outcome = rt.run(&agent, "do something");
        assert!(outcome.steps[0].observation.starts_with("ERROR:"));
        assert_eq!(outcome.answer, Some(Value::Str("ok".into())));
    }

    #[test]
    fn statically_rejected_programs_cost_nothing() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        // Every program is malformed in a way the static checker can
        // prove: an unknown tool, a name defined nowhere, an unbounded
        // loop, and a syntax error. None of them may bill a planning
        // call or advance the virtual clock.
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "serch_files()",
                "print(never_assigned)",
                "while True:\n    x = 1",
                "def broken(:",
            ])),
        );
        let outcome = rt.run(&agent, "do something");
        assert_eq!(outcome.steps.len(), 4);
        for step in &outcome.steps {
            assert!(
                step.observation.starts_with("ERROR:"),
                "step {}: {}",
                step.step,
                step.observation
            );
        }
        assert_eq!(outcome.cost_usd, 0.0, "rejected steps must not bill");
        assert_eq!(outcome.time_s, 0.0, "rejected steps must not take time");
    }

    #[test]
    fn valid_programs_still_execute_and_bill() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        // A legal late-binding program (helper defined after first use
        // site, loop with a data-dependent bound) must pass the checker
        // and run normally.
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "def main():\n    return helper(3)\ndef helper(n):\n    t = 0\n    while n > 0:\n        t += n\n        n -= 1\n    return t\nfinal_answer(main())",
            ])),
        );
        let outcome = rt.run(&agent, "sum 1..3");
        assert_eq!(outcome.answer, Some(Value::Int(6)));
        assert!(outcome.cost_usd > 0.0, "valid steps still bill");
    }

    #[test]
    fn max_steps_bounds_the_loop() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let config = AgentConfig {
            max_steps: 3,
            ..AgentConfig::default()
        };
        let agent =
            CodeAgent::with_policy(config, Box::new(FixedPolicy(vec!["1", "2", "3", "4", "5"])));
        let outcome = rt.run(&agent, "loop forever");
        assert_eq!(outcome.steps.len(), 3);
    }

    #[test]
    fn interpreter_state_persists_across_steps() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["x = 41", "final_answer(x + 1)"])),
        );
        let outcome = rt.run(&agent, "carry state");
        assert_eq!(outcome.answer, Some(Value::Int(42)));
    }

    #[test]
    fn recorder_traces_each_step() {
        let recorder = aida_obs::Recorder::new();
        let env = ExecEnv::new(SimLlm::new(3)).with_recorder(recorder.clone());
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["x = 41", "final_answer(x + 1)"])),
        );
        let outcome = rt.run(&agent, "trace me");
        let trace = recorder.trace();
        let steps: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::AgentStep)
            .collect();
        assert_eq!(steps.len(), outcome.steps.len());
        for span in &steps {
            assert_eq!(span.calls, 1, "each step bills one planning call");
            assert!(span.cost_usd > 0.0);
            assert!(span.duration_s() > 0.0);
        }
        let span_cost: f64 = steps.iter().map(|s| s.cost_usd).sum();
        assert!((span_cost - outcome.cost_usd).abs() < 1e-9);
        // Each step also leaves a flight-recorder note so a crash dump
        // shows where the agent was.
        let flight = recorder.flight_records();
        let step_notes = flight
            .iter()
            .filter(|r| r.source == "agents.step" && r.kind == "step")
            .count();
        assert_eq!(step_notes, outcome.steps.len());
        assert!(
            flight.iter().any(|r| r.kind == "llm_call"),
            "planning calls feed the ring via events"
        );
    }

    #[test]
    fn render_includes_code_and_answer() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["final_answer(7)"])),
        );
        let outcome = rt.run(&agent, "answer 7");
        let text = outcome.render();
        assert!(text.contains("final_answer(7)"));
        assert!(text.contains("answer: 7"));
    }
}
