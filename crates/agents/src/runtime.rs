//! The CodeAgent execution loop.
//!
//! Each step: the policy (standing in for the planning LLM) produces code;
//! the code is statically checked, flow-sensitively typechecked against
//! the tool registry, and compiled to bytecode — all *before* the planning
//! call is billed, so a provably bad generation costs $0.00 and zero
//! virtual seconds; then the step is billed to the simulated LLM as a call
//! whose prompt is the task + tool manifest + observation tail and whose
//! completion is the code; the compiled program runs on the register VM
//! (or the tree-walking interpreter, via [`AgentRuntime::with_tree_walker`]
//! or `AIDA_PYRITE_TREEWALK=1`) with the tools bound; printed output
//! becomes the next observation. The loop ends when `final_answer` fires
//! or the step budget runs out.

use crate::policy::{PolicyAction, PolicyContext};
use crate::tool::ToolRegistry;
use crate::tools::AnswerCell;
use crate::CodeAgent;
use aida_data::{DataLake, Value};
use aida_llm::noise;
use aida_llm::LlmTask;
use aida_obs::SpanKind;
use aida_script::Interpreter;
use aida_semops::ExecEnv;

/// One executed agent step.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Step index.
    pub step: usize,
    /// The code the policy wrote.
    pub code: String,
    /// The observation the code produced (printed output, final value, or
    /// the error message).
    pub observation: String,
    /// The static cost bound of the compiled step, computed before the
    /// planning call was billed. `None` when the step never compiled
    /// (static-check or typecheck rejection).
    pub bound: Option<aida_script::bounds::CostBound>,
}

/// The result of an agent run.
#[derive(Debug, Clone)]
pub struct AgentOutcome {
    /// The submitted answer, if the agent called `final_answer`.
    pub answer: Option<Value>,
    /// Per-step traces.
    pub steps: Vec<StepTrace>,
    /// Dollars the run spent (planning + any tool LLM calls).
    pub cost_usd: f64,
    /// Virtual seconds the run took.
    pub time_s: f64,
}

impl AgentOutcome {
    /// Renders a compact transcript for figures/traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            out.push_str(&format!("--- step {} ---\n{}\n", step.step, step.code));
            let obs: String = step.observation.chars().take(400).collect();
            out.push_str(&format!("observation: {obs}\n"));
        }
        out.push_str(&format!(
            "answer: {}  (${:.4}, {:.1}s)\n",
            self.answer
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "<none>".into()),
            self.cost_usd,
            self.time_s
        ));
        out
    }
}

/// Runs CodeAgents against a tool registry and data lake.
pub struct AgentRuntime<'a> {
    env: &'a ExecEnv,
    registry: ToolRegistry,
    lake: Option<DataLake>,
    /// Execute steps on the tree-walking interpreter instead of the
    /// bytecode VM (fallback escape hatch; also the differential oracle).
    tree_walk: bool,
}

/// Maximum observation characters fed back into the next planning prompt.
const OBSERVATION_CAP: usize = 12_000;
/// Maximum characters of accumulated observations in a prompt.
const PROMPT_OBS_CAP: usize = 18_000;

impl<'a> AgentRuntime<'a> {
    /// Creates a runtime. `lake` enables the policy's manual-judgement
    /// helper to resolve ground-truth labels, mirroring an agent actually
    /// reading a document in context.
    pub fn new(env: &'a ExecEnv, registry: ToolRegistry, lake: Option<DataLake>) -> Self {
        AgentRuntime {
            env,
            registry,
            lake,
            tree_walk: std::env::var("AIDA_PYRITE_TREEWALK").is_ok_and(|v| v == "1"),
        }
    }

    /// Forces step execution onto the tree-walking interpreter instead of
    /// the bytecode VM. The two are differential twins (identical values,
    /// tool-call sequences, and fuel charges), so this is an escape hatch
    /// and a test oracle, not a behavior switch. Also settable with the
    /// environment variable `AIDA_PYRITE_TREEWALK=1`.
    pub fn with_tree_walker(mut self, tree_walk: bool) -> Self {
        self.tree_walk = tree_walk;
        self
    }

    /// The tool registry.
    pub fn registry(&self) -> &ToolRegistry {
        &self.registry
    }

    /// Typechecks `code` against the tool registry and the interpreter's
    /// live globals, then lowers it to bytecode. Runs *before* the
    /// planning call is billed: a program the flow-sensitive typechecker
    /// can prove wrong on every path (tool arity or argument types,
    /// use-before-assign) is rejected at zero cost, and a well-typed
    /// program is compiled once for the VM.
    fn typecheck_and_compile(
        &self,
        registry: &ToolRegistry,
        interp: &Interpreter,
        code: &str,
    ) -> Result<aida_script::CompiledProgram, aida_script::ScriptError> {
        let program = aida_script::parser::parse(code)?;
        let mut tenv = aida_script::TypeEnv::new();
        for spec in registry.specs() {
            tenv.add_tool_signature(&spec.name, &spec.signature);
        }
        // Globals carried from earlier steps are live bindings of
        // unknown type.
        for name in interp.check_env().globals {
            tenv.bind_global(&name, aida_script::Ty::Any);
        }
        aida_script::typecheck(&program, &tenv)?;
        aida_script::compile(&program)
    }

    /// Static check first: a program the checker can prove malformed
    /// (unknown tool, name defined nowhere, `while True` with no exit)
    /// is rejected *before* the planning call is billed, so a bad
    /// generation costs $0 and zero virtual latency. `Err` names the
    /// pass that rejected the program.
    fn check_and_compile(
        &self,
        registry: &ToolRegistry,
        interp: &Interpreter,
        code: &str,
    ) -> Result<aida_script::CompiledProgram, (&'static str, String)> {
        match aida_script::check::first_error(&interp.check_source(code)) {
            Some(err) => Err(("static-check", err.to_string())),
            None => self
                .typecheck_and_compile(registry, interp, code)
                .map_err(|err| ("typecheck", err.to_string())),
        }
    }

    /// Step-rejection bookkeeping shared by the static-check and
    /// cost-ceiling paths: flight-record the reason and feed the error
    /// observation back to the policy. The step bills nothing.
    fn record_rejection(
        &self,
        steps: &mut Vec<StepTrace>,
        observations: &mut Vec<String>,
        step: usize,
        code: String,
        bound: Option<aida_script::bounds::CostBound>,
        texts: (String, String),
    ) {
        let (flight, observation) = texts;
        if self.env.recorder.is_enabled() {
            self.env.recorder.flight(
                "agents.step",
                "step_rejected",
                format!("step {step}: {flight}"),
            );
        }
        steps.push(StepTrace {
            step,
            code,
            observation: observation.clone(),
            bound,
        });
        observations.push(observation);
    }

    /// Runs an agent on a task to completion.
    pub fn run(&self, agent: &CodeAgent, task: &str) -> AgentOutcome {
        let answer = AnswerCell::new();
        let mut registry = self.registry.clone();
        registry.register(crate::tools::final_answer_tool(&answer));

        let mut interp = Interpreter::new().with_fuel(5_000_000);
        registry.bind_into(&mut interp);

        let before = self.env.llm.meter().snapshot();
        let t0 = self.env.clock.now();
        let manifest = registry.manifest();
        let mut observations: Vec<String> = Vec::new();
        let mut steps: Vec<StepTrace> = Vec::new();

        for step in 0..agent.config.max_steps {
            let step_span = self.env.recorder.span(
                SpanKind::AgentStep,
                format!("step {step}"),
                self.env.clock.now(),
            );
            let ctx = PolicyContext {
                task,
                step,
                observations: &observations,
                persona: &agent.config.persona,
                seed: noise::combine(&[agent.config.seed, noise::hash_str(task)]),
                tools: &registry,
                env: self.env,
                lake: self.lake.as_ref(),
                model: agent.config.model,
            };
            let code = match agent.policy.next_step(&ctx) {
                PolicyAction::Code(code) => code,
                PolicyAction::Done => {
                    step_span.finish(self.env.clock.now());
                    break;
                }
            };
            step_span.attr("code", aida_obs::clip(&code, 80));

            let compiled = match self.check_and_compile(&registry, &interp, &code) {
                Ok(compiled) => compiled,
                Err((pass, err)) => {
                    step_span.attr("rejected", pass);
                    let texts = (err.clone(), format!("ERROR: {err}"));
                    self.record_rejection(&mut steps, &mut observations, step, code, None, texts);
                    step_span.finish(self.env.clock.now());
                    continue;
                }
            };
            step_span.attr("bound", compiled.bound.render());

            // The proven worst case is known before any billing; an
            // over-ceiling step is rejected at $0 and zero virtual time
            // (see `ceiling_rejection` for the pass/reject rules).
            if let Some(texts) = ceiling_rejection(&agent.config, &compiled.bound) {
                step_span.attr("rejected", "cost-bound");
                let bound = Some(compiled.bound.clone());
                self.record_rejection(&mut steps, &mut observations, step, code, bound, texts);
                step_span.finish(self.env.clock.now());
                continue;
            }

            // Bill the planning step: the agent "reads" the task, tools,
            // and observation tail, and "writes" the code.
            let obs_tail = tail(&observations.join("\n"), PROMPT_OBS_CAP);
            let prompt = format!("{task}\n{manifest}\n{obs_tail}");
            let resp = self.env.llm.invoke(
                agent.config.model,
                &LlmTask::Freeform {
                    prompt: &prompt,
                    response: &code,
                },
            );
            self.env.clock.advance(resp.latency_s);

            // Execute the code — on the bytecode VM by default; the
            // tree-walker is the differential oracle and the fallback.
            let run_result = if self.tree_walk {
                interp.run(&code)
            } else {
                interp.run_compiled(&compiled)
            };
            let observation = match run_result {
                Ok(value) => {
                    let mut printed = interp.take_output().join("\n");
                    if printed.is_empty() {
                        printed = value.to_string();
                    }
                    tail(&printed, OBSERVATION_CAP)
                }
                Err(err) => format!("ERROR: {err}"),
            };
            if self.env.recorder.is_enabled() {
                self.env.recorder.flight(
                    "agents.step",
                    "step",
                    format!("step {step}: {}", aida_obs::clip(&observation, 80)),
                );
            }
            steps.push(StepTrace {
                step,
                code,
                observation: observation.clone(),
                bound: Some(compiled.bound.clone()),
            });
            observations.push(observation);
            step_span.finish(self.env.clock.now());

            if answer.is_set() {
                break;
            }
        }

        let delta = self.env.llm.meter().snapshot().delta_since(&before);
        AgentOutcome {
            answer: answer.get(),
            steps,
            cost_usd: delta.cost(self.env.llm.catalog()),
            time_s: self.env.clock.now() - t0,
        }
    }
}

/// The per-step cost ceiling: `Some((flight_detail, observation))` when
/// the step's statically proven worst case (priced at this agent's
/// model) exceeds the configured ceiling. Unbounded plans pass — the
/// ceiling rejects overspend the analyzer can prove, not ignorance.
fn ceiling_rejection(
    config: &crate::AgentConfig,
    bound: &aida_script::bounds::CostBound,
) -> Option<(String, String)> {
    let ceiling = config.step_usd_ceiling?;
    let usd_max = bound.usd_max(config.model);
    if usd_max.is_finite() && usd_max > ceiling {
        Some((
            format!("bound ${usd_max:.4} > ceiling ${ceiling:.4}"),
            format!(
                "ERROR: static cost bound ${usd_max:.4} exceeds the per-step ceiling ${ceiling:.4}"
            ),
        ))
    } else {
        None
    }
}

fn tail(text: &str, cap: usize) -> String {
    if text.len() <= cap {
        return text.to_string();
    }
    let start = text.len() - cap;
    let mut idx = start;
    while idx < text.len() && !text.is_char_boundary(idx) {
        idx += 1;
    }
    format!("…{}", &text[idx..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AgentPolicy, PolicyAction, PolicyContext};
    use crate::tools::lake_tools;
    use crate::{AgentConfig, CodeAgent};
    use aida_data::Document;
    use aida_llm::SimLlm;

    struct FixedPolicy(Vec<&'static str>);
    impl AgentPolicy for FixedPolicy {
        fn next_step(&self, ctx: &PolicyContext<'_>) -> PolicyAction {
            match self.0.get(ctx.step) {
                Some(code) => PolicyAction::Code((*code).to_string()),
                None => PolicyAction::Done,
            }
        }
    }

    fn lake() -> DataLake {
        DataLake::from_docs([Document::new("data.csv", "year,n\n2001,10\n2024,130\n")])
    }

    fn runtime_env() -> ExecEnv {
        ExecEnv::new(SimLlm::new(3))
    }

    fn registry(lake: &DataLake) -> ToolRegistry {
        let mut registry = ToolRegistry::new();
        for tool in lake_tools(lake) {
            registry.register(tool);
        }
        registry
    }

    #[test]
    fn agent_runs_steps_and_answers() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), Some(lake.clone()));
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "files = list_files()\nprint(files)",
                "c = read_file('data.csv')\nlines = c.splitlines()\na = float(lines[2].split(',')[1])\nb = float(lines[1].split(',')[1])\nfinal_answer(a / b)",
            ])),
        );
        let outcome = rt.run(&agent, "compute the 2024/2001 ratio");
        assert_eq!(outcome.answer, Some(Value::Float(13.0)));
        assert_eq!(outcome.steps.len(), 2);
        assert!(outcome.cost_usd > 0.0, "planning steps are billed");
        assert!(outcome.time_s > 0.0);
    }

    #[test]
    fn observations_flow_between_steps() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["print(list_files())"])),
        );
        let outcome = rt.run(&agent, "look around");
        assert!(outcome.steps[0].observation.contains("data.csv"));
        assert!(outcome.answer.is_none());
    }

    #[test]
    fn script_errors_become_observations() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "undefined_function()",
                "final_answer('ok')",
            ])),
        );
        let outcome = rt.run(&agent, "do something");
        assert!(outcome.steps[0].observation.starts_with("ERROR:"));
        assert_eq!(outcome.answer, Some(Value::Str("ok".into())));
    }

    #[test]
    fn statically_rejected_programs_cost_nothing() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        // Every program is malformed in a way the static checker can
        // prove: an unknown tool, a name defined nowhere, an unbounded
        // loop, and a syntax error. None of them may bill a planning
        // call or advance the virtual clock.
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "serch_files()",
                "print(never_assigned)",
                "while True:\n    x = 1",
                "def broken(:",
            ])),
        );
        let outcome = rt.run(&agent, "do something");
        assert_eq!(outcome.steps.len(), 4);
        for step in &outcome.steps {
            assert!(
                step.observation.starts_with("ERROR:"),
                "step {}: {}",
                step.step,
                step.observation
            );
        }
        assert_eq!(outcome.cost_usd, 0.0, "rejected steps must not bill");
        assert_eq!(outcome.time_s, 0.0, "rejected steps must not take time");
    }

    #[test]
    fn ill_typed_programs_cost_nothing() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        // Every program passes the name/structure checker (tools exist,
        // every name is assigned somewhere) but the flow-sensitive
        // typechecker proves it wrong on all paths: bad tool arity, a
        // tool argument of the wrong type, and a use before the (only)
        // assignment. None may bill a planning call or advance the clock.
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "c = read_file('data.csv', 'extra')\nprint(c)",
                "c = read_file(7)\nprint(c)",
                "hits = search_keywords('ratio', 'three')\nprint(hits)",
                "print(n)\nn = 3",
            ])),
        );
        let outcome = rt.run(&agent, "do something");
        assert_eq!(outcome.steps.len(), 4);
        for step in &outcome.steps {
            assert!(
                step.observation.starts_with("ERROR:"),
                "step {}: {}",
                step.step,
                step.observation
            );
        }
        assert!(
            outcome.steps[0].observation.contains("takes 1 argument"),
            "arity: {}",
            outcome.steps[0].observation
        );
        assert!(
            outcome.steps[1].observation.contains("expects str"),
            "arg type: {}",
            outcome.steps[1].observation
        );
        assert!(
            outcome.steps[3]
                .observation
                .contains("used before assignment"),
            "use-before-assign: {}",
            outcome.steps[3].observation
        );
        assert_eq!(outcome.cost_usd, 0.0, "ill-typed steps must not bill");
        assert_eq!(outcome.time_s, 0.0, "ill-typed steps must not take time");
    }

    #[test]
    fn vm_and_tree_walker_agree_on_agent_runs() {
        // The same multi-step agent, once on the bytecode VM (default)
        // and once on the tree-walking interpreter, must produce the
        // same answer, observations, spend, and virtual time.
        let steps = vec![
            "files = list_files()\nprint(files)",
            "c = read_file('data.csv')\nrows = c.splitlines()\ntotal = 0\nfor r in rows[1:]:\n    total += int(r.split(',')[1])\nprint(total)",
            "final_answer(total)",
        ];
        let run = |tree_walk: bool| {
            let env = runtime_env();
            let lake = lake();
            let rt = AgentRuntime::new(&env, registry(&lake), None).with_tree_walker(tree_walk);
            let agent = CodeAgent::with_policy(
                AgentConfig::default(),
                Box::new(FixedPolicy(steps.clone())),
            );
            rt.run(&agent, "sum the n column")
        };
        let vm = run(false);
        let walker = run(true);
        assert_eq!(vm.answer, Some(Value::Int(140)));
        assert_eq!(vm.answer, walker.answer);
        assert_eq!(vm.steps.len(), walker.steps.len());
        for (a, b) in vm.steps.iter().zip(&walker.steps) {
            assert_eq!(a.observation, b.observation, "step {}", a.step);
        }
        assert_eq!(vm.cost_usd, walker.cost_usd);
        assert_eq!(vm.time_s, walker.time_s);
    }

    #[test]
    fn valid_programs_still_execute_and_bill() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        // A legal late-binding program (helper defined after first use
        // site, loop with a data-dependent bound) must pass the checker
        // and run normally.
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "def main():\n    return helper(3)\ndef helper(n):\n    t = 0\n    while n > 0:\n        t += n\n        n -= 1\n    return t\nfinal_answer(main())",
            ])),
        );
        let outcome = rt.run(&agent, "sum 1..3");
        assert_eq!(outcome.answer, Some(Value::Int(6)));
        assert!(outcome.cost_usd > 0.0, "valid steps still bill");
    }

    #[test]
    fn bytecode_identical_plans_share_the_semantic_cache() {
        use aida_llm::{CacheConfig, SemanticCache};
        // Two textually different plans that lower to identical bytecode
        // (whitespace and line-number differences vanish in the canonical
        // encoding) must share one semantic-cache entry: the second
        // planning call is a plan-keyed hit and bills nothing.
        let llm = SimLlm::new(3)
            .with_cache(SemanticCache::new(CacheConfig::default()))
            .with_plan_hasher(aida_script::plan_content_hash);
        let env = ExecEnv::new(llm);
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let run = |code: &'static str| {
            let agent =
                CodeAgent::with_policy(AgentConfig::default(), Box::new(FixedPolicy(vec![code])));
            rt.run(&agent, "same task").cost_usd
        };
        let first = run("x = 1\nprint(x + 41)");
        let second = run("\nx =  1\nprint(x  +  41)");
        let third = run("x = 2\nprint(x + 41)");
        assert!(first > 0.0, "first plan is billed");
        assert_eq!(second, 0.0, "bytecode-identical plan is served from cache");
        assert!(third > 0.0, "bytecode-different plan misses");
        let stats = env.llm.cache().expect("cache attached").stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.plan_hits, 1, "the hit is plan-keyed");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn steps_are_annotated_with_their_static_bound() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec![
                "c = read_file('data.csv')\nprint(c)",
                "serch_files()",
            ])),
        );
        let outcome = rt.run(&agent, "look at the data");
        let bound = outcome.steps[0].bound.as_ref().expect("compiled step");
        assert_eq!(
            bound.call_bound("read_file"),
            aida_script::bounds::Bound::Finite(1)
        );
        assert!(bound
            .usd_max(aida_llm::models::ModelId::Flagship)
            .is_finite());
        assert!(
            outcome.steps[1].bound.is_none(),
            "a step that never compiled has no bound"
        );
    }

    #[test]
    fn over_ceiling_steps_cost_nothing() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let config = AgentConfig {
            step_usd_ceiling: Some(0.05),
            ..AgentConfig::default()
        };
        // 40 worst-case `read_file` calls price far above five cents at
        // the Flagship tier; the step must be rejected before billing.
        let agent = CodeAgent::with_policy(
            config,
            Box::new(FixedPolicy(vec![
                "t = 0\nfor i in range(40):\n    t += len(read_file('data.csv'))\nprint(t)",
            ])),
        );
        let outcome = rt.run(&agent, "hammer the lake");
        assert_eq!(outcome.steps.len(), 1);
        assert!(
            outcome.steps[0]
                .observation
                .starts_with("ERROR: static cost bound"),
            "{}",
            outcome.steps[0].observation
        );
        assert!(
            outcome.steps[0].bound.is_some(),
            "the rejecting bound is recorded on the trace"
        );
        assert_eq!(outcome.cost_usd, 0.0, "over-ceiling steps must not bill");
        assert_eq!(outcome.time_s, 0.0, "over-ceiling steps must not take time");
    }

    #[test]
    fn ceiling_passes_affordable_and_unbounded_steps() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let config = AgentConfig {
            step_usd_ceiling: Some(0.05),
            ..AgentConfig::default()
        };
        // Step 0 iterates tool output — no finite bound, so the ceiling
        // cannot prove a violation and must let it run. Step 1 is a
        // single affordable call under the ceiling.
        let agent = CodeAgent::with_policy(
            config,
            Box::new(FixedPolicy(vec![
                "for f in list_files():\n    print(read_file(f))",
                "final_answer('done')",
            ])),
        );
        let outcome = rt.run(&agent, "read everything");
        assert_eq!(outcome.answer, Some(Value::Str("done".into())));
        assert!(
            !outcome.steps[0].observation.starts_with("ERROR:"),
            "{}",
            outcome.steps[0].observation
        );
        assert!(outcome.cost_usd > 0.0, "admitted steps still bill");
    }

    #[test]
    fn max_steps_bounds_the_loop() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let config = AgentConfig {
            max_steps: 3,
            ..AgentConfig::default()
        };
        let agent =
            CodeAgent::with_policy(config, Box::new(FixedPolicy(vec!["1", "2", "3", "4", "5"])));
        let outcome = rt.run(&agent, "loop forever");
        assert_eq!(outcome.steps.len(), 3);
    }

    #[test]
    fn interpreter_state_persists_across_steps() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["x = 41", "final_answer(x + 1)"])),
        );
        let outcome = rt.run(&agent, "carry state");
        assert_eq!(outcome.answer, Some(Value::Int(42)));
    }

    #[test]
    fn recorder_traces_each_step() {
        let recorder = aida_obs::Recorder::new();
        let env = ExecEnv::new(SimLlm::new(3)).with_recorder(recorder.clone());
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["x = 41", "final_answer(x + 1)"])),
        );
        let outcome = rt.run(&agent, "trace me");
        let trace = recorder.trace();
        let steps: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::AgentStep)
            .collect();
        assert_eq!(steps.len(), outcome.steps.len());
        for span in &steps {
            assert_eq!(span.calls, 1, "each step bills one planning call");
            assert!(span.cost_usd > 0.0);
            assert!(span.duration_s() > 0.0);
        }
        let span_cost: f64 = steps.iter().map(|s| s.cost_usd).sum();
        assert!((span_cost - outcome.cost_usd).abs() < 1e-9);
        // Each step also leaves a flight-recorder note so a crash dump
        // shows where the agent was.
        let flight = recorder.flight_records();
        let step_notes = flight
            .iter()
            .filter(|r| r.source == "agents.step" && r.kind == "step")
            .count();
        assert_eq!(step_notes, outcome.steps.len());
        assert!(
            flight.iter().any(|r| r.kind == "llm_call"),
            "planning calls feed the ring via events"
        );
    }

    #[test]
    fn render_includes_code_and_answer() {
        let env = runtime_env();
        let lake = lake();
        let rt = AgentRuntime::new(&env, registry(&lake), None);
        let agent = CodeAgent::with_policy(
            AgentConfig::default(),
            Box::new(FixedPolicy(vec!["final_answer(7)"])),
        );
        let outcome = rt.run(&agent, "answer 7");
        let text = outcome.render();
        assert!(text.contains("final_answer(7)"));
        assert!(text.contains("answer: 7"));
    }
}
