//! Deterministic planning policies (the simulated "LLM planner").
//!
//! A policy maps the task and the observation history to the next code
//! block. [`DeepResearchPolicy`] reproduces how open Deep Research
//! CodeAgents behave on the paper's two task families:
//!
//! * **Numeric/ratio questions** — list files, pick the most
//!   promising-looking ones by filename (with seeded jitter: sometimes the
//!   agent latches onto a plausible-but-wrong report page), parse what it
//!   read, answer.
//! * **Corpus filtering questions** — scan files with a keyword heuristic
//!   (the shortcut bias), manually read and judge a few hits, return the
//!   rest unverified.
//!
//! When the registry offers semantic-operator tools (CodeAgent+), the
//! filtering flow switches to the paper's observed *inefficient* tool use:
//! two semantic filters launched over the full corpus without checking the
//! first filter's output, then per-field extractions.

use crate::tool::ToolRegistry;
use crate::Persona;
use aida_data::DataLake;
use aida_llm::noise::{self, KeyedRng};
use aida_llm::oracle::Subject;
use aida_llm::{LlmTask, ModelId};
use aida_semops::ExecEnv;

/// What the policy wants to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAction {
    /// Run this code.
    Code(String),
    /// Stop without further steps.
    Done,
}

/// Everything a policy can see when planning a step.
pub struct PolicyContext<'a> {
    /// The task text.
    pub task: &'a str,
    /// Current step index.
    pub step: usize,
    /// Observations from previous steps.
    pub observations: &'a [String],
    /// Behavioural parameters.
    pub persona: &'a Persona,
    /// Run seed (stable across the run's steps).
    pub seed: u64,
    /// The tools available.
    pub tools: &'a ToolRegistry,
    /// Execution environment (for manual-judgement calls).
    pub(crate) env: &'a ExecEnv,
    /// The lake (label resolution for manual judgements).
    pub(crate) lake: Option<&'a DataLake>,
    /// The agent's model (manual judgements bill to it).
    pub model: ModelId,
}

impl<'a> PolicyContext<'a> {
    /// A deterministic RNG stable across the run (not per-step), so a
    /// decision made at step 1 can be re-derived at step 3.
    pub fn run_rng(&self, salt: u64) -> KeyedRng {
        KeyedRng::new(noise::combine(&[self.seed, salt]))
    }

    /// True when a tool is available.
    pub fn has_tool(&self, name: &str) -> bool {
        self.tools.get(name).is_some()
    }

    /// The agent manually reads a document and judges a predicate — one
    /// billed LLM call at the agent's own model.
    pub fn judge(&self, instruction: &str, doc_name: &str) -> bool {
        let Some(doc) = self.lake.and_then(|l| l.get(doc_name)) else {
            return false;
        };
        let resp = self.env.llm.invoke(
            self.model,
            &LlmTask::Filter {
                instruction,
                subject: Subject::doc(doc),
            },
        );
        self.env.clock.advance(resp.latency_s);
        resp.value.truthy()
    }
}

/// A planning policy.
pub trait AgentPolicy: Send + Sync {
    /// Produces the next action.
    fn next_step(&self, ctx: &PolicyContext<'_>) -> PolicyAction;
}

/// The open Deep Research planner.
pub struct DeepResearchPolicy;

impl AgentPolicy for DeepResearchPolicy {
    fn next_step(&self, ctx: &PolicyContext<'_>) -> PolicyAction {
        let task = ctx.task.to_ascii_lowercase();
        if task.contains("ratio") || (task_years(ctx.task).len() >= 2) {
            ratio_flow(ctx)
        } else if task.contains("filter") || task.contains("emails") {
            if ctx.has_tool("sem_filter_tool") {
                semantic_tools_flow(ctx)
            } else {
                keyword_filter_flow(ctx)
            }
        } else {
            generic_flow(ctx)
        }
    }
}

// --------------------------------------------------------------------
// Ratio / numeric-question flow
// --------------------------------------------------------------------

fn ratio_flow(ctx: &PolicyContext<'_>) -> PolicyAction {
    if ctx.step == 0 {
        return PolicyAction::Code("files = list_files()\nprint(files)".to_string());
    }
    let files = parse_quoted_list(ctx.observations.first().map(String::as_str).unwrap_or(""));
    if files.is_empty() {
        return PolicyAction::Done;
    }
    let years = {
        let mut ys = task_years(ctx.task);
        ys.sort_unstable();
        if ys.len() >= 2 {
            (ys[ys.len() - 1], ys[0])
        } else {
            (2024, 2001)
        }
    };

    if ctx.step == 1 {
        // Pick the most promising-looking files by filename, with seeded
        // jitter standing in for the planner's fallibility: sometimes a
        // plausible report page outranks the actual answer file.
        let picks = pick_files(ctx, &files);
        let mut code = String::new();
        for name in &picks {
            code.push_str(&format!(
                "print('FILE: {name}')\nprint(read_file('{name}')[:1200])\n"
            ));
        }
        return PolicyAction::Code(code);
    }

    // Step >= 2: analyze what was read.
    let all_obs = ctx.observations.join("\n");
    if let Some(csv_file) = find_csv_with_both_years(&all_obs, years) {
        return PolicyAction::Code(csv_ratio_code(&csv_file, years));
    }
    if all_obs.contains("per 100,000") {
        // The rate trap: compute the ratio from per-100k rates on the
        // annual report pages for the two years.
        let hi = find_file_for_year(&files, years.0, &all_obs);
        let lo = find_file_for_year(&files, years.1, &all_obs);
        if let (Some(hi), Some(lo)) = (hi, lo) {
            let read_more = [&hi, &lo]
                .iter()
                .filter(|n| !all_obs.contains(&format!("FILE: {}", n.as_str())))
                .map(|n| format!("print('FILE: {n}')\nprint(read_file('{n}')[:1200])\n"))
                .collect::<String>();
            if !read_more.is_empty() && ctx.step == 2 {
                return PolicyAction::Code(read_more);
            }
            return PolicyAction::Code(rate_ratio_code(&hi, &lo));
        }
    }
    // Shortcut-taking (the paper's core CodeAgent failure): rather than
    // keep searching, a shortcut-biased agent computes *something* from the
    // tabular files it already read — a spurious ratio from files that
    // cannot answer the question.
    let picks = pick_files(ctx, &files);
    let mut shortcut_rng = ctx.run_rng(0x5c_0f7);
    if ctx.step == 2
        && picks.len() >= 2
        && shortcut_rng.chance(ctx.persona.shortcut_bias)
        && all_obs.contains(',')
    {
        return PolicyAction::Code(spurious_ratio_code(&picks[0], &picks[1]));
    }
    // Otherwise fall back to keyword search once, then give up.
    if ctx.step <= 3 {
        let terms = task_terms(ctx.task).join(" ");
        return PolicyAction::Code(format!(
            "more = search_keywords('{terms}', 3)\nfor f in more:\n    print('FILE: ' + f)\n    print(read_file(f)[:1200])"
        ));
    }
    PolicyAction::Done
}

/// Code a hurried agent writes to get *a* number out of two tabular files:
/// the ratio of their numeric-column totals. Plausible-looking, wrong.
fn spurious_ratio_code(file_a: &str, file_b: &str) -> String {
    format!(
        r#"def total(name):
    t = 0
    for line in read_file(name).splitlines():
        parts = line.split(',')
        if len(parts) >= 2:
            n = parts[1].strip()
            if n.isdigit():
                t += int(n)
    return t
a = total('{file_a}')
b = total('{file_b}')
if b != 0:
    final_answer(float(a) / float(b))
"#
    )
}

fn pick_files(ctx: &PolicyContext<'_>, files: &[String]) -> Vec<String> {
    let terms = task_terms(ctx.task);
    let years: Vec<String> = task_years(ctx.task).iter().map(|y| y.to_string()).collect();
    let mut rng = ctx.run_rng(0x9a11e7);
    let mut scored: Vec<(f64, &String)> = files
        .iter()
        .map(|name| {
            let tokens = name_tokens(name);
            let mut score = 0.0;
            for t in &terms {
                if tokens
                    .iter()
                    .any(|tok| tok.starts_with(t.as_str()) || t.starts_with(tok))
                {
                    score += 1.0;
                }
            }
            for y in &years {
                if tokens.iter().any(|tok| tok == y) {
                    score += 1.0;
                }
            }
            // Planner fallibility: jitter proportional to shortcut bias.
            score += rng.range_f64(0.0, 2.5 + 7.0 * ctx.persona.shortcut_bias);
            (score, name)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(2).map(|(_, n)| n.clone()).collect()
}

fn find_csv_with_both_years(obs: &str, years: (i64, i64)) -> Option<String> {
    // Look for a FILE: marker whose following excerpt contains a CSV header
    // and data rows starting with both years.
    let mut current: Option<&str> = None;
    let mut header_ok = false;
    let (mut hi_ok, mut lo_ok) = (false, false);
    let mut best: Option<String> = None;
    for line in obs.lines() {
        if let Some(name) = line.strip_prefix("FILE: ") {
            if header_ok && hi_ok && lo_ok {
                break;
            }
            current = Some(name.trim());
            header_ok = false;
            hi_ok = false;
            lo_ok = false;
            continue;
        }
        if line.contains(',') {
            if line.to_ascii_lowercase().contains("theft") && !line.starts_with(char::is_numeric) {
                header_ok = true;
            }
            if line.starts_with(&years.0.to_string()) {
                hi_ok = true;
            }
            if line.starts_with(&years.1.to_string()) {
                lo_ok = true;
            }
        }
        if header_ok && hi_ok && lo_ok {
            if let Some(name) = current {
                best = Some(name.to_string());
            }
        }
    }
    best
}

fn find_file_for_year(files: &[String], year: i64, _obs: &str) -> Option<String> {
    let y = year.to_string();
    files
        .iter()
        .find(|f| f.contains(&y) && (f.contains("annual") || f.contains("report")))
        .or_else(|| files.iter().find(|f| f.contains(&y)))
        .cloned()
}

fn csv_ratio_code(file: &str, years: (i64, i64)) -> String {
    format!(
        r#"c = read_file('{file}')
lines = c.splitlines()
header = lines[0].split(',')
col = 1
i = 0
for h in header:
    if 'theft' in h:
        col = i
    i += 1
a = 0.0
b = 0.0
for line in lines[1:]:
    parts = line.split(',')
    if len(parts) > col:
        if parts[0] == '{}':
            a = float(parts[col])
        if parts[0] == '{}':
            b = float(parts[col])
if b != 0:
    final_answer(a / b)
"#,
        years.0, years.1
    )
}

fn rate_ratio_code(hi_file: &str, lo_file: &str) -> String {
    format!(
        r#"def rate(name):
    t = read_file(name)
    i = t.find('rate of ')
    if i < 0:
        return 0.0
    sub = t[i + 8:]
    return float(sub.split(' ')[0])
a = rate('{hi_file}')
b = rate('{lo_file}')
if b != 0:
    final_answer(a / b)
"#
    )
}

// --------------------------------------------------------------------
// Keyword-heuristic filtering flow (CodeAgent)
// --------------------------------------------------------------------

fn keyword_filter_flow(ctx: &PolicyContext<'_>) -> PolicyAction {
    if ctx.step == 0 {
        return PolicyAction::Code("files = list_files()\nprint(len(files))".to_string());
    }
    let keywords = capitalized_terms(ctx.task);
    if ctx.step == 1 {
        // The shortcut: a keyword scan instead of reading for meaning.
        let mut rng = ctx.run_rng(0x5ca9);
        let scan_range = if rng.chance(ctx.persona.premature_stop) {
            // Premature termination: gives up partway through the corpus.
            "files[:len(files) - len(files) // 3]"
        } else {
            "files"
        };
        let cond = keywords
            .iter()
            .map(|k| format!("'{k}' in c"))
            .collect::<Vec<_>>()
            .join(" or ");
        let cond = if cond.is_empty() {
            "False".to_string()
        } else {
            cond
        };
        return PolicyAction::Code(format!(
            "hits = []\nfor f in {scan_range}:\n    c = read_file(f)\n    if {cond}:\n        hits.append(f)\nprint(hits)"
        ));
    }
    if ctx.step == 2 {
        // Manual verification of a few hits; the rest ship unverified.
        let hits = parse_quoted_list(ctx.observations.last().map(String::as_str).unwrap_or(""));
        if hits.is_empty() {
            return PolicyAction::Code("final_answer([])".to_string());
        }
        let mut rng = ctx.run_rng(0x7e71f);
        let mut order: Vec<usize> = (0..hits.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.below(i + 1);
            order.swap(i, j);
        }
        let verify_n = ctx.persona.verify_budget.min(hits.len());
        let mut kept: Vec<String> = Vec::new();
        for (rank, &idx) in order.iter().enumerate() {
            let name = &hits[idx];
            if rank < verify_n {
                if ctx.judge(ctx.task, name) {
                    kept.push(name.clone());
                }
            } else {
                kept.push(name.clone());
            }
        }
        kept.sort();
        let rendered = kept
            .iter()
            .map(|n| format!("'{n}'"))
            .collect::<Vec<_>>()
            .join(", ");
        return PolicyAction::Code(format!("final_answer([{rendered}])"));
    }
    PolicyAction::Done
}

// --------------------------------------------------------------------
// Semantic-tools flow (CodeAgent+)
// --------------------------------------------------------------------

fn semantic_tools_flow(ctx: &PolicyContext<'_>) -> PolicyAction {
    match ctx.step {
        0 => PolicyAction::Code("files = list_files()\nprint(len(files))".to_string()),
        1 => {
            // The paper's observed inefficiency: both filters launched
            // over the full corpus, without checking the first's output.
            let mention = "the email mentions one or more of the Raptor, Chewco, LJM, Talon, \
                           or Condor business transactions";
            let firsthand = "the email contains firsthand discussion of one or more of the \
                             Raptor, Chewco, LJM, Talon, or Condor business transactions";
            PolicyAction::Code(format!(
                "m1 = sem_filter_tool('{mention}', files)\n\
                 m2 = sem_filter_tool('{firsthand}', files)\n\
                 both = [f for f in m1 if f in m2]\n\
                 print(both)"
            ))
        }
        2 => PolicyAction::Code(
            "senders = sem_extract_tool('extract the sender email address', 'sender', both)\n\
             subjects = sem_extract_tool('extract the subject line', 'subject', both)\n\
             summaries = sem_extract_tool('write a one-sentence summary of the email', 'summary', both)\n\
             final_answer(both)"
                .to_string(),
        ),
        _ => PolicyAction::Done,
    }
}

// --------------------------------------------------------------------
// Generic exploration flow
// --------------------------------------------------------------------

fn generic_flow(ctx: &PolicyContext<'_>) -> PolicyAction {
    match ctx.step {
        0 => {
            let terms = task_terms(ctx.task).join(" ");
            PolicyAction::Code(format!(
                "hits = search_keywords('{terms}', 3)\nprint(hits)\nfor f in hits:\n    print('FILE: ' + f)\n    print(read_file(f)[:800])"
            ))
        }
        1 => {
            // Answer with the most relevant line observed.
            let obs = ctx.observations.join("\n");
            let terms = task_terms(ctx.task);
            let best = obs
                .lines()
                .filter(|l| !l.starts_with("FILE:"))
                .max_by_key(|l| {
                    let lower = l.to_ascii_lowercase();
                    terms.iter().filter(|t| lower.contains(t.as_str())).count()
                })
                .unwrap_or("")
                .replace('\'', " ");
            let best: String = best.chars().take(200).collect();
            PolicyAction::Code(format!("final_answer('{best}')"))
        }
        _ => PolicyAction::Done,
    }
}

// --------------------------------------------------------------------
// Shared parsing helpers
// --------------------------------------------------------------------

/// Extracts the items of the last `['a', 'b', …]`-style printed list.
/// Long observations may be truncated from the front, losing the opening
/// bracket; in that case every quoted token before the closing bracket is
/// taken (the tail of the printed list).
pub fn parse_quoted_list(text: &str) -> Vec<String> {
    let end = match text.rfind(']') {
        Some(i) => i,
        None => return Vec::new(),
    };
    let start = text[..end].rfind('[').map(|i| i + 1).unwrap_or(0);
    let body = &text[start..end];
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in body.chars() {
        if c == '\'' {
            if in_quote {
                items.push(std::mem::take(&mut current));
            }
            in_quote = !in_quote;
        } else if in_quote {
            current.push(c);
        }
    }
    items
}

/// Lowercased content words of the task (minus stopwords).
pub fn task_terms(task: &str) -> Vec<String> {
    task.split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() > 2)
        .map(|w| w.to_ascii_lowercase())
        .filter(|w| !aida_llm::sim::STOPWORDS.contains(&w.as_str()))
        .take(8)
        .collect()
}

/// Years (1900–2100) mentioned in the task.
pub fn task_years(task: &str) -> Vec<i64> {
    task.split(|c: char| !c.is_ascii_digit())
        .filter_map(|t| t.parse::<i64>().ok())
        .filter(|y| (1900..=2100).contains(y))
        .collect()
}

/// Capitalized proper-noun-ish terms of the task (skipping the first word
/// and short/common tokens) — the keywords a regex-happy agent greps for.
pub fn capitalized_terms(task: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, word) in task.split(|c: char| !c.is_alphanumeric()).enumerate() {
        if i == 0 || word.len() < 3 {
            // Allow short all-caps acronyms like LJM.
            if !(word.len() >= 2 && word.chars().all(|c| c.is_ascii_uppercase())) || i == 0 {
                continue;
            }
        }
        let first_upper = word.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if first_upper && !out.contains(&word.to_string()) {
            out.push(word.to_string());
        }
    }
    out
}

fn name_tokens(name: &str) -> Vec<String> {
    name.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_list_parsing() {
        assert_eq!(
            parse_quoted_list("noise ['a.csv', 'b.txt'] trailing"),
            vec!["a.csv", "b.txt"]
        );
        assert_eq!(parse_quoted_list("[]"), Vec::<String>::new());
        assert_eq!(parse_quoted_list("no list"), Vec::<String>::new());
        // Last list wins.
        assert_eq!(parse_quoted_list("['x'] then ['y']"), vec!["y"]);
    }

    #[test]
    fn task_parsing_helpers() {
        let task = "What is the ratio between identity theft reports in 2024 and 2001?";
        assert_eq!(task_years(task), vec![2024, 2001]);
        let terms = task_terms(task);
        assert!(terms.contains(&"identity".to_string()));
        assert!(terms.contains(&"theft".to_string()));
    }

    #[test]
    fn capitalized_terms_extracts_transaction_names() {
        let task = "Filter the emails for firsthand discussion of the Raptor, Chewco, LJM, \
                    Talon, or Condor transactions";
        let terms = capitalized_terms(task);
        assert!(terms.contains(&"Raptor".to_string()));
        assert!(terms.contains(&"LJM".to_string()));
        assert!(terms.contains(&"Condor".to_string()));
        assert!(!terms.contains(&"Filter".to_string()), "first word skipped");
    }

    #[test]
    fn csv_detection_requires_both_years() {
        let obs = "FILE: national.csv\nyear,identity_theft_reports\n2001,86250\n2024,1135291\n";
        assert_eq!(
            find_csv_with_both_years(obs, (2024, 2001)),
            Some("national.csv".to_string())
        );
        let partial = "FILE: page.csv\nyear,identity_theft_reports\n2024,1135291\n";
        assert_eq!(find_csv_with_both_years(partial, (2024, 2001)), None);
    }

    #[test]
    fn generated_csv_code_parses() {
        let code = csv_ratio_code("national.csv", (2024, 2001));
        assert!(
            aida_script::parser::parse(&code).is_ok(),
            "code must be valid Pyrite"
        );
        let code = rate_ratio_code("a.html", "b.html");
        assert!(aida_script::parser::parse(&code).is_ok());
    }
}
