//! The tool abstraction.

use aida_script::{Interpreter, ScriptError, ScriptValue};
use std::sync::Arc;

/// Metadata describing a tool to the (simulated) planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolSpec {
    /// The callable name bound into agent programs.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Python-style signature, e.g. `read_file(name: str) -> str`.
    pub signature: String,
}

impl ToolSpec {
    /// Creates a spec.
    pub fn new(
        name: impl Into<String>,
        signature: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        ToolSpec {
            name: name.into(),
            signature: signature.into(),
            description: description.into(),
        }
    }
}

/// A tool callable from agent programs.
pub trait Tool: Send + Sync {
    /// The tool's spec.
    fn spec(&self) -> &ToolSpec;
    /// Invokes the tool.
    fn call(&self, args: &[ScriptValue]) -> Result<ScriptValue, ScriptError>;
}

/// A tool backed by a closure.
pub struct FnTool<F> {
    spec: ToolSpec,
    func: F,
}

impl<F> FnTool<F>
where
    F: Fn(&[ScriptValue]) -> Result<ScriptValue, ScriptError> + Send + Sync,
{
    /// Wraps a closure as a tool.
    pub fn new(spec: ToolSpec, func: F) -> Self {
        FnTool { spec, func }
    }
}

impl<F> Tool for FnTool<F>
where
    F: Fn(&[ScriptValue]) -> Result<ScriptValue, ScriptError> + Send + Sync,
{
    fn spec(&self) -> &ToolSpec {
        &self.spec
    }

    fn call(&self, args: &[ScriptValue]) -> Result<ScriptValue, ScriptError> {
        (self.func)(args)
    }
}

/// A named collection of tools, bindable into a script interpreter.
#[derive(Clone, Default)]
pub struct ToolRegistry {
    tools: Vec<Arc<dyn Tool>>,
}

impl ToolRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tool (same-name registration replaces).
    pub fn register(&mut self, tool: Arc<dyn Tool>) {
        match self
            .tools
            .iter()
            .position(|t| t.spec().name == tool.spec().name)
        {
            Some(i) => self.tools[i] = tool,
            None => self.tools.push(tool),
        }
    }

    /// Looks a tool up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Tool>> {
        self.tools.iter().find(|t| t.spec().name == name)
    }

    /// All tool specs, in registration order.
    pub fn specs(&self) -> Vec<&ToolSpec> {
        self.tools.iter().map(|t| t.spec()).collect()
    }

    /// Number of tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True when no tools are registered.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Renders the tool manifest included in every planning prompt.
    pub fn manifest(&self) -> String {
        let mut out = String::from("Available tools:\n");
        for tool in &self.tools {
            out.push_str(&format!(
                "- {}: {}\n",
                tool.spec().signature,
                tool.spec().description
            ));
        }
        out
    }

    /// Binds every tool into an interpreter as a host function.
    pub fn bind_into(&self, interp: &mut Interpreter) {
        for tool in &self.tools {
            let tool = Arc::clone(tool);
            interp.bind_host_fn(&tool.spec().name.clone(), move |args| tool.call(args));
        }
    }
}

impl std::fmt::Debug for ToolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.tools.iter().map(|t| t.spec().name.as_str()).collect();
        write!(f, "ToolRegistry({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_tool() -> Arc<dyn Tool> {
        Arc::new(FnTool::new(
            ToolSpec::new("echo", "echo(x) -> x", "returns its argument"),
            |args| Ok(args.first().cloned().unwrap_or(ScriptValue::None)),
        ))
    }

    #[test]
    fn register_and_bind() {
        let mut registry = ToolRegistry::new();
        registry.register(echo_tool());
        assert_eq!(registry.len(), 1);
        assert!(registry.get("echo").is_some());
        let mut interp = Interpreter::new();
        registry.bind_into(&mut interp);
        assert_eq!(interp.run("echo(42)").unwrap(), ScriptValue::Int(42));
    }

    #[test]
    fn same_name_replaces() {
        let mut registry = ToolRegistry::new();
        registry.register(echo_tool());
        registry.register(Arc::new(FnTool::new(
            ToolSpec::new("echo", "echo() -> int", "returns 7"),
            |_| Ok(ScriptValue::Int(7)),
        )));
        assert_eq!(registry.len(), 1);
        let mut interp = Interpreter::new();
        registry.bind_into(&mut interp);
        assert_eq!(interp.run("echo(1)").unwrap(), ScriptValue::Int(7));
    }

    #[test]
    fn manifest_lists_signatures() {
        let mut registry = ToolRegistry::new();
        registry.register(echo_tool());
        let m = registry.manifest();
        assert!(m.contains("echo(x) -> x"));
        assert!(m.contains("returns its argument"));
    }
}
