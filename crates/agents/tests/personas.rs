//! Behavioural tests for the Deep Research failure-mode personas: the
//! paper's observations (shortcut-taking, premature termination, manual
//! verification limits) must be reproducible and tunable.

use aida_agents::{tools, AgentConfig, AgentRuntime, CodeAgent, Persona, ToolRegistry};
use aida_data::Value;
use aida_llm::{ModelId, SimLlm};
use aida_semops::ExecEnv;
use aida_synth::enron;

fn run_agent(seed: u64, persona: Persona) -> (Option<Value>, String) {
    let workload = enron::generate(1);
    let env = ExecEnv::new(SimLlm::new(seed));
    workload.install_oracle(&env.llm);
    let mut registry = ToolRegistry::new();
    for tool in tools::lake_tools(&workload.lake) {
        registry.register(tool);
    }
    let agent = CodeAgent::deep_research(AgentConfig {
        model: ModelId::Flagship,
        max_steps: 8,
        persona,
        seed,
        ..AgentConfig::default()
    });
    let runtime = AgentRuntime::new(&env, registry, Some(workload.lake.clone()));
    let outcome = runtime.run(&agent, &workload.query);
    let trace = outcome.render();
    (outcome.answer, trace)
}

fn returned_count(answer: &Option<Value>) -> usize {
    match answer {
        Some(Value::List(items)) => items.len(),
        _ => 0,
    }
}

#[test]
fn premature_termination_reduces_scan_coverage() {
    // With certain premature termination the keyword scan covers only part
    // of the corpus, so strictly fewer hits come back than a full scan.
    let full = Persona {
        shortcut_bias: 0.8,
        premature_stop: 0.0,
        verify_budget: 0,
    };
    let lazy = Persona {
        shortcut_bias: 0.8,
        premature_stop: 1.0,
        verify_budget: 0,
    };
    let (full_answer, full_trace) = run_agent(3, full);
    let (lazy_answer, lazy_trace) = run_agent(3, lazy);
    assert!(full_trace.contains("for f in files:"), "{full_trace}");
    assert!(lazy_trace.contains("for f in files[:"), "{lazy_trace}");
    assert!(
        returned_count(&lazy_answer) < returned_count(&full_answer),
        "lazy {} vs full {}",
        returned_count(&lazy_answer),
        returned_count(&full_answer)
    );
}

#[test]
fn manual_verification_rejects_some_keyword_traps() {
    // With a verification budget the agent reads some hits and drops the
    // secondhand forwards it judges irrelevant; with none it returns every
    // keyword hit.
    let blind = Persona {
        shortcut_bias: 0.8,
        premature_stop: 0.0,
        verify_budget: 0,
    };
    let careful = Persona {
        shortcut_bias: 0.8,
        premature_stop: 0.0,
        verify_budget: 25,
    };
    let (blind_answer, _) = run_agent(5, blind);
    let (careful_answer, _) = run_agent(5, careful);
    // 18 keyword-relevant + 5 secondhand forwards contain the names.
    assert_eq!(returned_count(&blind_answer), 23);
    assert!(
        returned_count(&careful_answer) < 23,
        "verification should reject some forwards: {}",
        returned_count(&careful_answer)
    );
}

#[test]
fn personas_are_deterministic_per_seed() {
    let persona = Persona::default();
    let (a, _) = run_agent(9, persona.clone());
    let (b, _) = run_agent(9, persona);
    assert_eq!(a, b);
}
