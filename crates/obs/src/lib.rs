//! `aida-obs`: the unified tracing & metrics layer.
//!
//! The paper argues an AI-analytics runtime must attribute cost, latency,
//! and quality to individual operators so the optimizer and the
//! ContextManager can act on them. This crate is that attribution
//! substrate: a dependency-free, thread-safe [`Recorder`] holding
//!
//! * a hierarchical **span tree** (query → agentic op → agent step →
//!   program tool call → physical operator) in virtual time,
//! * typed **events** (LLM call, fault retry, context-reuse hit/miss,
//!   SQL statement, rewrite applied) attached to the innermost span,
//! * monotonic **counters** and fixed-bucket **histograms**
//!   (calls-per-model, tokens-per-call, operator selectivity).
//!
//! Two renderers sit on top of a [`report::Trace`] snapshot:
//! [`Trace::explain_analyze`](report::Trace::explain_analyze) (a
//! human-readable `EXPLAIN ANALYZE` tree with per-span rows, calls, $,
//! virtual seconds, and % of the query total) and
//! [`Trace::to_jsonl`](report::Trace::to_jsonl) (a byte-deterministic
//! JSONL export written by the bench binaries under `results/traces/`).
//!
//! Everything is keyed to the simulated clock — no wall-clock value ever
//! enters a trace — so two runs at the same seed export identical bytes.
//!
//! On top of the whole-run trace sits the **runtime health layer**:
//! [`timeseries`] (a deterministic sliding-window store answering
//! windowed p50/p95/p99, queue depth, hit-rate, and burn-rate queries),
//! [`slo`] (per-tenant targets with multi-window burn-rate alerting),
//! and [`flight`] (a bounded ring of recent typed events dumped for
//! forensics when a crash seam fires, a recovery path runs, or an SLO
//! alert trips). Metric names live in one place — [`registry`] — and
//! lint rule O1 keeps them there.

pub mod event;
pub mod flight;
pub mod json;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use event::Event;
pub use flight::{FlightRecord, FlightRing, FLIGHT_CAPACITY};
pub use json::Json;
pub use metric::{Gauge, Histogram, Summary};
pub use recorder::{Recorder, SpanHandle};
pub use report::{SpanTotals, Trace};
pub use slo::{BurnRate, SloKind, SloPolicy, SloTarget, SloVerdict};
pub use span::{clip, SpanData, SpanKind};
pub use timeseries::{SeriesStore, SlidingWindow, WindowSnapshot};
