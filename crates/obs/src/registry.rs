//! The single source of truth for metric names.
//!
//! Every counter, histogram, gauge, and health-series name used anywhere
//! in the workspace is declared here as a constant. Lint rule O1
//! (`crates/lint`) rejects string-literal metric names at
//! `counter_add`/`histogram_record`/`gauge_set` call sites outside this
//! file, so a typo'd or duplicated name cannot silently fork a series.
//!
//! Names are grouped by owner crate; `docs/observability.md` carries the
//! full catalog with units.

// --- counters: aida-llm ---------------------------------------------------

/// Billed LLM calls (successful attempts), all models.
pub const LLM_CALLS: &str = "llm.calls";
/// Fault-injected failed attempts that were billed and retried.
pub const LLM_FAULT_RETRIES: &str = "llm.fault_retries";
/// Semantic-cache exact/semantic hits.
pub const CACHE_HIT: &str = "cache.hit";
/// In-flight duplicate calls coalesced onto one upstream request.
pub const CACHE_COALESCED: &str = "cache.coalesced";
/// Semantic-cache misses (paid upstream calls).
pub const CACHE_MISS: &str = "cache.miss";

// --- counters: aida-core --------------------------------------------------

/// Periodic runtime state checkpoints written.
pub const CHECKPOINT_SAVES: &str = "checkpoint.saves";
/// Checkpoint attempts that failed (serialization or commit error).
pub const CHECKPOINT_ERRORS: &str = "checkpoint.errors";
/// Bytes written by checkpoints (full snapshots + delta frames).
pub const CHECKPOINT_BYTES: &str = "checkpoint.bytes_written";
/// Incremental delta frames appended between full snapshots.
pub const CHECKPOINT_DELTA_FRAMES: &str = "checkpoint.delta_frames";
/// Contexts restored from a state file at cold start.
pub const STATE_RESTORED_CONTEXTS: &str = "state.restored_contexts";
/// SQL statements executed against the catalog.
pub const SQL_STATEMENTS: &str = "sql.statements";
/// ContextManager served a materialized context above threshold.
pub const CONTEXT_REUSE_HITS: &str = "context.reuse_hits";
/// No materialized context cleared the similarity threshold.
pub const CONTEXT_REUSE_MISSES: &str = "context.reuse_misses";
/// `split_computes` plan rewrites applied.
pub const REWRITES_SPLIT_COMPUTES: &str = "rewrites.split_computes";
/// `merge_searches` plan rewrites applied.
pub const REWRITES_MERGE_SEARCHES: &str = "rewrites.merge_searches";

// --- counters: aida-semops ------------------------------------------------

/// Records dropped by the aggregation context-window guard.
pub const AGG_TRUNCATED_RECORDS: &str = "agg.truncated_records";

// --- counters: aida-serve -------------------------------------------------

/// Ledger WAL records appended (admissions + spends).
pub const WAL_APPENDS: &str = "wal.appends";
/// Ledger WAL append failures (fsync/write error or injected crash).
pub const WAL_APPEND_ERRORS: &str = "wal.append_errors";
/// Ledger WAL compactions performed.
pub const WAL_COMPACTIONS: &str = "wal.compactions";
/// Compactions deferred off the query path to the ops-interval hook.
pub const WAL_COMPACTIONS_DEFERRED: &str = "wal.compactions_deferred";
/// Ops-interval compactions that failed (I/O error or injected crash;
/// dispatch stops, exactly like an append failure).
pub const WAL_COMPACTION_ERRORS: &str = "wal.compaction_errors";
/// WAL tail segments sealed into immutable segment files.
pub const WAL_SEGMENTS_SEALED: &str = "wal.segments_sealed";
/// Physical fsyncs issued by the ledger WAL (appends + batch flushes).
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Group-commit batches flushed (one fsync per batch).
pub const WAL_GROUP_FLUSHES: &str = "wal.group_flushes";
/// Ledger WAL records replayed during recovery.
pub const WAL_REPLAYED_RECORDS: &str = "wal.replayed_records";
/// Corrupt/unparseable WAL records skipped during recovery.
pub const WAL_SKIPPED_RECORDS: &str = "wal.skipped_records";
/// Torn tails physically truncated during recovery.
pub const WAL_DROPPED_TAILS: &str = "wal.dropped_tails";
/// SLO burn-rate alerts tripped across all tenants.
pub const SLO_ALERTS: &str = "slo.alerts";
/// Connections accepted by the network front door.
pub const NET_CONNS_OPENED: &str = "net.conns_opened";
/// Connections fully closed by the front door.
pub const NET_CONNS_CLOSED: &str = "net.conns_closed";
/// Complete request frames decoded off the wire.
pub const NET_FRAMES_IN: &str = "net.frames_in";
/// Response frames queued toward clients.
pub const NET_FRAMES_OUT: &str = "net.frames_out";
/// Header + payload bytes read off the fabric.
pub const NET_BYTES_IN: &str = "net.bytes_in";
/// Bytes accepted by fabric writes.
pub const NET_BYTES_OUT: &str = "net.bytes_out";
/// Typed wire-protocol errors, all kinds.
pub const NET_WIRE_ERRORS: &str = "net.wire_errors";
/// Request bodies resolved from an interned plan hash.
pub const NET_PLAN_HASH_HITS: &str = "net.plan_hash_hits";
/// Autoscaler scale-up moves committed.
pub const AUTOSCALE_UPS: &str = "autoscale.ups";
/// Autoscaler scale-down moves committed.
pub const AUTOSCALE_DOWNS: &str = "autoscale.downs";
/// Instructions the static cost-bound gate checked (Pyrite plans only).
pub const BOUNDS_CHECKED: &str = "bounds.checked";
/// Checked instructions with no finite dollar bound (admitted
/// conservatively).
pub const BOUNDS_UNBOUNDED: &str = "bounds.unbounded";
/// Requests shed because a static worst-case exceeded the tenant's
/// remaining dollar quota.
pub const BOUNDS_REJECTS: &str = "bounds.rejects";
/// Bound verdicts served from the plan-hash cache.
pub const BOUNDS_CACHE_HITS: &str = "bounds.cache_hits";

// --- histograms -----------------------------------------------------------

/// Input+output tokens per billed LLM call.
pub const LLM_TOKENS_PER_CALL: &str = "llm.tokens_per_call";
/// Per-operator output/input row ratio.
pub const OPERATOR_SELECTIVITY: &str = "operator.selectivity";

// --- gauges ---------------------------------------------------------------

/// Admission-queue depth sampled at arrival/dispatch points.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Active virtual workers after each autoscaler move.
pub const SERVE_WORKERS: &str = "serve.workers";
/// Semantic-cache resident bytes after each insert/eviction.
pub const CACHE_BYTES: &str = "cache.bytes";

// --- health time-series (obs::timeseries keys) ----------------------------
//
// Per-tenant series are suffixed `<name>/<tenant>`; use [`tenant_series`]
// to build the key so the separator stays in one place.

/// End-to-end query latency in virtual seconds (per tenant).
pub const HEALTH_LATENCY_S: &str = "serve.latency_s";
/// Dollars billed per completed query (per tenant).
pub const HEALTH_COST_USD: &str = "serve.cost_usd";
/// Queue wait in virtual seconds (per tenant).
pub const HEALTH_QUEUE_WAIT_S: &str = "serve.queue_wait_s";
/// Cache outcome per completion: 1 for any hit, 0 for none (per tenant).
pub const HEALTH_CACHE_HIT: &str = "serve.cache_hit";
/// Admission-queue depth samples (service-wide).
pub const HEALTH_QUEUE_DEPTH: &str = "serve.queue_depth_ts";

/// Builds the per-tenant series key `<name>/<tenant>`.
pub fn tenant_series(name: &str, tenant: &str) -> String {
    format!("{name}/{tenant}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let all = [
            LLM_CALLS,
            LLM_FAULT_RETRIES,
            CACHE_HIT,
            CACHE_COALESCED,
            CACHE_MISS,
            CHECKPOINT_SAVES,
            CHECKPOINT_ERRORS,
            CHECKPOINT_BYTES,
            CHECKPOINT_DELTA_FRAMES,
            STATE_RESTORED_CONTEXTS,
            SQL_STATEMENTS,
            CONTEXT_REUSE_HITS,
            CONTEXT_REUSE_MISSES,
            REWRITES_SPLIT_COMPUTES,
            REWRITES_MERGE_SEARCHES,
            AGG_TRUNCATED_RECORDS,
            WAL_APPENDS,
            WAL_APPEND_ERRORS,
            WAL_COMPACTIONS,
            WAL_COMPACTIONS_DEFERRED,
            WAL_COMPACTION_ERRORS,
            WAL_SEGMENTS_SEALED,
            WAL_FSYNCS,
            WAL_GROUP_FLUSHES,
            WAL_REPLAYED_RECORDS,
            WAL_SKIPPED_RECORDS,
            WAL_DROPPED_TAILS,
            SLO_ALERTS,
            NET_CONNS_OPENED,
            NET_CONNS_CLOSED,
            NET_FRAMES_IN,
            NET_FRAMES_OUT,
            NET_BYTES_IN,
            NET_BYTES_OUT,
            NET_WIRE_ERRORS,
            NET_PLAN_HASH_HITS,
            AUTOSCALE_UPS,
            AUTOSCALE_DOWNS,
            BOUNDS_CHECKED,
            BOUNDS_UNBOUNDED,
            BOUNDS_REJECTS,
            BOUNDS_CACHE_HITS,
            LLM_TOKENS_PER_CALL,
            OPERATOR_SELECTIVITY,
            SERVE_QUEUE_DEPTH,
            SERVE_WORKERS,
            CACHE_BYTES,
            HEALTH_LATENCY_S,
            HEALTH_COST_USD,
            HEALTH_QUEUE_WAIT_S,
            HEALTH_CACHE_HIT,
            HEALTH_QUEUE_DEPTH,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for name in all {
            assert!(seen.insert(name), "duplicate metric name: {name}");
        }
    }

    #[test]
    fn tenant_series_key_shape() {
        assert_eq!(
            tenant_series(HEALTH_LATENCY_S, "acme"),
            "serve.latency_s/acme"
        );
    }
}
