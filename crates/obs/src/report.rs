//! Trace snapshots and the two renderers: `EXPLAIN ANALYZE` text and
//! JSONL export.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::Event;
use crate::json::Json;
use crate::metric::{Gauge, Histogram};
use crate::span::SpanData;

/// Inclusive totals for a span subtree.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanTotals {
    /// Billed LLM attempts (successes + fault retries).
    pub calls: u64,
    /// Input tokens billed.
    pub input_tokens: u64,
    /// Output tokens billed.
    pub output_tokens: u64,
    /// Dollars billed.
    pub cost_usd: f64,
}

/// An immutable, deterministic snapshot of a recorder's state.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Spans in creation (id) order.
    pub spans: Vec<SpanData>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Gauges (values sampled over virtual time).
    pub gauges: BTreeMap<String, Gauge>,
    /// Events recorded with no open span.
    pub orphans: Vec<Event>,
}

impl Trace {
    /// Ids of root spans (no parent), in creation order.
    pub fn roots(&self) -> Vec<usize> {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.id)
            .collect()
    }

    /// Ids of direct children of `id`, in creation order.
    pub fn children(&self, id: usize) -> Vec<usize> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .map(|s| s.id)
            .collect()
    }

    /// Inclusive totals for the subtree rooted at `id` (self + all
    /// descendants).
    pub fn inclusive(&self, id: usize) -> SpanTotals {
        let span = &self.spans[id];
        let mut totals = SpanTotals {
            calls: span.calls,
            input_tokens: span.input_tokens,
            output_tokens: span.output_tokens,
            cost_usd: span.cost_usd,
        };
        for child in self.children(id) {
            let sub = self.inclusive(child);
            totals.calls += sub.calls;
            totals.input_tokens += sub.input_tokens;
            totals.output_tokens += sub.output_tokens;
            totals.cost_usd += sub.cost_usd;
        }
        totals
    }

    /// Renders the `EXPLAIN ANALYZE`-style profile: one tree per root
    /// (query) span, each row showing rows in/out, inclusive billed
    /// calls, inclusive $ and virtual seconds, and the percentage of the
    /// enclosing query's totals, followed by a counters block.
    pub fn explain_analyze(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for root in self.roots() {
            let root_totals = self.inclusive(root);
            let root_duration = self.spans[root].duration_s();
            self.render_node(&mut out, root, "", true, &root_totals, root_duration);
        }
        if let Some(line) = self.cache_summary() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(line) = self.durability_summary() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(line) = self.bounds_summary() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(line) = self.health_summary() {
            out.push_str(&line);
            out.push('\n');
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: count={} mean={:.2}",
                h.count,
                h.mean()
            );
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(
                out,
                "gauge {name}: samples={} last={:.2} max={:.2}",
                g.samples.len(),
                g.last(),
                g.max()
            );
        }
        out
    }

    /// One-line semantic-cache summary from the `cache.*` counters and
    /// the `cache.bytes` gauge, or `None` when no cache activity was
    /// recorded.
    pub fn cache_summary(&self) -> Option<String> {
        use crate::registry;
        let hits = self.counters.get(registry::CACHE_HIT).copied().unwrap_or(0);
        let coalesced = self
            .counters
            .get(registry::CACHE_COALESCED)
            .copied()
            .unwrap_or(0);
        let misses = self
            .counters
            .get(registry::CACHE_MISS)
            .copied()
            .unwrap_or(0);
        let lookups = hits + coalesced + misses;
        if lookups == 0 {
            return None;
        }
        let rate = 100.0 * (hits + coalesced) as f64 / lookups as f64;
        let bytes = self
            .gauges
            .get(crate::registry::CACHE_BYTES)
            .map(|g| format!(", {:.0} bytes resident", g.last()))
            .unwrap_or_default();
        Some(format!(
            "semantic cache: {hits} hits / {coalesced} coalesced / {misses} misses (hit rate {rate:.1}%{bytes})"
        ))
    }

    /// One-line durability summary from the `checkpoint.*`, `wal.*`, and
    /// `state.*` counters, or `None` when no durable-state activity was
    /// recorded.
    pub fn durability_summary(&self) -> Option<String> {
        use crate::registry;
        let count = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let saves = count(registry::CHECKPOINT_SAVES);
        let restored = count(registry::STATE_RESTORED_CONTEXTS);
        let appends = count(registry::WAL_APPENDS);
        let replayed = count(registry::WAL_REPLAYED_RECORDS);
        let errors = count(registry::CHECKPOINT_ERRORS) + count(registry::WAL_APPEND_ERRORS);
        if saves + restored + appends + replayed + errors == 0 {
            return None;
        }
        Some(format!(
            "durability: {saves} checkpoints / {appends} wal appends (restored {restored} contexts, replayed {replayed} records, {errors} errors)"
        ))
    }

    /// One-line static cost-bound summary from the `bounds.*` counters,
    /// or `None` when no bound gate ran. `bounds.checked` exists
    /// (possibly at zero) whenever the serve layer had the gate
    /// configured.
    pub fn bounds_summary(&self) -> Option<String> {
        use crate::registry;
        let checked = self.counters.get(registry::BOUNDS_CHECKED).copied()?;
        let count = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let unbounded = count(registry::BOUNDS_UNBOUNDED);
        let rejects = count(registry::BOUNDS_REJECTS);
        let cache_hits = count(registry::BOUNDS_CACHE_HITS);
        Some(format!(
            "bounds: {checked} plans checked, {unbounded} unbounded, {rejects} over-budget rejects ({cache_hits} cache hits)"
        ))
    }

    /// One-line runtime-health summary from the `slo.alerts` counter, or
    /// `None` when no SLO evaluation ran. The counter exists (possibly
    /// at zero) whenever the service evaluated tenant SLOs.
    pub fn health_summary(&self) -> Option<String> {
        let alerts = self.counters.get(crate::registry::SLO_ALERTS).copied()?;
        let verdict = if alerts == 0 { "ok" } else { "breach" };
        Some(format!("health: {alerts} slo burn-rate alerts ({verdict})"))
    }

    fn render_node(
        &self,
        out: &mut String,
        id: usize,
        prefix: &str,
        is_last: bool,
        root_totals: &SpanTotals,
        root_duration: f64,
    ) {
        let span = &self.spans[id];
        let totals = self.inclusive(id);
        let duration = span.duration_s();
        let connector = if prefix.is_empty() {
            ""
        } else if is_last {
            "└─ "
        } else {
            "├─ "
        };
        let rows = match (span.rows_in, span.rows_out) {
            (Some(i), Some(o)) => format!("  rows={i}->{o}"),
            (None, Some(o)) => format!("  rows=->{o}"),
            _ => String::new(),
        };
        let pct_cost = if root_totals.cost_usd > 0.0 {
            100.0 * totals.cost_usd / root_totals.cost_usd
        } else {
            0.0
        };
        let pct_time = if root_duration > 0.0 {
            100.0 * duration / root_duration
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{prefix}{connector}{} \"{}\"{rows}  calls={}  ${:.6} ({:.1}%)  {:.3}s ({:.1}%)",
            span.kind.name(),
            span.name,
            totals.calls,
            totals.cost_usd,
            pct_cost,
            duration,
            pct_time,
        );
        let children = self.children(id);
        let child_prefix = if prefix.is_empty() {
            "   ".to_string()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        for (i, child) in children.iter().enumerate() {
            self.render_node(
                out,
                *child,
                &child_prefix,
                i + 1 == children.len(),
                root_totals,
                root_duration,
            );
        }
    }

    /// Exports the trace as JSONL: one `span` line per span in id order,
    /// then one `counters` line, one `histogram` line per histogram, and
    /// an `orphan_events` line when any exist. Deterministic byte-for-byte
    /// for a given recorded state.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&span.to_json().render());
            out.push('\n');
        }
        let mut counters = Json::obj().field("type", "counters");
        for (name, value) in &self.counters {
            counters = counters.field(name, *value);
        }
        out.push_str(&counters.render());
        out.push('\n');
        for (name, h) in &self.histograms {
            let line = Json::obj()
                .field("type", "histogram")
                .field("name", name.as_str())
                .field("data", h.to_json());
            out.push_str(&line.render());
            out.push('\n');
        }
        for (name, g) in &self.gauges {
            let line = Json::obj()
                .field("type", "gauge")
                .field("name", name.as_str())
                .field("data", g.to_json());
            out.push_str(&line.render());
            out.push('\n');
        }
        if !self.orphans.is_empty() {
            let line = Json::obj().field("type", "orphan_events").field(
                "events",
                Json::Arr(self.orphans.iter().map(Event::to_json).collect()),
            );
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span::SpanKind;

    fn sample() -> Recorder {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "demo", 0.0);
        let op = r.span(SpanKind::AgenticOp, "compute", 0.0);
        op.rows(100, 10);
        r.event(Event::LlmCall {
            model: "sim-4o".into(),
            input_tokens: 100,
            output_tokens: 10,
            cost_usd: 0.25,
            latency_s: 4.0,
            faulted: false,
        });
        op.finish(4.0);
        let op2 = r.span(SpanKind::AgenticOp, "search", 4.0);
        r.event(Event::LlmCall {
            model: "sim-4o-mini".into(),
            input_tokens: 50,
            output_tokens: 5,
            cost_usd: 0.75,
            latency_s: 2.0,
            faulted: false,
        });
        op2.finish(6.0);
        q.finish(6.0);
        r.counter_add("llm.calls", 2);
        r
    }

    #[test]
    fn inclusive_totals_sum_children() {
        let t = sample().trace();
        let root = t.roots()[0];
        let totals = t.inclusive(root);
        assert_eq!(totals.calls, 2);
        assert!((totals.cost_usd - 1.0).abs() < 1e-12);
        let child_sum: f64 = t
            .children(root)
            .iter()
            .map(|c| t.inclusive(*c).cost_usd)
            .sum();
        assert!((child_sum - totals.cost_usd).abs() < 1e-12);
    }

    #[test]
    fn explain_analyze_shows_tree_and_percentages() {
        let text = sample().explain_analyze();
        assert!(text.starts_with("EXPLAIN ANALYZE\n"));
        assert!(text.contains("query \"demo\""));
        assert!(text.contains("├─ agentic_op \"compute\""));
        assert!(text.contains("└─ agentic_op \"search\""));
        assert!(text.contains("rows=100->10"));
        assert!(text.contains("(100.0%)"));
        assert!(text.contains("(25.0%)"), "compute is 25% of $1.00:\n{text}");
        assert!(text.contains("llm.calls = 2"));
    }

    #[test]
    fn jsonl_lists_spans_then_counters() {
        let jsonl = sample().export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with(r#"{"type":"span","id":0"#));
        assert!(lines[3].starts_with(r#"{"type":"counters""#));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn gauges_render_and_export() {
        let r = sample();
        r.gauge_set("serve.queue_depth", 0.0, 2.0);
        r.gauge_set("serve.queue_depth", 3.0, 5.0);
        r.gauge_set("serve.queue_depth", 6.0, 1.0);
        let text = r.explain_analyze();
        assert!(
            text.contains("gauge serve.queue_depth: samples=3 last=1.00 max=5.00"),
            "{text}"
        );
        let jsonl = r.export_jsonl();
        assert!(jsonl.contains(
            r#"{"type":"gauge","name":"serve.queue_depth","data":{"samples":[[0,2],[3,5],[6,1]],"last":1,"max":5}}"#
        ));
        // Disabled recorders ignore gauge sets.
        let off = Recorder::disabled();
        off.gauge_set("x", 0.0, 1.0);
        assert!(off.trace().gauges.is_empty());
    }

    #[test]
    fn cache_counters_render_a_summary_line() {
        let r = sample();
        // No cache activity: no summary.
        assert!(r.trace().cache_summary().is_none());
        assert!(!r.explain_analyze().contains("semantic cache:"));
        r.counter_add("cache.hit", 6);
        r.counter_add("cache.coalesced", 2);
        r.counter_add("cache.miss", 8);
        r.gauge_set("cache.bytes", 16.0, 2048.0);
        let text = r.explain_analyze();
        assert!(
            text.contains(
                "semantic cache: 6 hits / 2 coalesced / 8 misses (hit rate 50.0%, 2048 bytes resident)"
            ),
            "{text}"
        );
    }

    #[test]
    fn durability_counters_render_a_summary_line() {
        let r = sample();
        // No durable-state activity: no summary.
        assert!(r.trace().durability_summary().is_none());
        assert!(!r.explain_analyze().contains("durability:"));
        r.counter_add("checkpoint.saves", 3);
        r.counter_add("wal.appends", 12);
        r.counter_add("state.restored_contexts", 2);
        r.counter_add("wal.replayed_records", 7);
        let text = r.explain_analyze();
        assert!(
            text.contains(
                "durability: 3 checkpoints / 12 wal appends (restored 2 contexts, replayed 7 records, 0 errors)"
            ),
            "{text}"
        );
    }

    #[test]
    fn bounds_counters_render_a_summary_line() {
        let r = sample();
        // No bound gate configured: no summary.
        assert!(r.trace().bounds_summary().is_none());
        assert!(!r.explain_analyze().contains("bounds:"));
        // The gate mirrors its counters even when all are zero, so the
        // line always appears once gating is on.
        r.counter_add("bounds.checked", 0);
        assert_eq!(
            r.trace().bounds_summary().as_deref(),
            Some("bounds: 0 plans checked, 0 unbounded, 0 over-budget rejects (0 cache hits)")
        );
        r.counter_add("bounds.checked", 5);
        r.counter_add("bounds.unbounded", 1);
        r.counter_add("bounds.rejects", 2);
        r.counter_add("bounds.cache_hits", 3);
        let text = r.explain_analyze();
        assert!(
            text.contains(
                "bounds: 5 plans checked, 1 unbounded, 2 over-budget rejects (3 cache hits)"
            ),
            "{text}"
        );
    }

    #[test]
    fn slo_counter_renders_a_health_line() {
        let r = sample();
        assert!(r.trace().health_summary().is_none());
        assert!(!r.explain_analyze().contains("health:"));
        r.counter_add("slo.alerts", 0);
        assert_eq!(
            r.trace().health_summary().as_deref(),
            Some("health: 0 slo burn-rate alerts (ok)")
        );
        r.counter_add("slo.alerts", 2);
        let text = r.explain_analyze();
        assert!(
            text.contains("health: 2 slo burn-rate alerts (breach)"),
            "{text}"
        );
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::default();
        assert!(t.explain_analyze().contains("no spans"));
        assert_eq!(t.to_jsonl(), "{\"type\":\"counters\"}\n");
    }
}
