//! Typed events attached to spans.
//!
//! Events are points (or billed sub-intervals) inside a span: individual
//! LLM calls, injected fault retries, context-reuse decisions, SQL
//! statements, and plan rewrites. They carry no wall-clock timestamps —
//! the simulated clock does not advance *inside* a parallel LLM batch,
//! so ordering within a span is normalized at export time instead.

use crate::json::Json;

/// A typed event recorded on the innermost open span.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One successful LLM call (the billed attempt that produced output).
    LlmCall {
        /// Model name, e.g. `sim-4o-mini`.
        model: String,
        /// Prompt tokens billed.
        input_tokens: u64,
        /// Completion tokens billed.
        output_tokens: u64,
        /// Dollars billed for this attempt.
        cost_usd: f64,
        /// Virtual seconds this call contributed (incl. retry backoff).
        latency_s: f64,
        /// True when a fault was injected before this attempt succeeded.
        faulted: bool,
    },
    /// A fault-injected failed attempt: billed partial tokens + backoff.
    FaultRetry {
        /// Model name the failed attempt was billed against.
        model: String,
        /// Extra virtual seconds spent on the failed attempt + backoff.
        backoff_s: f64,
        /// Input tokens billed for the failed attempt.
        billed_input_tokens: u64,
        /// Output tokens billed for the truncated failed attempt.
        billed_output_tokens: u64,
        /// Dollars billed for the failed attempt.
        cost_usd: f64,
    },
    /// The ContextManager served a materialized context above threshold.
    ReuseHit {
        /// Instruction that was matched.
        instruction: String,
        /// Cosine similarity of the winning context description.
        similarity: f64,
    },
    /// No materialized context cleared the similarity threshold.
    ReuseMiss {
        /// Instruction that was probed.
        instruction: String,
        /// Best similarity seen (0 when the store is empty).
        best_similarity: f64,
    },
    /// A SQL statement executed against the catalog.
    Sql {
        /// The statement text.
        statement: String,
        /// Rows in the result.
        rows_out: usize,
    },
    /// A logical-plan rewrite fired.
    Rewrite {
        /// Rule name, e.g. `split_computes` / `merge_searches`.
        rule: String,
        /// Human-readable detail (instruction prefix, op delta, ...).
        detail: String,
    },
    /// An error path was taken. Emitted alongside every error counter
    /// (e.g. `checkpoint.errors`, `wal.append_errors`) so failures leave
    /// a typed record — and a flight-recorder entry — not just a number.
    Error {
        /// The error counter this event accompanies.
        counter: String,
        /// Human-readable cause.
        detail: String,
    },
    /// The autoscaler resized the active worker pool.
    Scale {
        /// Virtual instant of the move.
        at_s: f64,
        /// Active workers before.
        from: u64,
        /// Active workers after.
        to: u64,
        /// Windowed p99 latency that justified the move.
        p99_s: f64,
        /// Fast-window latency burn rate at decision time.
        fast_burn: f64,
        /// Slow-window latency burn rate at decision time.
        slow_burn: f64,
    },
}

impl Event {
    /// Stable lowercase identifier used in reports and JSONL.
    pub fn name(&self) -> &'static str {
        match self {
            Event::LlmCall { .. } => "llm_call",
            Event::FaultRetry { .. } => "fault_retry",
            Event::ReuseHit { .. } => "reuse_hit",
            Event::ReuseMiss { .. } => "reuse_miss",
            Event::Sql { .. } => "sql",
            Event::Rewrite { .. } => "rewrite",
            Event::Error { .. } => "error",
            Event::Scale { .. } => "scale",
        }
    }

    /// Serializes the event as a JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Event::LlmCall {
                model,
                input_tokens,
                output_tokens,
                cost_usd,
                latency_s,
                faulted,
            } => Json::obj()
                .field("event", self.name())
                .field("model", model.as_str())
                .field("input_tokens", *input_tokens)
                .field("output_tokens", *output_tokens)
                .field("cost_usd", *cost_usd)
                .field("latency_s", *latency_s)
                .field("faulted", *faulted),
            Event::FaultRetry {
                model,
                backoff_s,
                billed_input_tokens,
                billed_output_tokens,
                cost_usd,
            } => Json::obj()
                .field("event", self.name())
                .field("model", model.as_str())
                .field("backoff_s", *backoff_s)
                .field("billed_input_tokens", *billed_input_tokens)
                .field("billed_output_tokens", *billed_output_tokens)
                .field("cost_usd", *cost_usd),
            Event::ReuseHit {
                instruction,
                similarity,
            } => Json::obj()
                .field("event", self.name())
                .field("instruction", instruction.as_str())
                .field("similarity", *similarity),
            Event::ReuseMiss {
                instruction,
                best_similarity,
            } => Json::obj()
                .field("event", self.name())
                .field("instruction", instruction.as_str())
                .field("best_similarity", *best_similarity),
            Event::Sql {
                statement,
                rows_out,
            } => Json::obj()
                .field("event", self.name())
                .field("statement", statement.as_str())
                .field("rows_out", *rows_out),
            Event::Rewrite { rule, detail } => Json::obj()
                .field("event", self.name())
                .field("rule", rule.as_str())
                .field("detail", detail.as_str()),
            Event::Error { counter, detail } => Json::obj()
                .field("event", self.name())
                .field("counter", counter.as_str())
                .field("detail", detail.as_str()),
            Event::Scale {
                at_s,
                from,
                to,
                p99_s,
                fast_burn,
                slow_burn,
            } => Json::obj()
                .field("event", self.name())
                .field("at_s", *at_s)
                .field("from", *from)
                .field("to", *to)
                .field("p99_s", *p99_s)
                .field("fast_burn", *fast_burn)
                .field("slow_burn", *slow_burn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_compact_and_named() {
        let e = Event::LlmCall {
            model: "sim-4o".into(),
            input_tokens: 100,
            output_tokens: 20,
            cost_usd: 0.001,
            latency_s: 2.0,
            faulted: false,
        };
        let line = e.to_json().render();
        assert!(line.starts_with(r#"{"event":"llm_call","model":"sim-4o""#));
        assert_eq!(e.name(), "llm_call");
    }

    #[test]
    fn scale_event_is_typed() {
        let e = Event::Scale {
            at_s: 120.0,
            from: 2,
            to: 3,
            p99_s: 42.5,
            fast_burn: 3.0,
            slow_burn: 1.5,
        };
        assert_eq!(e.name(), "scale");
        let line = e.to_json().render();
        assert!(line.starts_with(r#"{"event":"scale","at_s":120"#), "{line}");
        assert!(line.contains(r#""from":2"#) && line.contains(r#""to":3"#));
    }

    #[test]
    fn error_event_names_its_counter() {
        let e = Event::Error {
            counter: "checkpoint.errors".into(),
            detail: "commit failed: disk full".into(),
        };
        assert_eq!(e.name(), "error");
        assert_eq!(
            e.to_json().render(),
            r#"{"event":"error","counter":"checkpoint.errors","detail":"commit failed: disk full"}"#
        );
    }
}
