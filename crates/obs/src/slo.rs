//! Per-tenant SLO targets and multi-window burn-rate evaluation.
//!
//! A tenant declares targets — a p99 latency bound and/or a $/query
//! ceiling — and the service evaluates them against the windowed health
//! series (`obs::timeseries`) the way an SRE would: compare the error
//! budget actually burned over a *fast* and a *slow* trailing window,
//! and alert only when **both** exceed the threshold. The fast window
//! makes alerts responsive; the slow window keeps a brief spike from
//! paging anyone.
//!
//! Burn-rate semantics:
//!
//! * **Latency**: the target "p99 ≤ T" grants a 1% error budget (1% of
//!   queries may exceed T). Burn rate = observed fraction over T ÷ 1%,
//!   so burn 1.0 = exactly on budget, burn 3.0 = breaching three times
//!   as fast as the budget allows.
//! * **Cost**: burn rate = windowed mean $/query ÷ the declared
//!   ceiling; burn 1.0 = spending exactly at the ceiling.
//!
//! Everything is pure arithmetic on deterministic window snapshots, so
//! verdicts are byte-stable run to run.

use crate::json::Json;
use crate::timeseries::SlidingWindow;

/// Error budget implied by a p99 target: 1% of requests may exceed it.
const P99_BUDGET: f64 = 0.01;

/// Declared service-level objectives for one tenant. `None` fields are
/// simply not evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloTarget {
    /// 99% of queries must complete within this many virtual seconds.
    pub p99_latency_s: Option<f64>,
    /// Mean dollars per completed query must stay at or below this.
    pub usd_per_query: Option<f64>,
}

impl SloTarget {
    /// A target with no objectives (never alerts).
    pub fn none() -> SloTarget {
        SloTarget::default()
    }

    /// Sets the p99 latency bound in virtual seconds.
    pub fn p99_latency(mut self, seconds: f64) -> SloTarget {
        self.p99_latency_s = Some(seconds);
        self
    }

    /// Sets the $/query ceiling.
    pub fn usd_per_query(mut self, dollars: f64) -> SloTarget {
        self.usd_per_query = Some(dollars);
        self
    }

    /// True when at least one objective is declared.
    pub fn is_declared(&self) -> bool {
        self.p99_latency_s.is_some() || self.usd_per_query.is_some()
    }
}

/// Evaluation windows and alert threshold shared by every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Fast (responsive) trailing window, virtual seconds.
    pub fast_window_s: f64,
    /// Slow (spike-suppressing) trailing window, virtual seconds.
    pub slow_window_s: f64,
    /// Alert when both windows burn faster than this (1.0 = on budget).
    pub burn_threshold: f64,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            fast_window_s: 60.0,
            slow_window_s: 300.0,
            burn_threshold: 1.0,
        }
    }
}

/// Which objective a burn-rate pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// The p99 latency objective.
    Latency,
    /// The $/query objective.
    Cost,
}

impl SloKind {
    /// Stable lowercase identifier used in reports and JSONL.
    pub fn name(&self) -> &'static str {
        match self {
            SloKind::Latency => "latency",
            SloKind::Cost => "cost",
        }
    }
}

/// Burn rates of one objective over both evaluation windows.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRate {
    /// Objective this burn pair evaluates.
    pub kind: SloKind,
    /// Burn over the fast window.
    pub fast: f64,
    /// Burn over the slow window.
    pub slow: f64,
    /// True when both windows exceed the policy threshold.
    pub alerting: bool,
}

impl BurnRate {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("kind", self.kind.name())
            .field("fast_burn", self.fast)
            .field("slow_burn", self.slow)
            .field("alerting", self.alerting)
    }
}

/// One tenant's SLO evaluation: burn rates per declared objective and
/// the overall verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// Tenant id the verdict applies to.
    pub tenant: String,
    /// Burn rates, in [`SloKind`] declaration order (latency, cost).
    pub burns: Vec<BurnRate>,
    /// True when any objective is alerting.
    pub alerting: bool,
}

impl SloVerdict {
    /// `"ok"` or `"breach"`, for dashboards.
    pub fn verdict(&self) -> &'static str {
        if self.alerting {
            "breach"
        } else {
            "ok"
        }
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("tenant", self.tenant.as_str())
            .field("verdict", self.verdict())
            .field(
                "burns",
                Json::Arr(self.burns.iter().map(BurnRate::to_json).collect()),
            )
    }
}

/// Evaluates one tenant's declared objectives against its windowed
/// latency and cost series at virtual instant `now_s`.
///
/// An objective with an empty window does not alert — no traffic, no
/// burn. Returns a verdict even when no objective is declared (empty
/// `burns`, never alerting) so callers can render every tenant row.
pub fn evaluate(
    tenant: &str,
    target: &SloTarget,
    latency: Option<&SlidingWindow>,
    cost: Option<&SlidingWindow>,
    now_s: f64,
    policy: &SloPolicy,
) -> SloVerdict {
    let mut burns = Vec::new();
    if let Some(bound) = target.p99_latency_s {
        let burn = |window_s: f64| -> f64 {
            latency
                .map(|w| w.fraction_over(now_s, window_s, bound) / P99_BUDGET)
                .unwrap_or(0.0)
        };
        let fast = burn(policy.fast_window_s);
        let slow = burn(policy.slow_window_s);
        burns.push(BurnRate {
            kind: SloKind::Latency,
            fast,
            slow,
            alerting: fast > policy.burn_threshold && slow > policy.burn_threshold,
        });
    }
    if let Some(ceiling) = target.usd_per_query {
        let burn = |window_s: f64| -> f64 {
            cost.map(|w| {
                if w.count_in(now_s, window_s) == 0 {
                    0.0
                } else {
                    w.mean_in(now_s, window_s) / ceiling
                }
            })
            .unwrap_or(0.0)
        };
        let fast = burn(policy.fast_window_s);
        let slow = burn(policy.slow_window_s);
        burns.push(BurnRate {
            kind: SloKind::Cost,
            fast,
            slow,
            alerting: fast > policy.burn_threshold && slow > policy.burn_threshold,
        });
    }
    let alerting = burns.iter().any(|b| b.alerting);
    SloVerdict {
        tenant: tenant.to_string(),
        burns,
        alerting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_with(values: &[(f64, f64)]) -> SlidingWindow {
        let mut w = SlidingWindow::new(10.0, 60);
        for (t, v) in values {
            w.record(*t, *v);
        }
        w
    }

    #[test]
    fn undeclared_target_never_alerts() {
        let v = evaluate(
            "t",
            &SloTarget::none(),
            None,
            None,
            100.0,
            &SloPolicy::default(),
        );
        assert!(v.burns.is_empty());
        assert!(!v.alerting);
        assert_eq!(v.verdict(), "ok");
    }

    #[test]
    fn latency_burn_is_violation_fraction_over_budget() {
        // 1 of 4 samples over the 2.0s bound → 25% violating → burn 25.
        let w = window_with(&[(0.0, 1.0), (1.0, 1.5), (2.0, 1.9), (3.0, 5.0)]);
        let target = SloTarget::none().p99_latency(2.0);
        let v = evaluate("t", &target, Some(&w), None, 3.0, &SloPolicy::default());
        assert_eq!(v.burns.len(), 1);
        assert!((v.burns[0].fast - 25.0).abs() < 1e-9);
        assert!(v.alerting, "both windows see the same samples here");
    }

    #[test]
    fn no_traffic_means_no_burn() {
        let w = SlidingWindow::new(10.0, 60);
        let target = SloTarget::none().p99_latency(2.0).usd_per_query(0.01);
        let v = evaluate(
            "t",
            &target,
            Some(&w),
            Some(&w),
            100.0,
            &SloPolicy::default(),
        );
        assert!(!v.alerting);
        assert_eq!(v.burns[0].fast, 0.0);
        assert_eq!(v.burns[1].fast, 0.0);
    }

    #[test]
    fn cost_burn_is_mean_over_ceiling() {
        let w = window_with(&[(0.0, 0.02), (1.0, 0.04)]);
        let target = SloTarget::none().usd_per_query(0.01);
        let v = evaluate("t", &target, None, Some(&w), 1.0, &SloPolicy::default());
        assert_eq!(v.burns[0].kind, SloKind::Cost);
        assert!((v.burns[0].fast - 3.0).abs() < 1e-9, "mean 0.03 / 0.01");
        assert!(v.alerting);
        assert_eq!(v.verdict(), "breach");
    }

    #[test]
    fn spike_outside_slow_window_does_not_alert() {
        // Burn high in the fast window only → no alert (needs both).
        let mut w = SlidingWindow::new(10.0, 60);
        // 99 good samples long ago (inside slow window, outside fast).
        for i in 0..99 {
            w.record(300.0 + i as f64 * 0.1, 1.0);
        }
        // One bad sample just now.
        w.record(590.0, 10.0);
        let target = SloTarget::none().p99_latency(2.0);
        let policy = SloPolicy {
            fast_window_s: 60.0,
            slow_window_s: 300.0,
            burn_threshold: 2.0,
        };
        let v = evaluate("t", &target, Some(&w), None, 590.0, &policy);
        let b = &v.burns[0];
        assert!(b.fast > policy.burn_threshold, "fast window is all-bad");
        assert!(b.slow <= policy.burn_threshold, "slow window dilutes it");
        assert!(!b.alerting);
    }

    #[test]
    fn verdict_json_shape() {
        let w = window_with(&[(0.0, 5.0)]);
        let target = SloTarget::none().p99_latency(2.0);
        let v = evaluate("acme", &target, Some(&w), None, 0.0, &SloPolicy::default());
        let line = v.to_json().render();
        assert!(line.starts_with(r#"{"tenant":"acme","verdict":"breach""#));
        assert!(line.contains(r#""kind":"latency""#));
    }
}
