//! Monotonic counters, fixed-bucket histograms, timestamped gauges, and
//! exact percentile summaries.

use crate::json::Json;

/// A fixed-bound cumulative histogram (Prometheus-style, but `counts[i]`
/// is the number of samples in `(bounds[i-1], bounds[i]]`, with a final
/// overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending. `counts.len() == bounds.len() + 1`.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Serializes as a JSON object (without its registry name).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("bounds", self.bounds.clone())
            .field(
                "counts",
                Json::Arr(self.counts.iter().map(|c| Json::Num(*c as f64)).collect()),
            )
            .field("count", self.count)
            .field("sum", self.sum)
    }
}

/// A gauge: a value sampled over virtual time. Unlike a counter it can go
/// down (queue depth, in-flight queries); every `set` keeps the sample so
/// renderers can report the trajectory, not just the final value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    /// `(virtual_time_s, value)` samples in recording order.
    pub samples: Vec<(f64, f64)>,
}

impl Gauge {
    /// Creates an empty gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records the gauge's value at a virtual instant.
    pub fn set(&mut self, time_s: f64, value: f64) {
        self.samples.push((time_s, value));
    }

    /// The most recent value (0 when never set).
    pub fn last(&self) -> f64 {
        self.samples.last().map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// The largest value ever recorded (0 when never set).
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Serializes as a JSON object (without its registry name).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "samples",
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|(t, v)| Json::Arr(vec![Json::Num(*t), Json::Num(*v)]))
                        .collect(),
                ),
            )
            .field("last", self.last())
            .field("max", self.max())
    }
}

/// An exact percentile summary: stores every sample and answers quantile
/// queries by nearest-rank on the sorted set. Simulation scale keeps the
/// sample counts small, so exactness beats sketching here — two runs at
/// the same seed summarize to identical bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Serializes as a JSON object with the canonical percentiles.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count() as u64)
            .field("mean", self.mean())
            .field("p50", self.p50())
            .field("p95", self.p95())
            .field("p99", self.p99())
    }
}

/// Default bucket bounds for a histogram name. Centralized so every
/// recorder produces identically-shaped histograms for the same metric.
pub fn default_bounds(name: &str) -> &'static [f64] {
    match name {
        crate::registry::LLM_TOKENS_PER_CALL => &[
            64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0,
        ],
        crate::registry::OPERATOR_SELECTIVITY => &[0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
        _ => &[0.1, 1.0, 10.0, 100.0, 1000.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_upper_inclusive_with_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 56.5).abs() < 1e-12);
        assert!((h.mean() - 14.125).abs() < 1e-12);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new(&[1.0]);
        h.record(2.0);
        assert_eq!(
            h.to_json().render(),
            r#"{"bounds":[1],"counts":[0,1],"count":1,"sum":2}"#
        );
    }

    #[test]
    fn gauge_tracks_last_and_max() {
        let mut g = Gauge::new();
        assert_eq!(g.last(), 0.0);
        assert_eq!(g.max(), 0.0);
        g.set(0.0, 3.0);
        g.set(1.0, 7.0);
        g.set(2.0, 2.0);
        assert_eq!(g.last(), 2.0);
        assert_eq!(g.max(), 7.0);
        assert_eq!(g.samples.len(), 3);
        assert_eq!(
            g.to_json().render(),
            r#"{"samples":[[0,3],[1,7],[2,2]],"last":2,"max":7}"#
        );
    }

    #[test]
    fn summary_quantiles_are_nearest_rank() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(
            s.to_json().render(),
            r#"{"count":0,"mean":0,"p50":0,"p95":0,"p99":0}"#
        );
    }

    #[test]
    fn single_sample_summary() {
        let mut s = Summary::new();
        s.record(4.2);
        assert_eq!(s.p50(), 4.2);
        assert_eq!(s.p99(), 4.2);
    }
}
