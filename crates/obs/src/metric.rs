//! Monotonic counters and fixed-bucket histograms.

use crate::json::Json;

/// A fixed-bound cumulative histogram (Prometheus-style, but `counts[i]`
/// is the number of samples in `(bounds[i-1], bounds[i]]`, with a final
/// overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending. `counts.len() == bounds.len() + 1`.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Serializes as a JSON object (without its registry name).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("bounds", self.bounds.clone())
            .field(
                "counts",
                Json::Arr(self.counts.iter().map(|c| Json::Num(*c as f64)).collect()),
            )
            .field("count", self.count)
            .field("sum", self.sum)
    }
}

/// Default bucket bounds for a histogram name. Centralized so every
/// recorder produces identically-shaped histograms for the same metric.
pub fn default_bounds(name: &str) -> &'static [f64] {
    match name {
        "llm.tokens_per_call" => &[
            64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0,
        ],
        "operator.selectivity" => &[0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
        _ => &[0.1, 1.0, 10.0, 100.0, 1000.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_upper_inclusive_with_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(1.0);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 56.5).abs() < 1e-12);
        assert!((h.mean() - 14.125).abs() < 1e-12);
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new(&[1.0]);
        h.record(2.0);
        assert_eq!(
            h.to_json().render(),
            r#"{"bounds":[1],"counts":[0,1],"count":1,"sum":2}"#
        );
    }
}
