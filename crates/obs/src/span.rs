//! Span tree data model.
//!
//! A span is a virtual-time interval attributed to one node of the query
//! hierarchy: query → agentic op → agent step → program (tool call) →
//! physical operator. Leaf LLM calls are recorded as *events* on the
//! innermost open span rather than as spans of their own: they may be
//! issued from a deterministic thread pool, and span identity must stay
//! independent of worker interleaving.

use crate::event::Event;
use crate::json::Json;

/// What layer of the runtime a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole `Query::run` invocation (root of a trace tree).
    Query,
    /// One agentic operator (search / compute / sem-tool dispatch).
    AgenticOp,
    /// One ReAct step of the code agent.
    AgentStep,
    /// One semantic-program tool call (synthesize + optimize + execute).
    Program,
    /// One physical semantic operator inside an executed plan.
    PhysicalOp,
    /// A SQL statement executed against the catalog.
    Sql,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Stable lowercase identifier used in reports and JSONL.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::AgenticOp => "agentic_op",
            SpanKind::AgentStep => "agent_step",
            SpanKind::Program => "program",
            SpanKind::PhysicalOp => "physical_op",
            SpanKind::Sql => "sql",
            SpanKind::Other => "other",
        }
    }
}

/// One recorded span. All times are virtual seconds from the `SimClock`;
/// no wall-clock value ever enters a span, so traces replay bit-for-bit.
#[derive(Debug, Clone)]
pub struct SpanData {
    /// Index into the recorder's span table.
    pub id: usize,
    /// Parent span id, if any.
    pub parent: Option<usize>,
    /// Layer of the hierarchy.
    pub kind: SpanKind,
    /// Human-readable label (operator name, instruction prefix, ...).
    pub name: String,
    /// Virtual start time (seconds).
    pub start_s: f64,
    /// Virtual end time (seconds); `start_s` until finished.
    pub end_s: f64,
    /// Records entering this node, when meaningful.
    pub rows_in: Option<usize>,
    /// Records leaving this node, when meaningful.
    pub rows_out: Option<usize>,
    /// LLM call attempts billed while this span was innermost (self only,
    /// excluding descendants). Fault retries count: they are billed.
    pub calls: u64,
    /// Input tokens billed while this span was innermost (self only).
    pub input_tokens: u64,
    /// Output tokens billed while this span was innermost (self only).
    pub output_tokens: u64,
    /// Dollars billed while this span was innermost (self only).
    pub cost_usd: f64,
    /// Free-form key/value attributes (insertion-ordered).
    pub attrs: Vec<(String, String)>,
    /// Typed events attached while this span was innermost.
    pub events: Vec<Event>,
}

impl SpanData {
    pub(crate) fn new(
        id: usize,
        parent: Option<usize>,
        kind: SpanKind,
        name: String,
        start_s: f64,
    ) -> SpanData {
        SpanData {
            id,
            parent,
            kind,
            name,
            start_s,
            end_s: start_s,
            rows_in: None,
            rows_out: None,
            calls: 0,
            input_tokens: 0,
            output_tokens: 0,
            cost_usd: 0.0,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Virtual duration in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// Serializes this span as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        let mut attrs = Json::obj();
        for (k, v) in &self.attrs {
            attrs = attrs.field(k, v.as_str());
        }
        Json::obj()
            .field("type", "span")
            .field("id", self.id)
            .field(
                "parent",
                match self.parent {
                    Some(p) => Json::Num(p as f64),
                    None => Json::Null,
                },
            )
            .field("kind", self.kind.name())
            .field("name", self.name.as_str())
            .field("start_s", self.start_s)
            .field("end_s", self.end_s)
            .field(
                "rows_in",
                match self.rows_in {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            )
            .field(
                "rows_out",
                match self.rows_out {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            )
            .field("calls", self.calls)
            .field("input_tokens", self.input_tokens)
            .field("output_tokens", self.output_tokens)
            .field("cost_usd", self.cost_usd)
            .field("attrs", attrs)
            .field(
                "events",
                Json::Arr(self.events.iter().map(Event::to_json).collect()),
            )
    }
}

/// Clips a label to at most `max` characters on a char boundary,
/// appending `…` when truncated. Newlines are flattened to spaces so
/// labels stay single-line in reports.
pub fn clip(s: &str, max: usize) -> String {
    let flat: String = s
        .chars()
        .map(|c| {
            if c == '\n' || c == '\r' || c == '\t' {
                ' '
            } else {
                c
            }
        })
        .collect();
    if flat.chars().count() <= max {
        flat
    } else {
        let mut out: String = flat.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_flattens_and_truncates() {
        assert_eq!(clip("short", 10), "short");
        assert_eq!(clip("a\nb\tc", 10), "a b c");
        assert_eq!(clip("abcdefghij", 5), "abcd…");
    }

    #[test]
    fn span_json_has_stable_shape() {
        let mut s = SpanData::new(0, None, SpanKind::Query, "q".into(), 1.5);
        s.end_s = 2.5;
        s.calls = 3;
        let line = s.to_json().render();
        assert!(line.starts_with(r#"{"type":"span","id":0,"parent":null,"kind":"query""#));
        assert!(line.contains(r#""start_s":1.5"#));
        assert!(line.contains(r#""calls":3"#));
    }
}
