//! Deterministic sliding-window time-series store.
//!
//! Whole-run counters and histograms answer "what happened over the
//! run"; the ROADMAP scaling items (latency-targeted autoscaling,
//! shard-aware placement) need "what is happening *now*". This module
//! provides that: a fixed-slot ring of windowed sample buckets keyed off
//! the virtual clock, answering count / mean / quantile queries over any
//! trailing window up to the ring's span.
//!
//! Determinism: slot assignment is pure arithmetic on virtual seconds,
//! samples are kept in insertion order inside each slot, and queries
//! gather slots in ascending slot-index order — so the same seed yields
//! byte-identical snapshots, exactly like the rest of `aida-obs`.

use std::collections::BTreeMap;

use crate::json::Json;

/// One ring slot: the slot index it currently holds samples for, plus
/// the raw samples recorded during that slot's interval.
#[derive(Debug, Clone, Default, PartialEq)]
struct Slot {
    /// Absolute slot index (`floor(t / slot_s)`) these samples belong to.
    idx: u64,
    /// True once any sample landed here for `idx` (distinguishes a live
    /// slot 0 from a never-touched slot).
    live: bool,
    samples: Vec<f64>,
}

/// A fixed-slot sliding window over one metric series.
///
/// The ring spans `slots * slot_s` virtual seconds; recording into a
/// slot whose stored index is stale resets it first, so old samples
/// roll off exactly at slot granularity — never dropped early, never
/// double-counted after expiry.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    slot_s: f64,
    ring: Vec<Slot>,
}

impl SlidingWindow {
    /// Creates a window of `slots` slots, each `slot_s` virtual seconds
    /// wide. Both must be positive.
    pub fn new(slot_s: f64, slots: usize) -> SlidingWindow {
        assert!(slot_s > 0.0, "slot width must be positive");
        assert!(slots > 0, "slot count must be positive");
        SlidingWindow {
            slot_s,
            ring: vec![Slot::default(); slots],
        }
    }

    /// Slot width in virtual seconds.
    pub fn slot_s(&self) -> f64 {
        self.slot_s
    }

    /// Number of ring slots.
    pub fn slots(&self) -> usize {
        self.ring.len()
    }

    /// Total virtual seconds the ring can span.
    pub fn span_s(&self) -> f64 {
        self.slot_s * self.ring.len() as f64
    }

    /// Absolute slot index for a virtual instant.
    pub fn slot_index(&self, time_s: f64) -> u64 {
        (time_s.max(0.0) / self.slot_s) as u64
    }

    /// Records `value` at virtual instant `now_s`.
    pub fn record(&mut self, now_s: f64, value: f64) {
        let idx = self.slot_index(now_s);
        let pos = (idx % self.ring.len() as u64) as usize;
        let slot = &mut self.ring[pos];
        if !slot.live || slot.idx != idx {
            slot.idx = idx;
            slot.live = true;
            slot.samples.clear();
        }
        slot.samples.push(value);
    }

    /// Gathers the samples of every slot inside the trailing window of
    /// `window_s` seconds ending at `now_s`, ascending by slot index
    /// (insertion order within a slot). `window_s` is clamped to the
    /// ring span; a window covers whole slots, so it includes the
    /// current (partial) slot plus the `k - 1` before it, where
    /// `k = ceil(window_s / slot_s)`.
    pub fn samples_in(&self, now_s: f64, window_s: f64) -> Vec<f64> {
        let k = self.window_slots(window_s);
        let now_idx = self.slot_index(now_s);
        let first_idx = now_idx.saturating_sub(k as u64 - 1);
        let mut picked: Vec<&Slot> = self
            .ring
            .iter()
            .filter(|s| s.live && s.idx >= first_idx && s.idx <= now_idx)
            .collect();
        picked.sort_by_key(|s| s.idx);
        picked
            .iter()
            .flat_map(|s| s.samples.iter().copied())
            .collect()
    }

    /// Number of whole slots a `window_s` query covers (≥ 1, ≤ ring len).
    pub fn window_slots(&self, window_s: f64) -> usize {
        ((window_s / self.slot_s).ceil() as usize).clamp(1, self.ring.len())
    }

    /// Sample count inside the trailing window.
    pub fn count_in(&self, now_s: f64, window_s: f64) -> u64 {
        let k = self.window_slots(window_s);
        let now_idx = self.slot_index(now_s);
        let first_idx = now_idx.saturating_sub(k as u64 - 1);
        self.ring
            .iter()
            .filter(|s| s.live && s.idx >= first_idx && s.idx <= now_idx)
            .map(|s| s.samples.len() as u64)
            .sum()
    }

    /// Sum of samples inside the trailing window (ascending slot order,
    /// folded from +0.0, so it is order-stable run to run).
    pub fn sum_in(&self, now_s: f64, window_s: f64) -> f64 {
        self.samples_in(now_s, window_s)
            .iter()
            .fold(0.0, |acc, v| acc + v)
    }

    /// Mean of samples inside the trailing window (0 when empty).
    pub fn mean_in(&self, now_s: f64, window_s: f64) -> f64 {
        let n = self.count_in(now_s, window_s);
        if n == 0 {
            0.0
        } else {
            self.sum_in(now_s, window_s) / n as f64
        }
    }

    /// Nearest-rank quantile over the trailing window (0 when empty),
    /// matching [`crate::Summary::quantile`] semantics.
    pub fn quantile_in(&self, now_s: f64, window_s: f64, q: f64) -> f64 {
        let mut sorted = self.samples_in(now_s, window_s);
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }

    /// Fraction of windowed samples strictly above `threshold` (0 when
    /// the window is empty). The SLO burn-rate math builds on this.
    pub fn fraction_over(&self, now_s: f64, window_s: f64, threshold: f64) -> f64 {
        let samples = self.samples_in(now_s, window_s);
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|v| **v > threshold).count() as f64 / samples.len() as f64
    }

    /// Snapshot of the trailing window's canonical statistics.
    pub fn snapshot(&self, now_s: f64, window_s: f64) -> WindowSnapshot {
        WindowSnapshot {
            window_s: window_s.min(self.span_s()),
            count: self.count_in(now_s, window_s),
            mean: self.mean_in(now_s, window_s),
            p50: self.quantile_in(now_s, window_s, 0.50),
            p95: self.quantile_in(now_s, window_s, 0.95),
            p99: self.quantile_in(now_s, window_s, 0.99),
        }
    }
}

/// Canonical statistics of one trailing window, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Effective window span in virtual seconds.
    pub window_s: f64,
    /// Samples inside the window.
    pub count: u64,
    /// Mean (0 when empty).
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl WindowSnapshot {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("window_s", self.window_s)
            .field("count", self.count)
            .field("mean", self.mean)
            .field("p50", self.p50)
            .field("p95", self.p95)
            .field("p99", self.p99)
    }
}

/// A keyed collection of [`SlidingWindow`]s sharing one slot geometry.
/// Keys are registry names, optionally suffixed per tenant via
/// [`crate::registry::tenant_series`]. BTreeMap keeps iteration (and
/// therefore every export) deterministic.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    slot_s: f64,
    slots: usize,
    series: BTreeMap<String, SlidingWindow>,
}

impl SeriesStore {
    /// Creates a store whose windows all use `slots` slots of `slot_s`
    /// virtual seconds.
    pub fn new(slot_s: f64, slots: usize) -> SeriesStore {
        assert!(slot_s > 0.0, "slot width must be positive");
        assert!(slots > 0, "slot count must be positive");
        SeriesStore {
            slot_s,
            slots,
            series: BTreeMap::new(),
        }
    }

    /// Slot width in virtual seconds.
    pub fn slot_s(&self) -> f64 {
        self.slot_s
    }

    /// Ring length shared by every series.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Records `value` into `series` at `now_s`, creating the series on
    /// first use.
    pub fn record(&mut self, series: &str, now_s: f64, value: f64) {
        let (slot_s, slots) = (self.slot_s, self.slots);
        self.series
            .entry(series.to_string())
            .or_insert_with(|| SlidingWindow::new(slot_s, slots))
            .record(now_s, value);
    }

    /// The series for `name`, if any sample was ever recorded.
    pub fn series(&self, name: &str) -> Option<&SlidingWindow> {
        self.series.get(name)
    }

    /// Series names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Snapshot of every series over the trailing window, sorted by
    /// name. Rendered by the health exports.
    pub fn snapshot_all(&self, now_s: f64, window_s: f64) -> Vec<(String, WindowSnapshot)> {
        self.series
            .iter()
            .map(|(name, w)| (name.clone(), w.snapshot(now_s, window_s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_roll_off_at_slot_granularity() {
        // 3 slots of 10s: span 30s.
        let mut w = SlidingWindow::new(10.0, 3);
        w.record(5.0, 1.0); // slot 0
        w.record(15.0, 2.0); // slot 1
        w.record(25.0, 3.0); // slot 2
        assert_eq!(w.count_in(25.0, 30.0), 3);
        // Recording in slot 3 overwrites ring position 0 (slot 0).
        w.record(35.0, 4.0);
        assert_eq!(w.count_in(35.0, 30.0), 3);
        let s = w.samples_in(35.0, 30.0);
        assert_eq!(s, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_narrower_than_ring() {
        let mut w = SlidingWindow::new(10.0, 6);
        for i in 0..6 {
            w.record(i as f64 * 10.0, i as f64);
        }
        // 20s window at t=55 → slots 4 and 5.
        assert_eq!(w.samples_in(55.0, 20.0), vec![4.0, 5.0]);
        assert_eq!(w.count_in(55.0, 20.0), 2);
        // Window clamps to ring span.
        assert_eq!(w.count_in(55.0, 1e9), 6);
    }

    #[test]
    fn quantiles_match_summary_semantics() {
        let mut w = SlidingWindow::new(1.0, 200);
        for v in 1..=100 {
            w.record(v as f64, v as f64);
        }
        assert_eq!(w.quantile_in(100.0, 200.0, 0.50), 50.0);
        assert_eq!(w.quantile_in(100.0, 200.0, 0.95), 95.0);
        assert_eq!(w.quantile_in(100.0, 200.0, 0.99), 99.0);
        assert!((w.mean_in(100.0, 200.0) - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let w = SlidingWindow::new(10.0, 3);
        assert_eq!(w.count_in(100.0, 30.0), 0);
        assert_eq!(w.quantile_in(100.0, 30.0, 0.99), 0.0);
        assert_eq!(w.mean_in(100.0, 30.0), 0.0);
    }

    #[test]
    fn stale_slot_not_counted_without_overwrite() {
        let mut w = SlidingWindow::new(10.0, 3);
        w.record(5.0, 1.0); // slot 0
                            // At t=95 (slot 9), slot 0's samples are far outside the window
                            // even though nothing overwrote ring position 0.
        assert_eq!(w.count_in(95.0, 30.0), 0);
    }

    #[test]
    fn fraction_over_counts_strict_exceedances() {
        let mut w = SlidingWindow::new(10.0, 4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.record(0.0, v);
        }
        assert!((w.fraction_over(0.0, 40.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(w.fraction_over(0.0, 40.0, 10.0), 0.0);
    }

    #[test]
    fn store_is_sorted_and_deterministic() {
        let mut s = SeriesStore::new(10.0, 3);
        s.record("b.series", 0.0, 1.0);
        s.record("a.series", 0.0, 2.0);
        let names: Vec<&str> = s.names().collect();
        assert_eq!(names, vec!["a.series", "b.series"]);
        let snaps = s.snapshot_all(0.0, 30.0);
        assert_eq!(snaps[0].0, "a.series");
        assert_eq!(snaps[0].1.count, 1);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut w = SlidingWindow::new(10.0, 3);
        w.record(0.0, 2.0);
        assert_eq!(
            w.snapshot(0.0, 30.0).to_json().render(),
            r#"{"window_s":30,"count":1,"mean":2,"p50":2,"p95":2,"p99":2}"#
        );
    }
}
