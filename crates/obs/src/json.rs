//! A minimal JSON writer (keeps serde out of the dependency tree).
//!
//! Only what result files and trace exports need: objects, arrays,
//! strings, numbers, bools. Historically lived in `aida-eval`; it moved
//! here so the bottom of the dependency stack can emit JSON traces, and
//! `aida-eval::json` re-exports it for compatibility.

use std::fmt::Write;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Any finite number (NaN/inf serialize as null).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (no-op with a debug panic otherwise).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => debug_assert!(false, "field() on non-object"),
        }
        self
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .field("system", "compute")
            .field("error", 0.0002)
            .field("trials", vec![1.0, 2.0])
            .field("ok", true)
            .field("note", Json::Null);
        assert_eq!(
            j.render(),
            r#"{"system":"compute","error":0.0002,"trials":[1,2],"ok":true,"note":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("line\n\"quoted\"\\\t".into());
        assert_eq!(j.render(), r#""line\n\"quoted\"\\\t""#);
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn integral_floats_render_without_decimals() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
    }
}
