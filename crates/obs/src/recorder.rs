//! The thread-safe trace recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Spans are created only from sequential
//!    orchestration code, so span ids and tree shape are identical run to
//!    run. Leaf LLM calls execute on a deterministic thread pool whose
//!    interleaving is *not* fixed, so they are recorded as events and
//!    normalized (sorted by serialized form) when a [`Trace`] snapshot is
//!    taken. Timestamps are virtual seconds; wall-clock never appears.
//! 2. **Near-zero cost when disabled.** A disabled recorder is an
//!    `Option::None` — every method is a branch on a niche-optimized
//!    pointer and returns immediately, with no allocation and no lock.
//! 3. **No dependencies.** `std::sync::Mutex` guards one `State`; a
//!    single lock sidesteps lock-ordering hazards between the span stack
//!    and the span table.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::flight::{FlightRecord, FlightRing};
use crate::metric::{default_bounds, Gauge, Histogram};
use crate::report::Trace;
use crate::span::{SpanData, SpanKind};

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanData>,
    /// Innermost-open-span stack; events attach to the top.
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, Gauge>,
    /// Events recorded while no span was open (defensive; should be rare).
    orphans: Vec<Event>,
    /// Flight recorder: bounded ring of the most recent typed events.
    flight: FlightRing,
    /// Where `flight_autodump` writes; set once by the runtime builder.
    flight_path: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
}

/// A cloneable handle to a shared trace store. The default handle is
/// *disabled*: all recording methods are no-ops.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder with an empty trace.
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Creates a disabled recorder (same as `Recorder::default()`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything. Callers may use this to skip
    /// building event payloads entirely.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span as a child of the innermost open span and makes it
    /// the new innermost. `start_s` is virtual time from the `SimClock`.
    pub fn span(&self, kind: SpanKind, name: impl Into<String>, start_s: f64) -> SpanHandle {
        let Some(inner) = &self.inner else {
            return SpanHandle { inner: None, id: 0 };
        };
        let mut st = inner.state.lock().unwrap();
        let id = st.spans.len();
        let parent = st.stack.last().copied();
        let name = name.into();
        st.spans
            .push(SpanData::new(id, parent, kind, name, start_s));
        st.stack.push(id);
        SpanHandle {
            inner: Some(Arc::clone(inner)),
            id,
        }
    }

    /// Attaches a typed event to the innermost open span and folds billed
    /// LLM attempts into that span's self aggregates.
    pub fn event(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        let target = st.stack.last().copied();
        match target {
            Some(id) => {
                let span = &mut st.spans[id];
                match &event {
                    Event::LlmCall {
                        input_tokens,
                        output_tokens,
                        cost_usd,
                        ..
                    }
                    | Event::FaultRetry {
                        billed_input_tokens: input_tokens,
                        billed_output_tokens: output_tokens,
                        cost_usd,
                        ..
                    } => {
                        // The meter counts fault retries as billed calls,
                        // so spans must too for deltas to line up.
                        span.calls += 1;
                        span.input_tokens += input_tokens;
                        span.output_tokens += output_tokens;
                        span.cost_usd += cost_usd;
                    }
                    _ => {}
                }
                st.flight.push_event(event.clone());
                let span = &mut st.spans[id];
                span.events.push(event);
            }
            None => {
                st.flight.push_event(event.clone());
                st.orphans.push(event);
            }
        }
    }

    /// Appends a note directly to the flight recorder without attaching
    /// an event to any span. Use for operational moments (recovery ran,
    /// a crash seam armed, an SLO alert tripped) that are not part of
    /// the deterministic trace.
    pub fn flight(&self, source: &str, kind: &str, detail: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        st.flight.push(source, kind, detail.into());
    }

    /// Snapshot of the flight ring, oldest record first.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner.state.lock().unwrap().flight.records()
    }

    /// Sets the file `flight_autodump` writes to. Typically
    /// `results/traces/flight_<seed>.jsonl`, chosen by the runtime
    /// builder.
    pub fn set_flight_autodump(&self, path: impl Into<PathBuf>) {
        let Some(inner) = &self.inner else { return };
        inner.state.lock().unwrap().flight_path = Some(path.into());
    }

    /// The configured autodump path, if any.
    pub fn flight_autodump_path(&self) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        inner.state.lock().unwrap().flight_path.clone()
    }

    /// Dumps the flight ring to `path` (header line naming `reason`,
    /// then one JSON object per retained record).
    pub fn flight_dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let dump = {
            let st = inner.state.lock().unwrap();
            st.flight.render_dump(reason)
        };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, dump)
    }

    /// Best-effort dump to the configured autodump path. Returns the
    /// path written, or `None` when disabled, unconfigured, or the
    /// write failed — callers are usually mid-crash and must not turn a
    /// forensic nicety into a second failure.
    pub fn flight_autodump(&self, reason: &str) -> Option<PathBuf> {
        let path = self.flight_autodump_path()?;
        self.flight_dump_to(&path, reason).ok()?;
        Some(path)
    }

    /// Adds to a monotonic counter, creating it at zero.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one histogram sample, creating the histogram with the
    /// registry-default bounds for `name`.
    pub fn histogram_record(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        st.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(default_bounds(name)))
            .record(value);
    }

    /// Records a gauge sample (`value` at virtual instant `time_s`),
    /// creating the gauge on first use.
    pub fn gauge_set(&self, name: &str, time_s: f64, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().unwrap();
        st.gauges
            .entry(name.to_string())
            .or_default()
            .set(time_s, value);
    }

    /// Takes a deterministic snapshot of the trace. Events inside each
    /// span are sorted by their serialized form so the snapshot is
    /// byte-stable regardless of worker-thread interleaving.
    pub fn trace(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let st = inner.state.lock().unwrap();
        let mut spans = st.spans.clone();
        for span in &mut spans {
            span.events.sort_by_key(|e| e.to_json().render());
            // Re-fold the dollar aggregate in sorted order: f64 addition is
            // not associative, so the arrival-order running sum kept by
            // `event()` can differ in the last bits between runs whose
            // worker threads interleaved differently. The integer
            // aggregates are order-insensitive and stand as recorded.
            // (Folded from +0.0 explicitly: `Iterator::sum` for f64 starts
            // at -0.0, which call-free spans would then display as "-$0".)
            span.cost_usd = span
                .events
                .iter()
                .map(|e| match e {
                    Event::LlmCall { cost_usd, .. } | Event::FaultRetry { cost_usd, .. } => {
                        *cost_usd
                    }
                    _ => 0.0,
                })
                .fold(0.0, |acc, c| acc + c);
        }
        let mut orphans = st.orphans.clone();
        orphans.sort_by_key(|e| e.to_json().render());
        Trace {
            spans,
            counters: st.counters.clone(),
            histograms: st.histograms.clone(),
            gauges: st.gauges.clone(),
            orphans,
        }
    }

    /// Renders the human-readable profile (see [`Trace::explain_analyze`]).
    pub fn explain_analyze(&self) -> String {
        self.trace().explain_analyze()
    }

    /// Exports the trace as JSONL (see [`Trace::to_jsonl`]).
    pub fn export_jsonl(&self) -> String {
        self.trace().to_jsonl()
    }
}

/// RAII guard for an open span. Prefer calling [`SpanHandle::finish`]
/// with an explicit virtual end time; dropping without finishing closes
/// the span with zero duration (its start time).
#[derive(Debug)]
pub struct SpanHandle {
    inner: Option<Arc<Inner>>,
    id: usize,
}

impl SpanHandle {
    /// Span id, when recording is enabled.
    pub fn id(&self) -> Option<usize> {
        self.inner.as_ref().map(|_| self.id)
    }

    /// Sets a free-form attribute on the span.
    pub fn attr(&self, key: &str, value: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap();
            let id = self.id;
            st.spans[id].attrs.push((key.to_string(), value.into()));
        }
    }

    /// Sets the rows-in/rows-out cardinality of the span.
    pub fn rows(&self, rows_in: usize, rows_out: usize) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().unwrap();
            let id = self.id;
            st.spans[id].rows_in = Some(rows_in);
            st.spans[id].rows_out = Some(rows_out);
        }
    }

    /// Closes the span at the given virtual time and pops it off the
    /// innermost-span stack.
    pub fn finish(mut self, end_s: f64) {
        self.close(Some(end_s));
    }

    fn close(&mut self, end_s: Option<f64>) {
        if let Some(inner) = self.inner.take() {
            let mut st = inner.state.lock().unwrap();
            if let Some(pos) = st.stack.iter().rposition(|&id| id == self.id) {
                st.stack.remove(pos);
            }
            if let Some(end) = end_s {
                let id = self.id;
                let span = &mut st.spans[id];
                span.end_s = end.max(span.start_s);
            }
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.close(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let span = r.span(SpanKind::Query, "q", 0.0);
        assert_eq!(span.id(), None);
        r.event(Event::Sql {
            statement: "SELECT 1".into(),
            rows_out: 1,
        });
        r.counter_add("c", 1);
        r.histogram_record("h", 1.0);
        span.finish(1.0);
        let t = r.trace();
        assert!(t.spans.is_empty() && t.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach_to_innermost() {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "q", 0.0);
        let op = r.span(SpanKind::AgenticOp, "op", 0.0);
        r.event(Event::LlmCall {
            model: "sim-4o".into(),
            input_tokens: 10,
            output_tokens: 5,
            cost_usd: 0.5,
            latency_s: 1.0,
            faulted: false,
        });
        op.finish(2.0);
        q.finish(3.0);
        let t = r.trace();
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[1].calls, 1);
        assert_eq!(t.spans[1].input_tokens, 10);
        assert!((t.spans[1].cost_usd - 0.5).abs() < 1e-12);
        assert_eq!(t.spans[0].calls, 0, "event attached to innermost only");
        assert!((t.spans[0].end_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_retry_counts_as_billed_call() {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "q", 0.0);
        r.event(Event::FaultRetry {
            model: "sim-4o".into(),
            backoff_s: 2.0,
            billed_input_tokens: 10,
            billed_output_tokens: 2,
            cost_usd: 0.1,
        });
        q.finish(1.0);
        let t = r.trace();
        assert_eq!(t.spans[0].calls, 1);
        assert_eq!(t.spans[0].output_tokens, 2);
    }

    #[test]
    fn drop_without_finish_pops_stack() {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "q", 0.0);
        {
            let _op = r.span(SpanKind::AgenticOp, "op", 0.0);
        }
        // After the inner span dropped, events attach to the query again.
        r.event(Event::Sql {
            statement: "SELECT 1".into(),
            rows_out: 0,
        });
        q.finish(1.0);
        let t = r.trace();
        assert_eq!(t.spans[0].events.len(), 1);
        assert_eq!(t.spans[1].duration_s(), 0.0);
    }

    #[test]
    fn events_are_sorted_deterministically_in_snapshots() {
        let make = |order: &[u64]| {
            let r = Recorder::new();
            let q = r.span(SpanKind::Query, "q", 0.0);
            for &i in order {
                r.event(Event::LlmCall {
                    model: format!("m{i}"),
                    input_tokens: i,
                    output_tokens: 0,
                    cost_usd: 0.0,
                    latency_s: 0.0,
                    faulted: false,
                });
            }
            q.finish(1.0);
            r.trace().to_jsonl()
        };
        assert_eq!(make(&[1, 2, 3]), make(&[3, 1, 2]));
    }

    #[test]
    fn events_feed_the_flight_ring() {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "q", 0.0);
        r.event(Event::Sql {
            statement: "SELECT 1".into(),
            rows_out: 1,
        });
        r.flight("serve.wal", "recovery", "replayed=3");
        q.finish(1.0);
        let records = r.flight_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].source, "event");
        assert_eq!(records[0].kind, "sql");
        assert_eq!(records[1].source, "serve.wal");
        assert_eq!(records[1].seq, 1);
    }

    #[test]
    fn flight_autodump_writes_configured_path() {
        let dir = std::env::temp_dir().join("aida_obs_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight_test.jsonl");
        let _ = std::fs::remove_file(&path);

        let r = Recorder::new();
        assert_eq!(r.flight_autodump("noop"), None, "unconfigured → None");
        r.set_flight_autodump(&path);
        r.flight("test", "note", "hello");
        let written = r.flight_autodump("unit_test").expect("dump path");
        assert_eq!(written, path);
        let dump = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"flight":"unit_test","events":1"#));
        assert!(lines[1].contains(r#""kind":"note""#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_recorder_flight_is_inert() {
        let r = Recorder::disabled();
        r.flight("x", "y", "z");
        assert!(r.flight_records().is_empty());
        r.set_flight_autodump("/nonexistent/flight.jsonl");
        assert_eq!(r.flight_autodump("crash"), None);
    }

    #[test]
    fn concurrent_events_do_not_lose_samples() {
        let r = Recorder::new();
        let q = r.span(SpanKind::Query, "q", 0.0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        r.counter_add("llm.calls", 1);
                        r.event(Event::LlmCall {
                            model: "sim-4o".into(),
                            input_tokens: 1,
                            output_tokens: 1,
                            cost_usd: 0.001,
                            latency_s: 0.5,
                            faulted: false,
                        });
                    }
                });
            }
        });
        q.finish(1.0);
        let t = r.trace();
        assert_eq!(t.counters["llm.calls"], 400);
        assert_eq!(t.spans[0].calls, 400);
        assert_eq!(t.spans[0].events.len(), 400);
    }
}
