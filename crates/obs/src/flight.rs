//! The crash-forensics flight recorder.
//!
//! A bounded ring of the most recent typed events, kept alongside the
//! trace inside the recorder's single mutex (one `VecDeque` push per
//! event — no extra lock, no allocation beyond the record itself).
//! When something goes wrong — a [`CrashPoint`] fires, a recovery path
//! runs, an SLO alert trips — the ring is dumped to
//! `results/traces/flight_<seed>.jsonl`, so a `tests/durability.rs`
//! failure comes with the last N events before the crash instead of
//! nothing.
//!
//! Records carry a monotonically increasing sequence number instead of
//! a timestamp: the virtual clock does not advance inside a parallel
//! LLM batch, so arrival order is the honest ordering signal. Dumps are
//! forensic artifacts, not determinism-checked exports — the byte-
//! stable surfaces remain `to_jsonl` and `health.jsonl`.
//!
//! [`CrashPoint`]: ../../aida_llm/snapshot/enum.CrashPoint.html

use std::collections::VecDeque;

use crate::event::Event;
use crate::json::Json;

/// Default ring capacity. The acceptance bar is "the last ≥ 64 events
/// before the crash"; 256 leaves headroom without measurable cost.
pub const FLIGHT_CAPACITY: usize = 256;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic sequence number (global across the recorder's life).
    pub seq: u64,
    /// Emitting subsystem, e.g. `serve.wal`, `llm.crash`, `agents.step`.
    pub source: String,
    /// Short event kind, e.g. `llm_call`, `crash_point`, `slo_alert`.
    pub kind: String,
    /// Human-readable payload (often a rendered event JSON).
    pub detail: String,
}

impl FlightRecord {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("seq", self.seq)
            .field("source", self.source.as_str())
            .field("kind", self.kind.as_str())
            .field("detail", self.detail.as_str())
    }
}

/// One retained entry. Typed events are stored as-is and rendered only
/// when a dump is actually taken — pushing must stay off the hot path's
/// allocator (no JSON rendering per event).
#[derive(Debug, Clone)]
enum Entry {
    /// Free-form record from `Recorder::flight`.
    Text {
        seq: u64,
        source: String,
        kind: String,
        detail: String,
    },
    /// A typed event, moved in whole from `Recorder::event`.
    Event { seq: u64, event: Event },
}

impl Entry {
    fn render(&self) -> FlightRecord {
        match self {
            Entry::Text {
                seq,
                source,
                kind,
                detail,
            } => FlightRecord {
                seq: *seq,
                source: source.clone(),
                kind: kind.clone(),
                detail: detail.clone(),
            },
            Entry::Event { seq, event } => FlightRecord {
                seq: *seq,
                source: "event".to_string(),
                kind: event.name().to_string(),
                detail: event.to_json().render(),
            },
        }
    }
}

/// The bounded ring itself. Pushing at capacity drops the oldest record.
#[derive(Debug, Clone)]
pub struct FlightRing {
    capacity: usize,
    next_seq: u64,
    ring: VecDeque<Entry>,
}

impl Default for FlightRing {
    fn default() -> FlightRing {
        FlightRing::new(FLIGHT_CAPACITY)
    }
}

impl FlightRing {
    /// Creates an empty ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> FlightRing {
        assert!(capacity > 0, "flight ring capacity must be positive");
        FlightRing {
            capacity,
            next_seq: 0,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever pushed (= the next record's sequence number).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Appends a record, evicting the oldest at capacity.
    pub fn push(&mut self, source: &str, kind: &str, detail: String) {
        self.push_entry(Entry::Text {
            seq: self.next_seq,
            source: source.to_string(),
            kind: kind.to_string(),
            detail,
        });
    }

    /// Appends a typed event without rendering it; the JSON detail is
    /// produced lazily if this entry survives until a dump.
    pub fn push_event(&mut self, event: Event) {
        self.push_entry(Entry::Event {
            seq: self.next_seq,
            event,
        });
    }

    fn push_entry(&mut self, entry: Entry) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
        self.next_seq += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        self.ring.iter().map(Entry::render).collect()
    }

    /// Renders the dump: a header line naming the trigger, then one
    /// JSON object per retained record, oldest first.
    pub fn render_dump(&self, reason: &str) -> String {
        let mut out = String::new();
        let header = Json::obj()
            .field("flight", reason)
            .field("events", self.ring.len() as u64)
            .field("dropped", self.next_seq - self.ring.len() as u64)
            .field("capacity", self.capacity as u64);
        out.push_str(&header.render());
        out.push('\n');
        for entry in &self.ring {
            out.push_str(&entry.render().to_json().render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = FlightRing::new(3);
        for i in 0..5 {
            ring.push("src", "kind", format!("d{i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        let records = ring.records();
        assert_eq!(records[0].seq, 2);
        assert_eq!(records[2].seq, 4);
        assert_eq!(records[2].detail, "d4");
    }

    #[test]
    fn dump_has_header_then_records() {
        let mut ring = FlightRing::new(2);
        ring.push("serve.wal", "recovery", "replayed=3".to_string());
        let dump = ring.render_dump("crash");
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"flight":"crash","events":1,"dropped":0,"capacity":2}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":0,"source":"serve.wal","kind":"recovery","detail":"replayed=3"}"#
        );
    }

    #[test]
    fn default_capacity_covers_acceptance_floor() {
        assert!(FlightRing::default().capacity() >= 64);
    }
}
