//! Abstract syntax tree for Pyrite.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    /// Membership test (`x in xs`).
    In,
    /// Negated membership (`x not in xs`).
    NotIn,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression kind.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    None,
    /// Variable reference.
    Name(String),
    /// List display `[a, b, c]`.
    List(Vec<Expr>),
    /// Dict display `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
    /// Binary operation (including `and`/`or`, which short-circuit).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Function call `f(a, b)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Method call `obj.m(a, b)`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// Subscript `obj[key]`.
    Index(Box<Expr>, Box<Expr>),
    /// List comprehension `[expr for var in iterable if cond]`.
    ListComp {
        /// Element expression.
        element: Box<Expr>,
        /// Loop variable(s) (multiple names unpack).
        vars: Vec<String>,
        /// Source iterable.
        iterable: Box<Expr>,
        /// Optional filter condition.
        condition: Option<Box<Expr>>,
    },
    /// Slice `obj[lo:hi]` (either bound optional).
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement kind.
    pub kind: StmtKind,
    /// 1-based source line.
    pub line: usize,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `name = …`
    Name(String),
    /// `obj[key] = …`
    Index(Expr, Expr),
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect (its value becomes the program
    /// result if it is the final statement).
    Expr(Expr),
    /// `target = value`
    Assign(Target, Expr),
    /// `target += value` / `target -= value`
    AugAssign(Target, BinOp, Expr),
    /// `if cond: … elif …: … else: …` — a list of (condition, body) arms
    /// plus an optional else body.
    If(Vec<(Expr, Vec<Stmt>)>, Option<Vec<Stmt>>),
    /// `while cond: …`
    While(Expr, Vec<Stmt>),
    /// `for var[, var2…] in iterable: …` (multiple targets unpack each
    /// element, Python-style).
    For(Vec<String>, Expr, Vec<Stmt>),
    /// `def name(params): …`
    Def(String, Vec<String>, Vec<Stmt>),
    /// `return value?`
    Return(Option<Expr>),
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `pass`
    Pass,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_construction() {
        let e = Expr {
            kind: ExprKind::Int(1),
            line: 1,
        };
        let b = Expr {
            kind: ExprKind::Binary(
                BinOp::Add,
                Box::new(e.clone()),
                Box::new(Expr {
                    kind: ExprKind::Int(2),
                    line: 1,
                }),
            ),
            line: 1,
        };
        assert!(matches!(b.kind, ExprKind::Binary(BinOp::Add, _, _)));
        assert_eq!(e.line, 1);
    }
}
