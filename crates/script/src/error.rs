//! Script errors.

use std::fmt;

/// An error raised while lexing, parsing, or executing a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Tokenization failure.
    Lex {
        line: usize,
        col: usize,
        message: String,
    },
    /// Parse failure.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// Runtime type error.
    Type { line: usize, message: String },
    /// Reference to an undefined name.
    Name { line: usize, name: String },
    /// Index/key error.
    Index { line: usize, message: String },
    /// Division by zero and friends.
    Arithmetic { line: usize, message: String },
    /// The fuel budget was exhausted (runaway program).
    FuelExhausted,
    /// Call-stack depth exceeded.
    RecursionLimit,
    /// A host function (tool) failed.
    Host { message: String },
    /// The static checker rejected the program before execution.
    Static { line: usize, message: String },
}

impl ScriptError {
    /// A host-side error (for tool implementations).
    pub fn host(message: impl Into<String>) -> Self {
        ScriptError::Host {
            message: message.into(),
        }
    }

    /// The source column the error was raised at (1-based), when known.
    /// Only lexer- and parser-raised errors carry a column; a value of
    /// zero means "unknown" and is omitted from display.
    pub fn col(&self) -> Option<usize> {
        match self {
            ScriptError::Lex { col, .. } | ScriptError::Parse { col, .. } if *col > 0 => Some(*col),
            _ => None,
        }
    }

    /// The source line the error was raised at, when known.
    pub fn line(&self) -> Option<usize> {
        match self {
            ScriptError::Lex { line, .. }
            | ScriptError::Parse { line, .. }
            | ScriptError::Type { line, .. }
            | ScriptError::Name { line, .. }
            | ScriptError::Index { line, .. }
            | ScriptError::Arithmetic { line, .. }
            | ScriptError::Static { line, .. } => Some(*line),
            _ => None,
        }
    }
}

/// Renders a `line N` / `line N, col M` span fragment.
fn span(line: usize, col: usize) -> String {
    if col > 0 {
        format!("line {line}, col {col}")
    } else {
        format!("line {line}")
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, col, message } => {
                write!(f, "lex error ({}): {message}", span(*line, *col))
            }
            ScriptError::Parse { line, col, message } => {
                write!(f, "syntax error ({}): {message}", span(*line, *col))
            }
            ScriptError::Type { line, message } => {
                write!(f, "type error (line {line}): {message}")
            }
            ScriptError::Name { line, name } => {
                write!(f, "name error (line {line}): '{name}' is not defined")
            }
            ScriptError::Index { line, message } => {
                write!(f, "index error (line {line}): {message}")
            }
            ScriptError::Arithmetic { line, message } => {
                write!(f, "arithmetic error (line {line}): {message}")
            }
            ScriptError::FuelExhausted => write!(f, "execution budget exhausted"),
            ScriptError::RecursionLimit => write!(f, "maximum recursion depth exceeded"),
            ScriptError::Host { message } => write!(f, "tool error: {message}"),
            ScriptError::Static { line, message } => {
                write!(f, "static error (line {line}): {message}")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_numbers() {
        let e = ScriptError::Parse {
            line: 3,
            col: 0,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert_eq!(e.line(), Some(3));
        assert_eq!(e.col(), None);
        assert_eq!(ScriptError::FuelExhausted.line(), None);
    }

    #[test]
    fn display_mentions_columns_when_known() {
        let e = ScriptError::Lex {
            line: 2,
            col: 7,
            message: "stray '@'".into(),
        };
        assert_eq!(e.to_string(), "lex error (line 2, col 7): stray '@'");
        assert_eq!(e.col(), Some(7));
        let p = ScriptError::Parse {
            line: 4,
            col: 11,
            message: "expected ':'".into(),
        };
        assert!(p.to_string().contains("line 4, col 11"));
    }

    #[test]
    fn host_constructor() {
        let e = ScriptError::host("boom");
        assert_eq!(e.to_string(), "tool error: boom");
    }
}
