//! Script errors.

use std::fmt;

/// An error raised while lexing, parsing, or executing a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Tokenization failure.
    Lex { line: usize, message: String },
    /// Parse failure.
    Parse { line: usize, message: String },
    /// Runtime type error.
    Type { line: usize, message: String },
    /// Reference to an undefined name.
    Name { line: usize, name: String },
    /// Index/key error.
    Index { line: usize, message: String },
    /// Division by zero and friends.
    Arithmetic { line: usize, message: String },
    /// The fuel budget was exhausted (runaway program).
    FuelExhausted,
    /// Call-stack depth exceeded.
    RecursionLimit,
    /// A host function (tool) failed.
    Host { message: String },
    /// The static checker rejected the program before execution.
    Static { line: usize, message: String },
}

impl ScriptError {
    /// A host-side error (for tool implementations).
    pub fn host(message: impl Into<String>) -> Self {
        ScriptError::Host {
            message: message.into(),
        }
    }

    /// The source line the error was raised at, when known.
    pub fn line(&self) -> Option<usize> {
        match self {
            ScriptError::Lex { line, .. }
            | ScriptError::Parse { line, .. }
            | ScriptError::Type { line, .. }
            | ScriptError::Name { line, .. }
            | ScriptError::Index { line, .. }
            | ScriptError::Arithmetic { line, .. }
            | ScriptError::Static { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            ScriptError::Parse { line, message } => {
                write!(f, "syntax error (line {line}): {message}")
            }
            ScriptError::Type { line, message } => {
                write!(f, "type error (line {line}): {message}")
            }
            ScriptError::Name { line, name } => {
                write!(f, "name error (line {line}): '{name}' is not defined")
            }
            ScriptError::Index { line, message } => {
                write!(f, "index error (line {line}): {message}")
            }
            ScriptError::Arithmetic { line, message } => {
                write!(f, "arithmetic error (line {line}): {message}")
            }
            ScriptError::FuelExhausted => write!(f, "execution budget exhausted"),
            ScriptError::RecursionLimit => write!(f, "maximum recursion depth exceeded"),
            ScriptError::Host { message } => write!(f, "tool error: {message}"),
            ScriptError::Static { line, message } => {
                write!(f, "static error (line {line}): {message}")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_numbers() {
        let e = ScriptError::Parse {
            line: 3,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert_eq!(e.line(), Some(3));
        assert_eq!(ScriptError::FuelExhausted.line(), None);
    }

    #[test]
    fn host_constructor() {
        let e = ScriptError::host("boom");
        assert_eq!(e.to_string(), "tool error: boom");
    }
}
