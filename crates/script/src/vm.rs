//! Register VM executing [`crate::bytecode`] chunks.
//!
//! The VM deliberately *shares* the interpreter's state and semantic
//! kernels — globals, host functions, fuel counter, recursion depth,
//! print capture, plus `binary`/`index`/`slice`/`call_builtin`/
//! `call_method`/`iter_value` — so a compiled program and a tree-walked
//! program cannot disagree on operator semantics, tool dispatch, or
//! budget accounting. What the VM replaces is only the *traversal*:
//! instead of recursing over `Expr`/`Stmt` nodes with a `HashMap` frame
//! per call, it runs a flat instruction loop over a contiguous register
//! file with slot-addressed locals and an explicit call stack.
//!
//! Parity contract (enforced by `tests/differential.rs`): for every
//! program, [`Interpreter::run`] and [`Interpreter::run_compiled`]
//! produce the same value (or the same error `Display`), the same
//! host-function call sequence, the same captured `print` output, and
//! the same [`Interpreter::fuel_remaining`].

use crate::ast::BinOp;
use crate::bytecode::{CompiledProgram, Const, Insn, NO_REG};
use crate::error::ScriptError;
use crate::interp::{Interpreter, MAX_DEPTH};
use crate::value::{ScriptValue, UserFn};
use std::collections::BTreeMap;
use std::rc::Rc;

/// One activation record. Registers live in a shared file at
/// `reg_base..reg_base + chunk.nregs`; locals live in a shared
/// slot-addressed pool at `locals_base..` (`None` = not yet assigned in
/// this frame, falling through to globals, exactly like the
/// interpreter's absent `HashMap` key). Both pools are plain `Vec`s
/// truncated on return, so a call allocates nothing once the pools have
/// grown to the program's peak depth.
struct Frame {
    func: usize,
    pc: usize,
    reg_base: usize,
    ret_dst: usize,
    iter_base: usize,
    locals_base: usize,
}

/// `usize::MAX` marks the main frame (no `funcs` entry, no caller).
const MAIN: usize = usize::MAX;

impl Interpreter {
    /// Executes a compiled program against this interpreter's globals,
    /// host functions, and fuel budget — the compiled counterpart of
    /// [`Interpreter::run`]: the fuel budget is refreshed, globals
    /// persist, and the result is the final top-level expression
    /// statement's value (or an early top-level `return`).
    pub fn run_compiled(&mut self, program: &CompiledProgram) -> Result<ScriptValue, ScriptError> {
        self.fuel = self.fuel_limit;
        let entry_depth = self.depth;
        let result = execute(self, program);
        // Errors unwind the whole VM stack at once; restore the depth the
        // interpreter would have restored frame-by-frame.
        if result.is_err() {
            self.depth = entry_depth;
        }
        result
    }
}

fn const_value(c: &Const) -> ScriptValue {
    match c {
        Const::Int(v) => ScriptValue::Int(*v),
        Const::Float(v) => ScriptValue::Float(*v),
        Const::Str(s) => ScriptValue::str(s.clone()),
        Const::Bool(b) => ScriptValue::Bool(*b),
        Const::None => ScriptValue::None,
    }
}

/// VM execution state: the register file, iterator stack, call stack,
/// and the identity map of functions materialized by this run.
struct Vm<'p> {
    program: &'p CompiledProgram,
    regs: Vec<ScriptValue>,
    locals: Vec<Option<ScriptValue>>,
    iters: Vec<(Vec<ScriptValue>, usize)>,
    frames: Vec<Frame>,
    /// Cached copies of the top frame's `reg_base`/`locals_base`, so the
    /// per-access hot path is a single add instead of `frames.last()`.
    base: usize,
    lbase: usize,
    /// Functions materialized by this execution, keyed by allocation
    /// identity: calls to them run their compiled chunk; any other
    /// `Func` value (defined by a previous `run`/`run_compiled` on this
    /// interpreter) falls back to the tree-walker, which is
    /// semantics-identical. A linear scan: programs hold a handful of
    /// functions, and a probe beats hashing a pointer at call density.
    known_fns: Vec<(*const UserFn, usize)>,
    /// Slot-addressed sidecar for the globals this program references,
    /// indexed by name id. Loaded from `interp.globals` on entry,
    /// written back on every exit path, and flushed before any escape
    /// into the tree-walker (`call_value`), which late-binds globals by
    /// name. Nothing else can write globals mid-execution — function
    /// bodies bind into their local frame — so between flushes the
    /// sidecar is the single source of truth, and the hot loop does an
    /// index instead of a string hash per access.
    globals: Vec<Option<ScriptValue>>,
    last: ScriptValue,
}

fn execute(
    interp: &mut Interpreter,
    program: &CompiledProgram,
) -> Result<ScriptValue, ScriptError> {
    let mut vm = Vm {
        program,
        regs: vec![ScriptValue::None; program.main.nregs as usize],
        locals: Vec::new(),
        iters: Vec::new(),
        frames: vec![Frame {
            func: MAIN,
            pc: 0,
            reg_base: 0,
            ret_dst: 0,
            iter_base: 0,
            locals_base: 0,
        }],
        base: 0,
        lbase: 0,
        known_fns: Vec::new(),
        globals: program
            .names
            .iter()
            .map(|n| interp.globals.get(n).cloned())
            .collect(),
        last: ScriptValue::None,
    };
    // Assignments made before an error must persist (the tree-walker
    // writes through on every statement), so flush on both exit paths.
    let result = vm.run(interp);
    vm.flush_globals(interp);
    result
}

impl<'p> Vm<'p> {
    /// The dispatch loop. `pc` lives in a local and the current chunk is
    /// re-resolved only when the frame changes (call, return), so the
    /// per-instruction path is fetch → one match — no `frames.last()`
    /// chase, no second routing match for flow control. Jumps and
    /// `IterNext` are inlined here because they are the only
    /// instructions that write the pc.
    fn run(&mut self, interp: &mut Interpreter) -> Result<ScriptValue, ScriptError> {
        let program = self.program;
        let mut func = MAIN;
        let mut pc = 0usize;
        'frame: loop {
            let code: &[Insn] = if func == MAIN {
                &program.main.code
            } else {
                &program.funcs[func].chunk.code
            };
            loop {
                let Some(&insn) = code.get(pc) else {
                    // Defensive: well-formed chunks always end in Ret/Halt.
                    return Ok(self.last.clone());
                };
                pc += 1;
                match insn {
                    Insn::Jump { to } => pc = to as usize,
                    Insn::JumpFalse { src, to } => {
                        if !self.regs[self.r(src)].truthy() {
                            pc = to as usize;
                        }
                    }
                    Insn::JumpTrue { src, to } => {
                        if self.regs[self.r(src)].truthy() {
                            pc = to as usize;
                        }
                    }
                    Insn::IterNext { dst, done } => {
                        let (items, pos) = self.iters.last_mut().expect("IterNew pushed");
                        if *pos < items.len() {
                            let item = items[*pos].clone();
                            *pos += 1;
                            self.set(dst, item);
                        } else {
                            self.iters.pop();
                            pc = done as usize;
                        }
                    }
                    Insn::Ret { src } => {
                        let value = if src == NO_REG {
                            ScriptValue::None
                        } else {
                            self.regs[self.r(src)].clone()
                        };
                        match self.pop_frame(interp, value) {
                            Some(result) => return Ok(result),
                            None => {
                                let top = self.frames.last().expect("caller frame");
                                func = top.func;
                                pc = top.pc;
                                continue 'frame;
                            }
                        }
                    }
                    Insn::Halt => return Ok(self.last.clone()),
                    Insn::IterNew { .. }
                    | Insn::IterPop
                    | Insn::Bind { .. }
                    | Insn::LoopMisuse { .. } => self.step_flow(interp, insn)?,
                    Insn::CallName { .. } | Insn::CallValue { .. } => {
                        // Persist the resume point: the callee's `Ret`
                        // (and any nested push) reads it from the frame.
                        self.frames.last_mut().expect("frame").pc = pc;
                        let depth = self.frames.len();
                        self.step_call(interp, insn)?;
                        if self.frames.len() > depth {
                            func = self.frames.last().expect("frame").func;
                            pc = 0;
                            continue 'frame;
                        }
                    }
                    other => self.step_data(interp, other)?,
                }
            }
        }
    }

    /// Unwinds one frame with `value` as its result. Returns the final
    /// program value when the popped frame is main, `None` otherwise.
    fn pop_frame(&mut self, interp: &mut Interpreter, value: ScriptValue) -> Option<ScriptValue> {
        let done = self.frames.pop().expect("frame");
        self.iters.truncate(done.iter_base);
        if done.func == MAIN {
            return Some(value);
        }
        interp.depth -= 1;
        self.regs.truncate(done.reg_base);
        self.locals.truncate(done.locals_base);
        let top = self.frames.last().expect("caller frame");
        self.base = top.reg_base;
        self.lbase = top.locals_base;
        self.regs[done.ret_dst] = value;
        None
    }

    /// Writes every live sidecar entry back into the interpreter's
    /// globals map, reusing existing keys.
    fn flush_globals(&self, interp: &mut Interpreter) {
        for (idx, slot) in self.globals.iter().enumerate() {
            if let Some(v) = slot {
                let name = &self.program.names[idx];
                match interp.globals.get_mut(name) {
                    Some(g) => g.clone_from(v),
                    None => {
                        interp.globals.insert(name.clone(), v.clone());
                    }
                }
            }
        }
    }

    /// Absolute register index of `i` in the current frame's window.
    fn r(&self, i: u16) -> usize {
        self.base + i as usize
    }

    /// The current frame's local slot, if addressed and assigned.
    fn local(&self, slot: u16) -> Option<ScriptValue> {
        if slot == NO_REG {
            return None;
        }
        self.locals[self.lbase + slot as usize].clone()
    }

    /// Stores through a (name, slot) pair: slot-addressed locals in the
    /// current frame, else the globals sidecar — the same dynamic
    /// shadowing the tree-walker gets from its flat `HashMap` frame.
    fn store(&mut self, name: u16, slot: u16, value: ScriptValue) {
        if slot != NO_REG {
            self.locals[self.lbase + slot as usize] = Some(value);
        } else {
            self.globals[name as usize] = Some(value);
        }
    }

    /// Copies the `argc` argument registers starting at `base` out.
    fn args(&self, base: u16, argc: u16) -> Vec<ScriptValue> {
        let b = self.r(base);
        self.regs[b..b + argc as usize].to_vec()
    }

    /// Writes `value` into register `dst` of the current frame.
    fn set(&mut self, dst: u16, value: ScriptValue) {
        let d = self.r(dst);
        self.regs[d] = value;
    }

    /// Register/data instructions: never touch the pc or the call stack.
    fn step_data(&mut self, interp: &mut Interpreter, insn: Insn) -> Result<(), ScriptError> {
        let program = self.program;
        match insn {
            Insn::Burn { n, line: _ } => {
                let n = n as u64;
                if interp.fuel < n {
                    interp.fuel = 0;
                    return Err(ScriptError::FuelExhausted);
                }
                interp.fuel -= n;
            }
            Insn::Const { dst, idx } => {
                self.set(dst, const_value(&program.consts[idx as usize]));
            }
            Insn::Load {
                dst,
                name,
                slot,
                line,
            } => {
                let value = match self.local(slot) {
                    Some(v) => v,
                    None => match &self.globals[name as usize] {
                        Some(v) => v.clone(),
                        None => {
                            return Err(ScriptError::Name {
                                line: line as usize,
                                name: program.names[name as usize].clone(),
                            })
                        }
                    },
                };
                self.set(dst, value);
            }
            Insn::Store { name, slot, src } => {
                let value = self.regs[self.r(src)].clone();
                self.store(name, slot, value);
            }
            Insn::MakeList { dst, base, n } => {
                let items = self.args(base, n);
                self.set(dst, ScriptValue::list(items));
            }
            Insn::NewDict { dst } => {
                self.set(dst, ScriptValue::dict(BTreeMap::new()));
            }
            Insn::DictKey { reg, line } => {
                if self.regs[self.r(reg)].as_str().is_err() {
                    return Err(ScriptError::Type {
                        line: line as usize,
                        message: "dict keys must be strings".into(),
                    });
                }
            }
            Insn::DictSet { dict, key, val } => {
                let k = self.regs[self.r(key)]
                    .as_str()
                    .expect("DictKey checked")
                    .to_string();
                let v = self.regs[self.r(val)].clone();
                let ScriptValue::Dict(entries) = &self.regs[self.r(dict)] else {
                    unreachable!("DictSet target is a fresh dict literal");
                };
                entries.borrow_mut().insert(k, v);
            }
            Insn::Bin {
                op,
                dst,
                a,
                b,
                line,
            } => self.bin(interp, op, dst, a, b, line)?,
            Insn::Neg { dst, src, line } => {
                let value = match &self.regs[self.r(src)] {
                    ScriptValue::Int(i) => ScriptValue::Int(-i),
                    ScriptValue::Float(f) => ScriptValue::Float(-f),
                    other => {
                        return Err(ScriptError::Type {
                            line: line as usize,
                            message: format!("cannot negate {}", other.type_name()),
                        })
                    }
                };
                self.set(dst, value);
            }
            Insn::Not { dst, src } => {
                let value = ScriptValue::Bool(!self.regs[self.r(src)].truthy());
                self.set(dst, value);
            }
            Insn::GetIndex { .. }
            | Insn::SetIndex { .. }
            | Insn::SliceIdx { .. }
            | Insn::Slice { .. } => self.step_index(interp, insn)?,
            Insn::MakeFunc { dst, idx } => {
                let f = &program.funcs[idx as usize];
                let user = Rc::new(UserFn {
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body: f.body_ast.clone(),
                });
                self.known_fns.push((Rc::as_ptr(&user), idx as usize));
                self.set(dst, ScriptValue::Func(user));
            }
            Insn::Push { list, src } => {
                let v = self.regs[self.r(src)].clone();
                let ScriptValue::List(items) = &self.regs[self.r(list)] else {
                    unreachable!("Push target is a fresh list literal");
                };
                items.borrow_mut().push(v);
            }
            Insn::SetLast { src } => {
                self.last = self.regs[self.r(src)].clone();
            }
            Insn::CallMethod {
                dst,
                obj,
                name,
                base,
                argc,
                line,
            } => {
                let obj_v = self.regs[self.r(obj)].clone();
                let args = self.args(base, argc);
                let method = &program.names[name as usize];
                let v = interp.call_method(&obj_v, method, &args, line as usize)?;
                self.set(dst, v);
            }
            other => unreachable!("non-data insn {other:?} routed to step_data"),
        }
        Ok(())
    }

    /// Subscript and slice instructions, routed through the
    /// interpreter's `index`/`store_index`/`slice` kernels.
    fn step_index(&mut self, interp: &mut Interpreter, insn: Insn) -> Result<(), ScriptError> {
        match insn {
            Insn::GetIndex {
                dst,
                obj,
                key,
                line,
            } => {
                let v = interp.index(
                    &self.regs[self.r(obj)],
                    &self.regs[self.r(key)],
                    line as usize,
                )?;
                self.set(dst, v);
            }
            Insn::SetIndex {
                obj,
                key,
                src,
                line,
            } => {
                let value = self.regs[self.r(src)].clone();
                interp.store_index(
                    &self.regs[self.r(obj)],
                    &self.regs[self.r(key)],
                    value,
                    line as usize,
                )?;
            }
            Insn::SliceIdx { reg, line } => {
                let i = self.regs[self.r(reg)]
                    .as_int()
                    .map_err(|_| ScriptError::Type {
                        line: line as usize,
                        message: "slice bounds must be ints".into(),
                    })?;
                self.set(reg, ScriptValue::Int(i));
            }
            Insn::Slice {
                dst,
                obj,
                lo,
                hi,
                line,
            } => {
                let v = {
                    let lo = self.slice_bound(lo);
                    let hi = self.slice_bound(hi);
                    interp.slice(&self.regs[self.r(obj)], lo, hi, line as usize)?
                };
                self.set(dst, v);
            }
            other => unreachable!("non-index insn {other:?} routed to step_index"),
        }
        Ok(())
    }

    /// A `Slice` bound register: `NO_REG` means the bound was omitted.
    fn slice_bound(&self, reg: u16) -> Option<i64> {
        if reg == NO_REG {
            return None;
        }
        match &self.regs[self.r(reg)] {
            ScriptValue::Int(i) => Some(*i),
            _ => unreachable!("SliceIdx coerced"),
        }
    }

    /// Iterator setup/teardown and loop-variable binding (the pc-free
    /// slice of flow control; jumps and `IterNext` live in `run`).
    fn step_flow(&mut self, interp: &mut Interpreter, insn: Insn) -> Result<(), ScriptError> {
        match insn {
            Insn::IterNew { src, line } => {
                let items = interp.iter_value(self.regs[self.r(src)].clone(), line as usize)?;
                self.iters.push((items, 0));
            }
            Insn::IterPop => {
                self.iters.pop();
            }
            Insn::Bind { src, vars, line } => {
                let item = self.regs[self.r(src)].clone();
                self.bind_vars(vars, item, line as usize)?;
            }
            Insn::LoopMisuse { line } => {
                return Err(ScriptError::Parse {
                    line: line as usize,
                    col: 0,
                    message: "'break'/'continue' outside loop".into(),
                });
            }
            other => unreachable!("non-flow insn {other:?} routed to step_flow"),
        }
        Ok(())
    }

    /// Call instructions: name resolution mirrors the interpreter's order
    /// exactly — host functions and builtins dispatch only when the name
    /// is not shadowed by a local or global, then the callee is resolved
    /// as a value (burning the one fuel `eval` would charge).
    fn step_call(&mut self, interp: &mut Interpreter, insn: Insn) -> Result<(), ScriptError> {
        let program = self.program;
        match insn {
            Insn::CallName {
                dst,
                name,
                slot,
                base,
                argc,
                line,
                cline,
            } => {
                let name_str = &program.names[name as usize];
                let local_val = self.local(slot);
                // One sidecar probe serves both the shadowing check and
                // the callee lookup below (a `Func` clone is an Rc bump).
                let global_val = self.globals[name as usize].clone();
                let shadowed = local_val.is_some() || global_val.is_some();
                if !shadowed {
                    if let Some(host) = interp.host_fns.get(name_str.as_str()).cloned() {
                        let args = self.args(base, argc);
                        self.set(dst, host(&args)?);
                        return Ok(());
                    }
                    let args = self.args(base, argc);
                    if let Some(result) = interp.call_builtin(name_str, &args, line as usize)? {
                        self.set(dst, result);
                        return Ok(());
                    }
                }
                // The interpreter reaches the callee through `eval`,
                // which burns one fuel before the name lookup.
                if interp.fuel == 0 {
                    return Err(ScriptError::FuelExhausted);
                }
                interp.fuel -= 1;
                let Some(callee) = local_val.or(global_val) else {
                    return Err(ScriptError::Name {
                        line: cline as usize,
                        name: name_str.clone(),
                    });
                };
                self.call(interp, callee, base, argc, dst, line as usize)
            }
            Insn::CallValue {
                dst,
                callee,
                base,
                argc,
                line,
            } => {
                let func = self.regs[self.r(callee)].clone();
                self.call(interp, func, base, argc, dst, line as usize)
            }
            other => unreachable!("non-call insn {other:?} routed to step_call"),
        }
    }

    /// Invokes a callee value: compiled functions push a VM frame;
    /// anything else (foreign `Func` values, non-callables) goes through
    /// the interpreter's `call_value` for identical errors and semantics.
    fn call(
        &mut self,
        interp: &mut Interpreter,
        callee: ScriptValue,
        arg_base: u16,
        argc: u16,
        ret_dst: u16,
        line: usize,
    ) -> Result<(), ScriptError> {
        let idx = match &callee {
            ScriptValue::Func(user) => {
                let p = Rc::as_ptr(user);
                self.known_fns
                    .iter()
                    .find(|(k, _)| *k == p)
                    .map(|(_, idx)| *idx)
            }
            _ => None,
        };
        let Some(idx) = idx else {
            let args = self.args(arg_base, argc);
            // The tree-walker late-binds globals by name, so it must see
            // the sidecar's state before the foreign body runs.
            self.flush_globals(interp);
            self.set(ret_dst, interp.call_value(callee, &args, line)?);
            return Ok(());
        };
        let f = &self.program.funcs[idx];
        let argc = argc as usize;
        if f.params.len() != argc {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "{}() takes {} arguments but {} were given",
                    f.name,
                    f.params.len(),
                    argc
                ),
            });
        }
        if interp.depth >= MAX_DEPTH {
            return Err(ScriptError::RecursionLimit);
        }
        interp.depth += 1;
        let arg_base = self.r(arg_base);
        let ret_dst = self.r(ret_dst);
        let locals_base = self.locals.len();
        for i in 0..argc {
            let v = self.regs[arg_base + i].clone();
            self.locals.push(Some(v));
        }
        self.locals
            .resize(locals_base + f.locals.len(), Option::None);
        let reg_base = self.regs.len();
        self.regs
            .resize(reg_base + f.chunk.nregs as usize, ScriptValue::None);
        self.frames.push(Frame {
            func: idx,
            pc: 0,
            reg_base,
            ret_dst,
            iter_base: self.iters.len(),
            locals_base,
        });
        self.base = reg_base;
        self.lbase = locals_base;
        Ok(())
    }

    /// Slot-addressed twin of the interpreter's `bind_loop_vars`, with
    /// identical unpack errors.
    fn bind_vars(&mut self, vars: u16, item: ScriptValue, line: usize) -> Result<(), ScriptError> {
        let program = self.program;
        let list = &program.var_lists[vars as usize];
        if let [(name, slot)] = list[..] {
            self.store(name, slot, item);
            return Ok(());
        }
        let ScriptValue::List(items) = &item else {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "cannot unpack {} into {} names",
                    item.type_name(),
                    list.len()
                ),
            });
        };
        let items = items.borrow().clone();
        if items.len() != list.len() {
            return Err(ScriptError::Type {
                line,
                message: format!(
                    "cannot unpack {} values into {} names",
                    items.len(),
                    list.len()
                ),
            });
        }
        for (&(name, slot), value) in list.iter().zip(items) {
            self.store(name, slot, value);
        }
        Ok(())
    }

    /// `Insn::Bin`: binary operator over two registers. The Int⊗Int
    /// fast path skips two operand clones and the kernel's type
    /// dispatch on the hottest arithmetic shape; `int_bin` mirrors
    /// `Interpreter::binary` byte-for-byte and returns `None` for
    /// anything it won't replicate, which falls through to the kernel.
    fn bin(
        &mut self,
        interp: &mut Interpreter,
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
        line: u32,
    ) -> Result<(), ScriptError> {
        if let (ScriptValue::Int(x), ScriptValue::Int(y)) =
            (&self.regs[self.r(a)], &self.regs[self.r(b)])
        {
            if let Some(value) = int_bin(op, *x, *y, line as usize) {
                self.set(dst, value?);
                return Ok(());
            }
        }
        let l = self.regs[self.r(a)].clone();
        let rv = self.regs[self.r(b)].clone();
        self.set(dst, interp.binary(op, l, rv, line as usize)?);
        Ok(())
    }
}

/// `Int ⊗ Int` arithmetic mirroring [`Interpreter::binary`]
/// byte-for-byte: same values, same error variants, same messages.
/// Returns `None` for operator/operand pairs the kernel must keep
/// owning (containment, boolean short-circuits), so divergence is
/// impossible by construction — the differential suite holds either
/// way. Notes tying each arm to the kernel: `Add` is the kernel's
/// unchecked `a + b`; `Sub`/`Mul` use `checked_*` with the kernel's
/// "integer overflow"; `Div` promotes to float exactly like
/// `both_floats` (an `i64` is zero iff its `f64` cast is).
fn int_bin(op: BinOp, a: i64, b: i64, line: usize) -> Option<Result<ScriptValue, ScriptError>> {
    use ScriptValue as V;
    let arith = |message: &str| ScriptError::Arithmetic {
        line,
        message: message.into(),
    };
    Some(match op {
        BinOp::Add => Ok(V::Int(a + b)),
        BinOp::Sub => a
            .checked_sub(b)
            .map(V::Int)
            .ok_or_else(|| arith("integer overflow")),
        BinOp::Mul => a
            .checked_mul(b)
            .map(V::Int)
            .ok_or_else(|| arith("integer overflow")),
        BinOp::Div => {
            if b == 0 {
                Err(arith("division by zero"))
            } else {
                Ok(V::Float(a as f64 / b as f64))
            }
        }
        BinOp::FloorDiv => {
            if b == 0 {
                Err(arith("division by zero"))
            } else {
                Ok(V::Int(a.div_euclid(b)))
            }
        }
        BinOp::Mod => {
            if b == 0 {
                Err(arith("modulo by zero"))
            } else {
                Ok(V::Int(a.rem_euclid(b)))
            }
        }
        BinOp::Eq => Ok(V::Bool(a == b)),
        BinOp::NotEq => Ok(V::Bool(a != b)),
        // Ordering goes through `both_floats` in the kernel, so ints
        // beyond 2^53 compare with f64 precision — replicate that
        // rather than "fixing" it, or the oracle diverges.
        BinOp::Lt => Ok(V::Bool((a as f64) < (b as f64))),
        BinOp::LtEq => Ok(V::Bool((a as f64) <= (b as f64))),
        BinOp::Gt => Ok(V::Bool((a as f64) > (b as f64))),
        BinOp::GtEq => Ok(V::Bool((a as f64) >= (b as f64))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use crate::bytecode::compile_source;
    use crate::interp::Interpreter;
    use crate::value::ScriptValue;

    fn run_vm(src: &str) -> Result<ScriptValue, crate::error::ScriptError> {
        let program = compile_source(src)?;
        Interpreter::new().run_compiled(&program)
    }

    #[test]
    fn arithmetic_and_result() {
        assert_eq!(
            run_vm("x = 2\ny = 3\nx * y + 1").unwrap(),
            ScriptValue::Int(7)
        );
    }

    #[test]
    fn control_flow_and_functions() {
        let src = "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nfib(10)";
        assert_eq!(run_vm(src).unwrap(), ScriptValue::Int(55));
    }

    #[test]
    fn loops_break_continue() {
        let src = "total = 0\nfor n in range(10):\n    if n == 7:\n        break\n    if n % 2 == 0:\n        continue\n    total += n\ntotal";
        assert_eq!(run_vm(src).unwrap(), ScriptValue::Int(9));
    }

    #[test]
    fn listcomp_with_condition() {
        let src = "xs = [n * n for n in range(6) if n % 2 == 0]\nlen(xs)";
        assert_eq!(run_vm(src).unwrap(), ScriptValue::Int(3));
    }

    #[test]
    fn host_functions_dispatch() {
        let program = compile_source("double(21)").unwrap();
        let mut interp = Interpreter::new();
        interp.bind_host_fn("double", |args| {
            let n = args[0].as_int()?;
            Ok(ScriptValue::Int(n * 2))
        });
        assert_eq!(interp.run_compiled(&program).unwrap(), ScriptValue::Int(42));
    }

    #[test]
    fn fuel_matches_interpreter() {
        let src = "total = 0\nfor n in range(50):\n    total += n * 2\ntotal";
        let mut a = Interpreter::new();
        let va = a.run(src).unwrap();
        let mut b = Interpreter::new();
        let vb = b.run_compiled(&compile_source(src).unwrap()).unwrap();
        assert_eq!(va, vb);
        assert_eq!(a.fuel_remaining(), b.fuel_remaining());
    }

    #[test]
    fn globals_persist_across_compiled_runs() {
        let mut interp = Interpreter::new();
        interp
            .run_compiled(&compile_source("x = 40").unwrap())
            .unwrap();
        assert_eq!(
            interp
                .run_compiled(&compile_source("x + 2").unwrap())
                .unwrap(),
            ScriptValue::Int(42)
        );
    }

    #[test]
    fn functions_defined_by_interpreter_callable_from_vm() {
        let mut interp = Interpreter::new();
        interp.run("def inc(n):\n    return n + 1").unwrap();
        assert_eq!(
            interp
                .run_compiled(&compile_source("inc(41)").unwrap())
                .unwrap(),
            ScriptValue::Int(42)
        );
    }

    #[test]
    fn recursion_limit_enforced() {
        let src = "def f(n):\n    return f(n + 1)\nf(0)";
        let err = run_vm(src).unwrap_err();
        assert!(matches!(err, crate::error::ScriptError::RecursionLimit));
    }
}
