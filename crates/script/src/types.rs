//! Flow-sensitive typechecker for Pyrite.
//!
//! Runs between parsing and execution (and before any simulated spend in
//! `aida-agents`): a program this pass rejects costs $0.00 and zero
//! virtual seconds. It complements the structural checker in
//! [`crate::check`] with the dataflow facts that checker cannot see:
//!
//! * **Use before assignment** — a variable read on a path where no
//!   earlier statement can have assigned it (the structural checker only
//!   knows whether a name is assigned *somewhere*).
//! * **Tool arity and argument types** — calls to registered host tools
//!   are checked against their parsed signatures ([`ToolSig`]).
//! * **Branch-join typing** — a variable assigned `int` in one arm and
//!   `str` in another joins to [`Ty::Any`]; only *definite* misuse is
//!   reported downstream.
//! * **Loop-carried variables** — names assigned inside a loop body are
//!   in scope (as possibly-unassigned) for the whole body, so
//!   accumulator patterns type correctly without false positives.
//!
//! The pass is deliberately conservative: it reports an error only when
//! every runtime path through the expression would raise it — mirroring
//! the interpreter's own `binary`/`index`/`call` rejections — and types
//! it cannot prove stay [`Ty::Any`]. Conservatism is what lets the agent
//! runtime treat a type error as a hard pre-billing reject.

use crate::ast::*;
use crate::check::BUILTINS;
use crate::error::ScriptError;
use std::collections::{HashMap, HashSet};

/// A static type. `Any` is the unknown/top type; joins of unequal types
/// collapse to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Unknown (checks involving it always pass).
    Any,
    /// `int`
    Int,
    /// `float`
    Float,
    /// `str`
    Str,
    /// `bool`
    Bool,
    /// `None`
    None,
    /// `list` (element types are not tracked).
    List,
    /// `dict` (string keys; value types are not tracked).
    Dict,
    /// A user function value.
    Func,
}

impl Ty {
    /// The least upper bound of two types.
    pub fn join(self, other: Ty) -> Ty {
        if self == other {
            self
        } else {
            Ty::Any
        }
    }

    /// Display name matching the interpreter's `type_name()` strings.
    pub fn name(self) -> &'static str {
        match self {
            Ty::Any => "any",
            Ty::Int => "int",
            Ty::Float => "float",
            Ty::Str => "str",
            Ty::Bool => "bool",
            Ty::None => "None",
            Ty::List => "list",
            Ty::Dict => "dict",
            Ty::Func => "function",
        }
    }

    fn is_num(self) -> bool {
        matches!(self, Ty::Any | Ty::Int | Ty::Float)
    }

    /// Whether a value of this type can satisfy an `expected` annotation.
    fn satisfies(self, expected: Ty) -> bool {
        match (self, expected) {
            (Ty::Any, _) | (_, Ty::Any) => true,
            // Ints are acceptable where floats are expected (the
            // interpreter bridges them in arithmetic and comparisons).
            (Ty::Int, Ty::Float) => true,
            (a, b) => a == b,
        }
    }
}

/// A parsed tool signature, e.g. `search_keywords(query: str, k: int) ->
/// list[str]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSig {
    /// Tool name.
    pub name: String,
    /// Parameters: name and annotated type (`Ty::Any` when unannotated).
    pub params: Vec<(String, Ty)>,
    /// Return type (`Ty::Any` when unannotated).
    pub ret: Ty,
}

impl ToolSig {
    /// Parses a Python-style signature line. Returns `None` when the text
    /// does not look like `name(params...)` — callers should then fall
    /// back to skipping checks for that tool.
    pub fn parse(signature: &str) -> Option<ToolSig> {
        let open = signature.find('(')?;
        let close = signature.rfind(')')?;
        if close < open {
            return None;
        }
        let name = signature[..open].trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return None;
        }
        let params_text = &signature[open + 1..close];
        let mut params = Vec::new();
        if !params_text.trim().is_empty() {
            for part in split_params(params_text) {
                let part = part.trim();
                let (pname, ty) = match part.split_once(':') {
                    Some((n, t)) => (n.trim(), parse_ty(t.trim())),
                    None => (part, Ty::Any),
                };
                if pname.is_empty() {
                    return None;
                }
                params.push((pname.to_string(), ty));
            }
        }
        let ret = signature[close + 1..]
            .trim()
            .strip_prefix("->")
            .map_or(Ty::Any, |r| parse_ty(r.trim()));
        Some(ToolSig {
            name: name.to_string(),
            params,
            ret,
        })
    }
}

/// Splits a parameter list on top-level commas (commas inside `[...]`
/// annotations like `list[str]` do not split).
fn split_params(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

fn parse_ty(text: &str) -> Ty {
    let base = text.split('[').next().unwrap_or("").trim();
    match base {
        "int" => Ty::Int,
        "float" => Ty::Float,
        "str" => Ty::Str,
        "bool" => Ty::Bool,
        "None" | "none" => Ty::None,
        "list" => Ty::List,
        "dict" => Ty::Dict,
        _ => Ty::Any,
    }
}

/// The environment a program is checked against: registered tool
/// signatures plus pre-bound globals (agent state carried between
/// steps).
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    /// Tool signatures by name.
    pub tools: HashMap<String, ToolSig>,
    /// Pre-bound global variables and their types (use [`Ty::Any`] when
    /// unknown).
    pub globals: HashMap<String, Ty>,
    /// Tools whose signature text failed to parse: calls resolve but are
    /// not arity- or type-checked.
    pub unchecked: HashSet<String>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Registers a tool from its signature text; lines that fail to
    /// parse register an unchecked (arity-unknown) tool.
    pub fn add_tool_signature(&mut self, name: &str, signature: &str) {
        match ToolSig::parse(signature) {
            Some(sig) => {
                self.tools.insert(name.to_string(), sig);
            }
            None => {
                // Unparseable signature: register with unknown params so
                // calls resolve but are not arity-checked.
                self.tools.insert(
                    name.to_string(),
                    ToolSig {
                        name: name.to_string(),
                        params: Vec::new(),
                        ret: Ty::Any,
                    },
                );
                self.unchecked.insert(name.to_string());
            }
        }
    }

    /// Marks a pre-bound global.
    pub fn bind_global(&mut self, name: &str, ty: Ty) {
        self.globals.insert(name.to_string(), ty);
    }
}

/// One variable's flow fact.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Binding {
    ty: Ty,
    /// Assigned on every path reaching here.
    definite: bool,
}

/// Per-path variable state.
#[derive(Debug, Clone, Default)]
struct Flow {
    vars: HashMap<String, Binding>,
    /// False after `return`/`break`/`continue`: subsequent sibling
    /// statements in the block are unreachable from this path.
    live: bool,
}

impl Flow {
    fn start() -> Flow {
        Flow {
            vars: HashMap::new(),
            live: true,
        }
    }

    fn assign(&mut self, name: &str, ty: Ty) {
        self.vars
            .insert(name.to_string(), Binding { ty, definite: true });
    }

    fn weaken(&mut self, name: &str, ty: Ty) {
        self.vars
            .entry(name.to_string())
            .and_modify(|b| b.ty = b.ty.join(ty))
            .or_insert(Binding {
                ty,
                definite: false,
            });
    }

    /// Joins another branch's outcome into this one. A variable stays
    /// definite only when definite on both paths; types join. Dead
    /// branches contribute nothing.
    fn join(&mut self, other: &Flow) {
        if !other.live {
            return;
        }
        if !self.live {
            *self = other.clone();
            return;
        }
        let mut merged = HashMap::new();
        for (name, b) in &self.vars {
            match other.vars.get(name) {
                Some(ob) => {
                    merged.insert(
                        name.clone(),
                        Binding {
                            ty: b.ty.join(ob.ty),
                            definite: b.definite && ob.definite,
                        },
                    );
                }
                None => {
                    merged.insert(
                        name.clone(),
                        Binding {
                            ty: b.ty,
                            definite: false,
                        },
                    );
                }
            }
        }
        for (name, ob) in &other.vars {
            merged.entry(name.clone()).or_insert(Binding {
                ty: ob.ty,
                definite: false,
            });
        }
        self.vars = merged;
    }
}

/// Typechecks a program against an environment, returning the first
/// definite error (reported as [`ScriptError::Type`]).
pub fn typecheck(program: &Program, env: &TypeEnv) -> Result<(), ScriptError> {
    let mut assigned_anywhere = HashSet::new();
    collect_assigned_names(&program.body, &mut assigned_anywhere);
    let tc = Tc {
        env,
        assigned_anywhere,
    };
    let mut flow = Flow::start();
    for (name, ty) in &env.globals {
        flow.vars.insert(
            name.clone(),
            Binding {
                ty: *ty,
                definite: true,
            },
        );
    }
    tc.block(&program.body, &mut flow, None)?;
    Ok(())
}

/// Every name any statement in the program can assign (including inside
/// function bodies — their `def` runs against the same late-binding
/// globals rules).
fn collect_assigned_names(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(Target::Name(n), _) | StmtKind::AugAssign(Target::Name(n), _, _) => {
                out.insert(n.clone());
            }
            StmtKind::Assign(_, _) | StmtKind::AugAssign(_, _, _) => {}
            StmtKind::If(arms, else_body) => {
                for (_, body) in arms {
                    collect_assigned_names(body, out);
                }
                if let Some(body) = else_body {
                    collect_assigned_names(body, out);
                }
            }
            StmtKind::While(_, body) => collect_assigned_names(body, out),
            StmtKind::For(vars, _, body) => {
                for v in vars {
                    out.insert(v.clone());
                }
                collect_assigned_names(body, out);
            }
            StmtKind::Def(name, params, body) => {
                out.insert(name.clone());
                for p in params {
                    out.insert(p.clone());
                }
                collect_assigned_names(body, out);
            }
            _ => {}
        }
    }
    for s in stmts {
        comp_var_names(s, out);
    }
}

fn comp_var_names(stmt: &Stmt, out: &mut HashSet<String>) {
    fn walk(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::ListComp {
                element,
                vars,
                iterable,
                condition,
            } => {
                for v in vars {
                    out.insert(v.clone());
                }
                walk(element, out);
                walk(iterable, out);
                if let Some(c) = condition {
                    walk(c, out);
                }
            }
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            ExprKind::Unary(_, a) => walk(a, out),
            ExprKind::Call(f, args) => {
                walk(f, out);
                for a in args {
                    walk(a, out);
                }
            }
            ExprKind::MethodCall(o, _, args) => {
                walk(o, out);
                for a in args {
                    walk(a, out);
                }
            }
            ExprKind::Slice(o, lo, hi) => {
                walk(o, out);
                if let Some(b) = lo {
                    walk(b, out);
                }
                if let Some(b) = hi {
                    walk(b, out);
                }
            }
            ExprKind::List(items) => {
                for i in items {
                    walk(i, out);
                }
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    walk(k, out);
                    walk(v, out);
                }
            }
            _ => {}
        }
    }
    match &stmt.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) | StmtKind::While(e, _) => walk(e, out),
        StmtKind::Assign(t, e) | StmtKind::AugAssign(t, _, e) => {
            if let Target::Index(o, k) = t {
                walk(o, out);
                walk(k, out);
            }
            walk(e, out);
        }
        StmtKind::If(arms, _) => {
            for (c, _) in arms {
                walk(c, out);
            }
        }
        StmtKind::For(_, e, _) => walk(e, out),
        _ => {}
    }
}

struct Tc<'a> {
    env: &'a TypeEnv,
    /// Names assigned anywhere in the program (late-binding fallback for
    /// function bodies and forward references the flow pass must not
    /// flag as unknown — only as unassigned when used at top level
    /// before any possible assignment).
    assigned_anywhere: HashSet<String>,
}

/// Context for checking inside a function body: its local names.
struct FnCtx {
    locals: HashSet<String>,
}

impl<'a> Tc<'a> {
    fn err(&self, line: usize, message: String) -> ScriptError {
        ScriptError::Type { line, message }
    }

    fn block(
        &self,
        body: &[Stmt],
        flow: &mut Flow,
        fctx: Option<&FnCtx>,
    ) -> Result<(), ScriptError> {
        for stmt in body {
            if !flow.live {
                // Unreachable code: still check it against a fresh copy
                // of the facts so obvious errors surface, but do not let
                // its assignments revive the path.
                let mut dead = flow.clone();
                dead.live = true;
                self.stmt(stmt, &mut dead, fctx)?;
                continue;
            }
            self.stmt(stmt, flow, fctx)?;
        }
        Ok(())
    }

    fn stmt(&self, stmt: &Stmt, flow: &mut Flow, fctx: Option<&FnCtx>) -> Result<(), ScriptError> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.expr(e, flow, fctx)?;
            }
            StmtKind::Assign(Target::Name(name), value) => {
                let ty = self.expr(value, flow, fctx)?;
                flow.assign(name, ty);
            }
            StmtKind::Assign(Target::Index(obj, key), value) => {
                let vt = self.expr(value, flow, fctx)?;
                let ot = self.expr(obj, flow, fctx)?;
                let kt = self.expr(key, flow, fctx)?;
                let _ = vt;
                self.check_index_store(ot, kt, line)?;
            }
            StmtKind::AugAssign(Target::Name(name), op, value) => {
                let rhs = self.expr(value, flow, fctx)?;
                let cur = self.use_name(name, line, flow, fctx)?;
                let ty = self.check_binary(*op, cur, rhs, line)?;
                flow.assign(name, ty);
            }
            StmtKind::AugAssign(Target::Index(obj, key), op, value) => {
                let rhs = self.expr(value, flow, fctx)?;
                let ot = self.expr(obj, flow, fctx)?;
                let kt = self.expr(key, flow, fctx)?;
                self.check_index_store(ot, kt, line)?;
                self.check_binary(*op, Ty::Any, rhs, line)?;
            }
            StmtKind::If(arms, else_body) => {
                let mut joined: Option<Flow> = None;
                for (cond, body) in arms {
                    self.expr(cond, flow, fctx)?;
                    let mut arm = flow.clone();
                    self.block(body, &mut arm, fctx)?;
                    match &mut joined {
                        Some(j) => j.join(&arm),
                        None => joined = Some(arm),
                    }
                }
                let mut else_flow = flow.clone();
                if let Some(body) = else_body {
                    self.block(body, &mut else_flow, fctx)?;
                }
                let mut joined = joined.expect("if has at least one arm");
                joined.join(&else_flow);
                *flow = joined;
            }
            StmtKind::While(cond, body) => {
                // Loop-carried names: visible inside and after the body
                // as possibly-unassigned.
                let mut carried = HashSet::new();
                collect_assigned_names(std::slice::from_ref(stmt), &mut carried);
                for name in &carried {
                    flow.weaken(name, Ty::Any);
                }
                self.expr(cond, flow, fctx)?;
                let mut body_flow = flow.clone();
                self.block(body, &mut body_flow, fctx)?;
                flow.join(&body_flow);
                flow.live = true;
            }
            StmtKind::For(vars, iterable, body) => {
                let it = self.expr(iterable, flow, fctx)?;
                if !matches!(it, Ty::Any | Ty::List | Ty::Str | Ty::Dict) {
                    return Err(self.err(line, format!("{} is not iterable", it.name())));
                }
                let mut carried = HashSet::new();
                collect_assigned_names(std::slice::from_ref(stmt), &mut carried);
                for name in &carried {
                    flow.weaken(name, Ty::Any);
                }
                let mut body_flow = flow.clone();
                let elem = if it == Ty::Str || it == Ty::Dict {
                    Ty::Str
                } else {
                    Ty::Any
                };
                if vars.len() == 1 {
                    body_flow.assign(&vars[0], elem);
                } else {
                    for v in vars {
                        body_flow.assign(v, Ty::Any);
                    }
                }
                self.block(body, &mut body_flow, fctx)?;
                flow.join(&body_flow);
                flow.live = true;
            }
            StmtKind::Def(name, params, body) => {
                let mut locals: HashSet<String> = params.iter().cloned().collect();
                let mut body_assigned = HashSet::new();
                collect_local_assigned(body, &mut body_assigned);
                locals.extend(body_assigned);
                let ctx = FnCtx { locals };
                let mut fn_flow = Flow::start();
                for p in params {
                    fn_flow.assign(p, Ty::Any);
                }
                self.block(body, &mut fn_flow, Some(&ctx))?;
                flow.assign(name, Ty::Func);
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.expr(e, flow, fctx)?;
                }
                flow.live = false;
            }
            StmtKind::Break | StmtKind::Continue => {
                flow.live = false;
            }
            StmtKind::Pass => {}
        }
        Ok(())
    }

    /// Resolves a name use, enforcing use-before-assign at the top level
    /// and the late-binding rules inside functions.
    fn use_name(
        &self,
        name: &str,
        line: usize,
        flow: &Flow,
        fctx: Option<&FnCtx>,
    ) -> Result<Ty, ScriptError> {
        if let Some(b) = flow.vars.get(name) {
            return Ok(b.ty);
        }
        if let Some(ctx) = fctx {
            // Inside a function an unseen name may still resolve at call
            // time: a global assigned before the call, a tool, or a
            // builtin. Only names that are locals of this function (and
            // thus shadow everything) are definitely unassigned here.
            if ctx.locals.contains(name) {
                return Err(self.err(
                    line,
                    format!("local variable '{name}' used before assignment"),
                ));
            }
            if self.known_global(name) {
                return Ok(Ty::Any);
            }
            return Err(self.err(line, format!("name '{name}' is not defined")));
        }
        if self.env.tools.contains_key(name) || BUILTINS.contains(&name) {
            // Reading a tool/builtin as a value is not something the
            // interpreter supports (they are not first-class), but the
            // structural checker owns that diagnostic.
            return Ok(Ty::Any);
        }
        if self.assigned_anywhere.contains(name) {
            return Err(self.err(line, format!("variable '{name}' used before assignment")));
        }
        Err(self.err(line, format!("name '{name}' is not defined")))
    }

    fn known_global(&self, name: &str) -> bool {
        self.assigned_anywhere.contains(name)
            || self.env.globals.contains_key(name)
            || self.env.tools.contains_key(name)
            || BUILTINS.contains(&name)
    }

    fn expr(&self, e: &Expr, flow: &mut Flow, fctx: Option<&FnCtx>) -> Result<Ty, ScriptError> {
        let line = e.line;
        let ty = match &e.kind {
            ExprKind::Int(_) => Ty::Int,
            ExprKind::Float(_) => Ty::Float,
            ExprKind::Str(_) => Ty::Str,
            ExprKind::Bool(_) => Ty::Bool,
            ExprKind::None => Ty::None,
            ExprKind::Name(name) => self.use_name(name, line, flow, fctx)?,
            ExprKind::List(items) => {
                for item in items {
                    self.expr(item, flow, fctx)?;
                }
                Ty::List
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    let kt = self.expr(k, flow, fctx)?;
                    if !kt.satisfies(Ty::Str) {
                        return Err(self.err(line, "dict keys must be strings".into()));
                    }
                    self.expr(v, flow, fctx)?;
                }
                Ty::Dict
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.expr(lhs, flow, fctx)?;
                let rt = self.expr(rhs, flow, fctx)?;
                self.check_binary(*op, lt, rt, line)?
            }
            ExprKind::Unary(UnaryOp::Neg, operand) => {
                let t = self.expr(operand, flow, fctx)?;
                if !t.is_num() {
                    return Err(self.err(line, format!("cannot negate {}", t.name())));
                }
                t
            }
            ExprKind::Unary(UnaryOp::Not, operand) => {
                self.expr(operand, flow, fctx)?;
                Ty::Bool
            }
            ExprKind::Call(callee, args) => {
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args {
                    arg_tys.push(self.expr(a, flow, fctx)?);
                }
                self.check_call(callee, &arg_tys, line, flow, fctx)?
            }
            ExprKind::MethodCall(obj, _method, args) => {
                let ot = self.expr(obj, flow, fctx)?;
                for a in args {
                    self.expr(a, flow, fctx)?;
                }
                if matches!(ot, Ty::Int | Ty::Float | Ty::Bool | Ty::None | Ty::Func) {
                    return Err(self.err(line, format!("{} has no methods", ot.name())));
                }
                Ty::Any
            }
            ExprKind::Index(obj, key) => {
                let ot = self.expr(obj, flow, fctx)?;
                let kt = self.expr(key, flow, fctx)?;
                match ot {
                    Ty::List | Ty::Str => {
                        if !kt.satisfies(Ty::Int) || kt == Ty::Float {
                            return Err(self.err(
                                line,
                                format!("list indices must be ints, not {}", kt.name()),
                            ));
                        }
                        if ot == Ty::Str {
                            Ty::Str
                        } else {
                            Ty::Any
                        }
                    }
                    Ty::Dict => {
                        if !kt.satisfies(Ty::Str) {
                            return Err(self.err(line, "dict keys must be strings".into()));
                        }
                        Ty::Any
                    }
                    Ty::Any => Ty::Any,
                    other => {
                        return Err(self.err(line, format!("{} is not subscriptable", other.name())))
                    }
                }
            }
            ExprKind::ListComp {
                element,
                vars,
                iterable,
                condition,
            } => {
                let it = self.expr(iterable, flow, fctx)?;
                if !matches!(it, Ty::Any | Ty::List | Ty::Str | Ty::Dict) {
                    return Err(self.err(line, format!("{} is not iterable", it.name())));
                }
                let elem = if it == Ty::Str || it == Ty::Dict {
                    Ty::Str
                } else {
                    Ty::Any
                };
                if vars.len() == 1 {
                    flow.assign(&vars[0], elem);
                } else {
                    for v in vars {
                        flow.assign(v, Ty::Any);
                    }
                }
                if let Some(cond) = condition {
                    self.expr(cond, flow, fctx)?;
                }
                self.expr(element, flow, fctx)?;
                // Comprehension vars leak into the enclosing scope but
                // only run when the iterable is non-empty.
                for v in vars {
                    flow.weaken(v, Ty::Any);
                }
                Ty::List
            }
            ExprKind::Slice(obj, lo, hi) => {
                let ot = self.expr(obj, flow, fctx)?;
                for bound in [lo, hi].into_iter().flatten() {
                    let bt = self.expr(bound, flow, fctx)?;
                    if !bt.satisfies(Ty::Int) || bt == Ty::Float {
                        return Err(self.err(line, "slice bounds must be ints".into()));
                    }
                }
                match ot {
                    Ty::List => Ty::List,
                    Ty::Str => Ty::Str,
                    Ty::Any => Ty::Any,
                    other => {
                        return Err(self.err(line, format!("{} cannot be sliced", other.name())))
                    }
                }
            }
        };
        Ok(ty)
    }

    /// Checks a call expression. Tool and builtin calls resolve only when
    /// the name cannot be shadowed by any assignment in the program (the
    /// interpreter resolves shadowing dynamically; a name assigned
    /// *anywhere* might shadow by call time, so such calls are left to
    /// runtime).
    fn check_call(
        &self,
        callee: &Expr,
        args: &[Ty],
        line: usize,
        flow: &mut Flow,
        fctx: Option<&FnCtx>,
    ) -> Result<Ty, ScriptError> {
        if let ExprKind::Name(name) = &callee.kind {
            let shadowable =
                self.assigned_anywhere.contains(name) || self.env.globals.contains_key(name);
            if !shadowable {
                if let Some(sig) = self.env.tools.get(name) {
                    if !self.env.unchecked.contains(name) {
                        if sig.params.len() != args.len() {
                            return Err(self.err(
                                line,
                                format!(
                                    "{}() takes {} argument{} but {} {} given",
                                    name,
                                    sig.params.len(),
                                    if sig.params.len() == 1 { "" } else { "s" },
                                    args.len(),
                                    if args.len() == 1 { "was" } else { "were" },
                                ),
                            ));
                        }
                        for ((pname, pty), aty) in sig.params.iter().zip(args) {
                            if !aty.satisfies(*pty) {
                                return Err(self.err(
                                    line,
                                    format!(
                                        "{}() argument '{}' expects {}, got {}",
                                        name,
                                        pname,
                                        pty.name(),
                                        aty.name()
                                    ),
                                ));
                            }
                        }
                    }
                    return Ok(sig.ret);
                }
                if BUILTINS.contains(&name.as_str()) {
                    return Ok(builtin_ret(name));
                }
            }
            // A (possibly shadowed) variable callee: ensure it resolves.
            let ty = self.use_name(name, callee.line, flow, fctx)?;
            if matches!(
                ty,
                Ty::Int | Ty::Float | Ty::Str | Ty::Bool | Ty::None | Ty::List | Ty::Dict
            ) {
                return Err(self.err(line, format!("{} is not callable", ty.name())));
            }
            return Ok(Ty::Any);
        }
        let ty = self.expr(callee, flow, fctx)?;
        if matches!(
            ty,
            Ty::Int | Ty::Float | Ty::Str | Ty::Bool | Ty::None | Ty::List | Ty::Dict
        ) {
            return Err(self.err(line, format!("{} is not callable", ty.name())));
        }
        Ok(Ty::Any)
    }

    /// Checks a binary operation, mirroring the interpreter's `binary`
    /// kernel: an error is reported only for operand-type combinations
    /// the interpreter always rejects.
    fn check_binary(&self, op: BinOp, l: Ty, r: Ty, line: usize) -> Result<Ty, ScriptError> {
        use Ty::*;
        let err = |m: String| Err::<Ty, _>(self.err(line, m));
        match op {
            BinOp::Add => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int, Int) => Ok(Int),
                (Str, Str) => Ok(Str),
                (List, List) => Ok(List),
                (Int | Float, Int | Float) => Ok(Float),
                _ => err(format!("cannot add {} and {}", l.name(), r.name())),
            },
            BinOp::Sub => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int, Int) => Ok(Int),
                (Int | Float, Int | Float) => Ok(Float),
                _ => err(format!(
                    "unsupported operand types: {} and {}",
                    l.name(),
                    r.name()
                )),
            },
            BinOp::Mul => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int, Int) => Ok(Int),
                (Str, Int) | (Int, Str) => Ok(Str),
                (Int | Float, Int | Float) => Ok(Float),
                _ => err(format!(
                    "unsupported operand types: {} and {}",
                    l.name(),
                    r.name()
                )),
            },
            BinOp::Div => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int | Float, Int | Float) => Ok(Float),
                _ => err(format!("cannot divide {} by {}", l.name(), r.name())),
            },
            BinOp::FloorDiv => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int, Int) => Ok(Int),
                (Int | Float, Int | Float) => Ok(Float),
                _ => err("'//' needs numbers".into()),
            },
            BinOp::Mod => match (l, r) {
                (Any, _) | (_, Any) => Ok(Any),
                (Int, Int) => Ok(Int),
                _ => err("'%' needs ints".into()),
            },
            BinOp::Eq | BinOp::NotEq => Ok(Bool),
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let comparable = matches!(
                    (l, r),
                    (Any, _) | (_, Any) | (Int | Float, Int | Float) | (Str, Str)
                );
                if comparable {
                    Ok(Bool)
                } else {
                    err(format!("cannot compare {} and {}", l.name(), r.name()))
                }
            }
            BinOp::In | BinOp::NotIn => {
                let supported = matches!(r, Any | Str | List | Dict);
                if !supported {
                    return err(format!(
                        "'in' not supported between {} and {}",
                        l.name(),
                        r.name()
                    ));
                }
                Ok(Bool)
            }
            // Short-circuit operators accept anything and yield one of
            // their operands.
            BinOp::And | BinOp::Or => Ok(l.join(r)),
        }
    }

    fn check_index_store(&self, obj: Ty, key: Ty, line: usize) -> Result<(), ScriptError> {
        match obj {
            Ty::Any | Ty::List | Ty::Dict => {
                if obj == Ty::Dict && !key.satisfies(Ty::Str) {
                    return Err(self.err(
                        line,
                        format!("cannot assign into dict with {} key", key.name()),
                    ));
                }
                if obj == Ty::List && (!key.satisfies(Ty::Int) || key == Ty::Float) {
                    return Err(self.err(
                        line,
                        format!("cannot assign into list with {} key", key.name()),
                    ));
                }
                Ok(())
            }
            other => Err(self.err(
                line,
                format!(
                    "cannot assign into {} with {} key",
                    other.name(),
                    key.name()
                ),
            )),
        }
    }
}

/// Return types for builtins (conservative; only the always-certain
/// ones).
fn builtin_ret(name: &str) -> Ty {
    match name {
        "len" | "int" | "abs" | "sum" => Ty::Any,
        "str" => Ty::Str,
        "float" => Ty::Float,
        "bool" => Ty::Bool,
        "range" | "sorted" | "enumerate" => Ty::List,
        "print" => Ty::None,
        _ => Ty::Any,
    }
}

/// Collects names assigned by statements in a function body (its frame
/// locals), without descending into nested `def` bodies.
fn collect_local_assigned(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(Target::Name(n), _) | StmtKind::AugAssign(Target::Name(n), _, _) => {
                out.insert(n.clone());
            }
            StmtKind::If(arms, else_body) => {
                for (_, body) in arms {
                    collect_local_assigned(body, out);
                }
                if let Some(body) = else_body {
                    collect_local_assigned(body, out);
                }
            }
            StmtKind::While(_, body) => collect_local_assigned(body, out),
            StmtKind::For(vars, _, body) => {
                for v in vars {
                    out.insert(v.clone());
                }
                collect_local_assigned(body, out);
            }
            StmtKind::Def(name, _, _) => {
                out.insert(name.clone());
            }
            _ => {}
        }
    }
    for s in stmts {
        comp_var_names(s, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.add_tool_signature("read_file", "read_file(name: str) -> str");
        env.add_tool_signature("list_files", "list_files() -> list[str]");
        env.add_tool_signature(
            "search_keywords",
            "search_keywords(query: str, k: int) -> list[str]",
        );
        env.add_tool_signature("final_answer", "final_answer(answer) -> None");
        env
    }

    fn check(src: &str) -> Result<(), ScriptError> {
        typecheck(&parse(src).expect("parses"), &env())
    }

    fn check_err(src: &str) -> String {
        check(src).expect_err("should be ill-typed").to_string()
    }

    #[test]
    fn accepts_well_typed_programs() {
        check("files = list_files()\nfor f in files:\n    text = read_file(f)\n    print(text)")
            .unwrap();
        check("x = 1\nif x > 0:\n    y = 'pos'\nelse:\n    y = 'neg'\nprint(y)").unwrap();
        check("total = 0\nfor n in range(10):\n    total += n\ntotal").unwrap();
        check("def rate(name):\n    text = read_file(name)\n    return len(text)\nrate('a.txt')")
            .unwrap();
    }

    #[test]
    fn rejects_use_before_assign() {
        let msg = check_err("print(x)\nx = 1");
        assert!(msg.contains("used before assignment"), "{msg}");
        assert!(check("x = 1\nprint(x)").is_ok());
    }

    #[test]
    fn rejects_undefined_names() {
        let msg = check_err("print(nope)");
        assert!(msg.contains("not defined"), "{msg}");
    }

    #[test]
    fn rejects_tool_arity_errors() {
        let msg = check_err("read_file('a.txt', 'extra')");
        assert!(msg.contains("takes 1 argument"), "{msg}");
        let msg = check_err("list_files('oops')");
        assert!(msg.contains("takes 0 arguments"), "{msg}");
    }

    #[test]
    fn rejects_tool_argument_type_errors() {
        let msg = check_err("read_file(42)");
        assert!(msg.contains("expects str, got int"), "{msg}");
        let msg = check_err("search_keywords('q', 'not-an-int')");
        assert!(msg.contains("expects int, got str"), "{msg}");
    }

    #[test]
    fn tool_calls_shadowed_by_assignment_are_skipped() {
        // `read_file` is reassigned somewhere, so the call cannot be
        // statically bound to the tool.
        check("read_file = 1\nx = 2").unwrap();
    }

    #[test]
    fn rejects_definite_operator_misuse() {
        let msg = check_err("x = 'a' + 1");
        assert!(msg.contains("cannot add str and int"), "{msg}");
        let msg = check_err("x = {} - 1");
        assert!(msg.contains("unsupported operand types"), "{msg}");
        let msg = check_err("x = 'a' % 2");
        assert!(msg.contains("'%' needs ints"), "{msg}");
    }

    #[test]
    fn branch_join_collapses_types() {
        // int in one arm, str in the other: join is Any, so later use
        // with either type passes.
        check("if 1 > 0:\n    v = 1\nelse:\n    v = 'x'\nw = v").unwrap();
        // Both arms int: later arithmetic stays checked.
        let msg = check_err("if 1 > 0:\n    v = 1\nelse:\n    v = 2\nx = 'a' + v");
        assert!(msg.contains("cannot add"), "{msg}");
    }

    #[test]
    fn loop_carried_variables_allowed() {
        check("total = 0\nwhile total < 5:\n    total += 1\nprint(total)").unwrap();
        check("for f in list_files():\n    last = f\n").unwrap();
    }

    #[test]
    fn function_locals_checked_for_use_before_assign() {
        let msg = check_err("def f(n):\n    m = q\n    q = n\n    return m\nf(1)");
        assert!(msg.contains("'q' used before assignment"), "{msg}");
    }

    #[test]
    fn late_bound_globals_allowed_in_functions() {
        // `helper` is defined after `f` but before the call: legal.
        check("def f(n):\n    return helper(n)\ndef helper(n):\n    return n + 1\nf(1)").unwrap();
    }

    #[test]
    fn rejects_calling_non_callables() {
        let msg = check_err("x = 3\nx()");
        assert!(msg.contains("not callable"), "{msg}");
    }

    #[test]
    fn signature_parsing() {
        let sig = ToolSig::parse("search_keywords(query: str, k: int) -> list[str]").unwrap();
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.params[0], ("query".to_string(), Ty::Str));
        assert_eq!(sig.params[1], ("k".to_string(), Ty::Int));
        assert_eq!(sig.ret, Ty::List);
        let sig = ToolSig::parse("final_answer(answer) -> None").unwrap();
        assert_eq!(sig.params, vec![("answer".to_string(), Ty::Any)]);
        assert_eq!(sig.ret, Ty::None);
        assert!(ToolSig::parse("not a signature").is_none());
    }
}
