//! Runtime values for Pyrite.
//!
//! Lists and dicts have Python reference semantics (`Rc<RefCell<…>>`), so
//! `xs.append(…)` inside a function mutates the caller's list. Conversion
//! to/from [`aida_data::Value`] bridges the script world and the data
//! world at the host-function boundary.

use crate::ast::Stmt;
use crate::error::ScriptError;
use aida_data::Value as DataValue;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct UserFn {
    /// Function name (diagnostics).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A Pyrite runtime value.
#[derive(Debug, Clone)]
pub enum ScriptValue {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string.
    Str(Rc<String>),
    /// Mutable list (reference semantics).
    List(Rc<RefCell<Vec<ScriptValue>>>),
    /// Mutable dict with string keys (reference semantics).
    Dict(Rc<RefCell<BTreeMap<String, ScriptValue>>>),
    /// User-defined function.
    Func(Rc<UserFn>),
}

impl ScriptValue {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Self {
        ScriptValue::Str(Rc::new(s.into()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<ScriptValue>) -> Self {
        ScriptValue::List(Rc::new(RefCell::new(items)))
    }

    /// Creates a dict value.
    pub fn dict(entries: BTreeMap<String, ScriptValue>) -> Self {
        ScriptValue::Dict(Rc::new(RefCell::new(entries)))
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            ScriptValue::None => false,
            ScriptValue::Bool(b) => *b,
            ScriptValue::Int(i) => *i != 0,
            ScriptValue::Float(f) => *f != 0.0,
            ScriptValue::Str(s) => !s.is_empty(),
            ScriptValue::List(l) => !l.borrow().is_empty(),
            ScriptValue::Dict(d) => !d.borrow().is_empty(),
            ScriptValue::Func(_) => true,
        }
    }

    /// The value's type name (diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            ScriptValue::None => "NoneType",
            ScriptValue::Bool(_) => "bool",
            ScriptValue::Int(_) => "int",
            ScriptValue::Float(_) => "float",
            ScriptValue::Str(_) => "str",
            ScriptValue::List(_) => "list",
            ScriptValue::Dict(_) => "dict",
            ScriptValue::Func(_) => "function",
        }
    }

    /// Integer accessor (bools and integral floats coerce).
    pub fn as_int(&self) -> Result<i64, ScriptError> {
        match self {
            ScriptValue::Int(i) => Ok(*i),
            ScriptValue::Bool(b) => Ok(i64::from(*b)),
            ScriptValue::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            other => Err(ScriptError::host(format!(
                "expected int, found {}",
                other.type_name()
            ))),
        }
    }

    /// Float accessor (ints coerce).
    pub fn as_float(&self) -> Result<f64, ScriptError> {
        match self {
            ScriptValue::Float(f) => Ok(*f),
            ScriptValue::Int(i) => Ok(*i as f64),
            ScriptValue::Bool(b) => Ok(f64::from(u8::from(*b))),
            other => Err(ScriptError::host(format!(
                "expected float, found {}",
                other.type_name()
            ))),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str, ScriptError> {
        match self {
            ScriptValue::Str(s) => Ok(s.as_str()),
            other => Err(ScriptError::host(format!(
                "expected str, found {}",
                other.type_name()
            ))),
        }
    }

    /// Structural equality (Python `==`).
    pub fn eq_value(&self, other: &ScriptValue) -> bool {
        match (self, other) {
            (ScriptValue::None, ScriptValue::None) => true,
            (ScriptValue::Bool(a), ScriptValue::Bool(b)) => a == b,
            (ScriptValue::Int(a), ScriptValue::Int(b)) => a == b,
            (ScriptValue::Float(a), ScriptValue::Float(b)) => a == b,
            (ScriptValue::Int(a), ScriptValue::Float(b))
            | (ScriptValue::Float(b), ScriptValue::Int(a)) => (*a as f64) == *b,
            (ScriptValue::Str(a), ScriptValue::Str(b)) => a == b,
            (ScriptValue::List(a), ScriptValue::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_value(y))
            }
            (ScriptValue::Dict(a), ScriptValue::Dict(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.eq_value(vb))
            }
            _ => false,
        }
    }

    /// Converts to the data-layer value (host-function boundary). Dicts
    /// become lists of `[key, value]` pairs; functions error.
    pub fn to_data(&self) -> Result<DataValue, ScriptError> {
        Ok(match self {
            ScriptValue::None => DataValue::Null,
            ScriptValue::Bool(b) => DataValue::Bool(*b),
            ScriptValue::Int(i) => DataValue::Int(*i),
            ScriptValue::Float(f) => DataValue::Float(*f),
            ScriptValue::Str(s) => DataValue::Str(s.as_str().to_string()),
            ScriptValue::List(items) => DataValue::List(
                items
                    .borrow()
                    .iter()
                    .map(|v| v.to_data())
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            ScriptValue::Dict(entries) => DataValue::List(
                entries
                    .borrow()
                    .iter()
                    .map(|(k, v)| {
                        Ok(DataValue::List(vec![
                            DataValue::Str(k.clone()),
                            v.to_data()?,
                        ]))
                    })
                    .collect::<Result<Vec<_>, ScriptError>>()?,
            ),
            ScriptValue::Func(f) => {
                return Err(ScriptError::host(format!(
                    "cannot pass function '{}' to a tool",
                    f.name
                )))
            }
        })
    }

    /// Converts from the data-layer value.
    pub fn from_data(value: &DataValue) -> ScriptValue {
        match value {
            DataValue::Null => ScriptValue::None,
            DataValue::Bool(b) => ScriptValue::Bool(*b),
            DataValue::Int(i) => ScriptValue::Int(*i),
            DataValue::Float(f) => ScriptValue::Float(*f),
            DataValue::Str(s) => ScriptValue::str(s.clone()),
            DataValue::List(items) => {
                ScriptValue::list(items.iter().map(ScriptValue::from_data).collect())
            }
        }
    }

    /// `repr()`-style rendering (strings quoted inside containers).
    pub fn repr(&self) -> String {
        match self {
            ScriptValue::Str(s) => format!("'{s}'"),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for ScriptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptValue::None => write!(f, "None"),
            ScriptValue::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            ScriptValue::Int(i) => write!(f, "{i}"),
            ScriptValue::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            ScriptValue::Str(s) => write!(f, "{s}"),
            ScriptValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", item.repr())?;
                }
                write!(f, "]")
            }
            ScriptValue::Dict(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "'{k}': {}", v.repr())?;
                }
                write!(f, "}}")
            }
            ScriptValue::Func(func) => write!(f, "<function {}>", func.name),
        }
    }
}

impl PartialEq for ScriptValue {
    fn eq(&self, other: &Self) -> bool {
        self.eq_value(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!ScriptValue::None.truthy());
        assert!(!ScriptValue::Int(0).truthy());
        assert!(ScriptValue::Int(5).truthy());
        assert!(!ScriptValue::str("").truthy());
        assert!(ScriptValue::list(vec![ScriptValue::Int(1)]).truthy());
        assert!(!ScriptValue::dict(BTreeMap::new()).truthy());
    }

    #[test]
    fn reference_semantics_for_lists() {
        let a = ScriptValue::list(vec![ScriptValue::Int(1)]);
        let b = a.clone();
        if let ScriptValue::List(items) = &b {
            items.borrow_mut().push(ScriptValue::Int(2));
        }
        if let ScriptValue::List(items) = &a {
            assert_eq!(items.borrow().len(), 2);
        } else {
            panic!("not a list");
        }
    }

    #[test]
    fn equality_bridges_int_float() {
        assert_eq!(ScriptValue::Int(2), ScriptValue::Float(2.0));
        assert_ne!(ScriptValue::Int(2), ScriptValue::Float(2.5));
        assert_eq!(ScriptValue::str("a"), ScriptValue::str("a"));
        assert_ne!(ScriptValue::str("a"), ScriptValue::Int(1));
    }

    #[test]
    fn data_round_trip() {
        let v = ScriptValue::list(vec![
            ScriptValue::Int(1),
            ScriptValue::str("x"),
            ScriptValue::Bool(true),
            ScriptValue::None,
        ]);
        let data = v.to_data().unwrap();
        let back = ScriptValue::from_data(&data);
        assert_eq!(v, back);
    }

    #[test]
    fn dict_converts_to_pair_list() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), ScriptValue::Int(1));
        let data = ScriptValue::dict(m).to_data().unwrap();
        match data {
            DataValue::List(pairs) => {
                assert_eq!(pairs.len(), 1);
                match &pairs[0] {
                    DataValue::List(kv) => {
                        assert_eq!(kv[0], DataValue::Str("k".into()));
                        assert_eq!(kv[1], DataValue::Int(1));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_matches_python_style() {
        assert_eq!(ScriptValue::Bool(true).to_string(), "True");
        assert_eq!(ScriptValue::None.to_string(), "None");
        assert_eq!(
            ScriptValue::list(vec![ScriptValue::str("a"), ScriptValue::Int(1)]).to_string(),
            "['a', 1]"
        );
    }

    #[test]
    fn functions_cannot_cross_tool_boundary() {
        let f = ScriptValue::Func(Rc::new(UserFn {
            name: "f".into(),
            params: vec![],
            body: vec![],
        }));
        assert!(f.to_data().is_err());
    }
}
