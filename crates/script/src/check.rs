//! Static checks over parsed Pyrite programs.
//!
//! [`check`] runs before interpretation and rejects malformed generated
//! programs *before* any simulated tokens are spent on them — the
//! CodeAgent runtime bills a planning call per step, so a program that
//! would only fail at runtime otherwise costs real (simulated) budget.
//!
//! Pyrite resolves names late, Python-style: a function body may call a
//! function defined later, and a branch may read a variable another
//! branch assigned. The checker therefore stays deliberately
//! flow-insensitive for *existence*: a name is only "undefined" when no
//! assignment, loop binding, parameter, `def`, global, tool, or builtin
//! anywhere in the program (or host environment) introduces it. That
//! keeps the pass sound — it never rejects a program the interpreter
//! would have run — while still catching the common failure modes of
//! generated code: misspelled tool names, references to variables that
//! were never produced, `while True` with no exit, and dead branches.

use crate::ast::{Expr, ExprKind, Program, Stmt, StmtKind, Target};
use crate::error::ScriptError;
use std::collections::BTreeSet;

/// Builtin functions the interpreter resolves without any registration.
/// Kept in sync with `Interpreter::call_builtin` (a unit test over every
/// builtin name enforces the sync).
pub const BUILTINS: &[&str] = &[
    "len",
    "str",
    "int",
    "float",
    "bool",
    "abs",
    "round",
    "range",
    "print",
    "sum",
    "min",
    "max",
    "sorted",
    "enumerate",
];

/// How bad an issue is. Errors reject the program; warnings ride along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckSeverity {
    /// Suspicious but runnable (unused variable, dead branch).
    Warning,
    /// The program is malformed and will not be executed.
    Error,
}

/// One issue the checker found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckIssue {
    /// Stable issue code (`"undefined-name"`, `"unknown-call"`,
    /// `"unbounded-loop"`, `"dead-branch"`, `"unused-variable"`).
    pub code: &'static str,
    /// Severity.
    pub severity: CheckSeverity,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// The host environment the program will run inside: names that exist
/// without being defined by the program itself.
#[derive(Debug, Clone, Default)]
pub struct CheckEnv {
    /// Pre-set global variables.
    pub globals: BTreeSet<String>,
    /// Registered host functions (tools).
    pub tools: BTreeSet<String>,
}

impl CheckEnv {
    /// Whether `name` exists in the host environment (including
    /// builtins).
    fn has(&self, name: &str) -> bool {
        self.globals.contains(name) || self.tools.contains(name) || BUILTINS.contains(&name)
    }
}

/// Runs all static checks. Issues are ordered by line, then code.
pub fn check(program: &Program, env: &CheckEnv) -> Vec<CheckIssue> {
    let mut ck = Checker {
        env,
        defined: BTreeSet::new(),
        used: BTreeSet::new(),
        issues: Vec::new(),
    };
    // Pass 1: every name the program introduces, anywhere.
    collect_defined(&program.body, &mut ck.defined);
    // Pass 2: walk references and structure.
    ck.stmts(&program.body);
    // Pass 3: definitions that were never read.
    ck.unused(&program.body);
    ck.issues
        .sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    ck.issues
}

/// The first error, if any — what [`crate::Interpreter::run_checked`]
/// reports.
pub fn first_error(issues: &[CheckIssue]) -> Option<ScriptError> {
    issues
        .iter()
        .find(|i| i.severity == CheckSeverity::Error)
        .map(|i| ScriptError::Static {
            line: i.line,
            message: i.message.clone(),
        })
}

struct Checker<'a> {
    env: &'a CheckEnv,
    defined: BTreeSet<String>,
    used: BTreeSet<String>,
    issues: Vec<CheckIssue>,
}

/// Collects every name any statement in `body` (recursively) defines.
fn collect_defined(body: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::Assign(Target::Name(n), _) | StmtKind::AugAssign(Target::Name(n), _, _) => {
                out.insert(n.clone());
            }
            StmtKind::Assign(_, _) | StmtKind::AugAssign(_, _, _) => {}
            StmtKind::If(arms, els) => {
                for (_, arm) in arms {
                    collect_defined(arm, out);
                }
                if let Some(els) = els {
                    collect_defined(els, out);
                }
            }
            StmtKind::While(_, b) => collect_defined(b, out),
            StmtKind::For(vars, _, b) => {
                out.extend(vars.iter().cloned());
                collect_defined(b, out);
            }
            StmtKind::Def(name, params, b) => {
                out.insert(name.clone());
                out.extend(params.iter().cloned());
                collect_defined(b, out);
            }
            _ => {}
        }
        // Comprehension variables bind too (they leak into scope in
        // Pyrite, like Python 2 — and even if they did not, treating
        // them as defined only ever suppresses a false positive).
        visit_exprs(stmt, &mut |e| {
            if let ExprKind::ListComp { vars, .. } = &e.kind {
                out.extend(vars.iter().cloned());
            }
        });
    }
}

/// Calls `f` on every expression reachable from `stmt`.
fn visit_exprs(stmt: &Stmt, f: &mut dyn FnMut(&Expr)) {
    fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
        f(e);
        match &e.kind {
            ExprKind::List(items) => items.iter().for_each(|e| walk_expr(e, f)),
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    walk_expr(k, f);
                    walk_expr(v, f);
                }
            }
            ExprKind::Binary(_, a, b) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            ExprKind::Unary(_, a) => walk_expr(a, f),
            ExprKind::Call(callee, args) => {
                walk_expr(callee, f);
                args.iter().for_each(|e| walk_expr(e, f));
            }
            ExprKind::MethodCall(obj, _, args) => {
                walk_expr(obj, f);
                args.iter().for_each(|e| walk_expr(e, f));
            }
            ExprKind::Index(obj, key) => {
                walk_expr(obj, f);
                walk_expr(key, f);
            }
            ExprKind::ListComp {
                element,
                iterable,
                condition,
                ..
            } => {
                walk_expr(element, f);
                walk_expr(iterable, f);
                if let Some(c) = condition {
                    walk_expr(c, f);
                }
            }
            ExprKind::Slice(obj, lo, hi) => {
                walk_expr(obj, f);
                if let Some(lo) = lo {
                    walk_expr(lo, f);
                }
                if let Some(hi) = hi {
                    walk_expr(hi, f);
                }
            }
            _ => {}
        }
    }
    match &stmt.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::Assign(t, e) | StmtKind::AugAssign(t, _, e) => {
            if let Target::Index(obj, key) = t {
                walk_expr(obj, f);
                walk_expr(key, f);
            }
            walk_expr(e, f);
        }
        StmtKind::If(arms, _) => {
            for (cond, _) in arms {
                walk_expr(cond, f);
            }
        }
        StmtKind::While(cond, _) => walk_expr(cond, f),
        StmtKind::For(_, iter, _) => walk_expr(iter, f),
        _ => {}
    }
}

/// A literal's truthiness, when statically known.
fn const_truth(e: &Expr) -> Option<bool> {
    match &e.kind {
        ExprKind::Bool(b) => Some(*b),
        ExprKind::Int(i) => Some(*i != 0),
        ExprKind::Float(x) => Some(*x != 0.0),
        ExprKind::Str(s) => Some(!s.is_empty()),
        ExprKind::None => Some(false),
        _ => None,
    }
}

/// Whether any statement in `body` (recursively, but not inside nested
/// `def`s) is `break` or `return`.
fn has_exit(body: &[Stmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Break | StmtKind::Return(_) => true,
        StmtKind::If(arms, els) => {
            arms.iter().any(|(_, b)| has_exit(b)) || els.as_ref().is_some_and(|b| has_exit(b))
        }
        // A nested loop's own break exits *that* loop, not this one —
        // but a return inside it still exits. Keeping the recursion
        // here over-approximates exits, which only ever suppresses a
        // finding (sound for a rejection gate).
        StmtKind::While(_, b) | StmtKind::For(_, _, b) => has_exit(b),
        _ => false,
    })
}

impl Checker<'_> {
    fn issue(&mut self, code: &'static str, severity: CheckSeverity, line: usize, message: String) {
        self.issues.push(CheckIssue {
            code,
            severity,
            line,
            message,
        });
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for stmt in body {
            self.structure(stmt);
            visit_exprs(stmt, &mut |_| {});
            self.names_in(stmt);
        }
    }

    /// Structural checks: unbounded loops and dead branches.
    fn structure(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::While(cond, body) => {
                match const_truth(cond) {
                    Some(true) if !has_exit(body) => self.issue(
                        "unbounded-loop",
                        CheckSeverity::Error,
                        stmt.line,
                        "`while` loop condition is always true and the body never \
                         breaks or returns; the program cannot terminate"
                            .to_string(),
                    ),
                    Some(false) => self.issue(
                        "dead-branch",
                        CheckSeverity::Warning,
                        stmt.line,
                        "`while` loop condition is always false; the body never runs".to_string(),
                    ),
                    _ => {}
                }
                self.stmts(body);
            }
            StmtKind::If(arms, els) => {
                let mut taken = false;
                for (cond, body) in arms {
                    match const_truth(cond) {
                        _ if taken => self.issue(
                            "dead-branch",
                            CheckSeverity::Warning,
                            cond.line,
                            "branch is unreachable: an earlier condition is always true"
                                .to_string(),
                        ),
                        Some(false) => self.issue(
                            "dead-branch",
                            CheckSeverity::Warning,
                            cond.line,
                            "branch condition is always false; its body never runs".to_string(),
                        ),
                        Some(true) => taken = true,
                        Option::None => {}
                    }
                    self.stmts(body);
                }
                if let Some(els) = els {
                    if taken {
                        self.issue(
                            "dead-branch",
                            CheckSeverity::Warning,
                            stmt.line,
                            "`else` is unreachable: an earlier condition is always true"
                                .to_string(),
                        );
                    }
                    self.stmts(els);
                }
            }
            StmtKind::For(_, _, body) | StmtKind::Def(_, _, body) => self.stmts(body),
            _ => {}
        }
    }

    /// Name-existence checks over every expression in `stmt`.
    fn names_in(&mut self, stmt: &Stmt) {
        let mut refs: Vec<(String, usize, bool)> = Vec::new();
        visit_exprs(stmt, &mut |e| {
            match &e.kind {
                ExprKind::Name(n) => refs.push((n.clone(), e.line, false)),
                ExprKind::Call(callee, _) => {
                    if let ExprKind::Name(n) = &callee.kind {
                        // Mark as a call site; the plain Name visit also
                        // records it, so de-dup below keeps the call.
                        refs.push((n.clone(), callee.line, true));
                    }
                }
                _ => {}
            }
        });
        for (name, line, is_call) in &refs {
            self.used.insert(name.clone());
            let exists = self.defined.contains(name) || self.env.has(name);
            if exists {
                continue;
            }
            if *is_call {
                let mut known: Vec<&str> = self
                    .env
                    .tools
                    .iter()
                    .map(|s| s.as_str())
                    .chain(BUILTINS.iter().copied())
                    .collect();
                known.sort_unstable();
                self.issue(
                    "unknown-call",
                    CheckSeverity::Error,
                    *line,
                    format!(
                        "call to unknown function or tool '{name}' (available: {})",
                        known.join(", ")
                    ),
                );
            } else if !refs.iter().any(|(n, _, c)| n == name && *c) {
                // Avoid double-reporting the callee of an unknown call.
                self.issue(
                    "undefined-name",
                    CheckSeverity::Error,
                    *line,
                    format!("'{name}' is never defined anywhere in the program"),
                );
            }
        }
    }

    /// Unused-variable warnings: top-level definitions never read.
    fn unused(&mut self, body: &[Stmt]) {
        let mut seen = BTreeSet::new();
        for stmt in body {
            let (name, what) = match &stmt.kind {
                StmtKind::Assign(Target::Name(n), _) => (n, "variable"),
                StmtKind::Def(n, _, _) => (n, "function"),
                _ => continue,
            };
            if name.starts_with('_') || self.used.contains(name) || !seen.insert(name.clone()) {
                continue;
            }
            self.issue(
                "unused-variable",
                CheckSeverity::Warning,
                stmt.line,
                format!("{what} '{name}' is assigned but never used"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env_with(tools: &[&str]) -> CheckEnv {
        CheckEnv {
            globals: BTreeSet::new(),
            tools: tools.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn run_check(src: &str, env: &CheckEnv) -> Vec<CheckIssue> {
        let program = parse(src).expect("fixture parses");
        check(&program, env)
    }

    fn errors(issues: &[CheckIssue]) -> Vec<&CheckIssue> {
        issues
            .iter()
            .filter(|i| i.severity == CheckSeverity::Error)
            .collect()
    }

    #[test]
    fn clean_program_passes() {
        let src = "x = 1\ny = x + 2\ny\n";
        let issues = run_check(src, &env_with(&[]));
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn undefined_name_is_rejected() {
        let issues = run_check("x = missing + 1\nx\n", &env_with(&[]));
        let errs = errors(&issues);
        assert_eq!(errs.len(), 1, "{issues:?}");
        assert_eq!(errs[0].code, "undefined-name");
        assert_eq!(errs[0].line, 1);
    }

    #[test]
    fn late_binding_is_not_rejected() {
        // `helper` is defined after `main`, and `acc` is assigned in one
        // branch and read in another — both legal at runtime.
        let src = "def main():\n    return helper(2)\ndef helper(n):\n    return n * 2\nmain()\n";
        assert!(errors(&run_check(src, &env_with(&[]))).is_empty());
    }

    #[test]
    fn unknown_tool_call_is_rejected_and_lists_tools() {
        let issues = run_check("serch_docs(\"q\")\n", &env_with(&["search_docs"]));
        let errs = errors(&issues);
        assert_eq!(errs.len(), 1, "{issues:?}");
        assert_eq!(errs[0].code, "unknown-call");
        assert!(errs[0].message.contains("search_docs"));
    }

    #[test]
    fn while_true_without_exit_is_rejected() {
        let issues = run_check("while True:\n    x = 1\n", &env_with(&[]));
        assert!(errors(&issues).iter().any(|i| i.code == "unbounded-loop"));
        // With a break it is fine.
        let ok = run_check("while True:\n    break\n", &env_with(&[]));
        assert!(errors(&ok).is_empty(), "{ok:?}");
        // A non-literal condition is fine (the fuel budget guards it).
        let ok = run_check("n = 3\nwhile n > 0:\n    n = n - 1\nn\n", &env_with(&[]));
        assert!(errors(&ok).is_empty(), "{ok:?}");
    }

    #[test]
    fn dead_branches_warn_but_do_not_reject() {
        let src = "if False:\n    x = 1\nelse:\n    x = 2\nx\n";
        let issues = run_check(src, &env_with(&[]));
        assert!(errors(&issues).is_empty(), "{issues:?}");
        assert!(issues.iter().any(|i| i.code == "dead-branch"));
    }

    #[test]
    fn unused_variable_warns() {
        let issues = run_check("x = 1\ny = 2\ny\n", &env_with(&[]));
        assert!(errors(&issues).is_empty());
        let unused: Vec<_> = issues
            .iter()
            .filter(|i| i.code == "unused-variable")
            .collect();
        assert_eq!(unused.len(), 1, "{issues:?}");
        assert!(unused[0].message.contains("'x'"));
    }

    #[test]
    fn underscore_names_are_exempt_from_unused() {
        let issues = run_check("_scratch = 1\n2\n", &env_with(&[]));
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn first_error_converts_to_static_script_error() {
        let issues = run_check("boom()\n", &env_with(&[]));
        let err = first_error(&issues).expect("has error");
        assert!(matches!(err, ScriptError::Static { line: 1, .. }));
        assert!(err.to_string().starts_with("static error (line 1):"));
    }

    #[test]
    fn comprehension_vars_count_as_defined() {
        let src = "xs = [1, 2, 3]\nys = [v * 2 for v in xs]\nys\n";
        assert!(run_check(src, &env_with(&[])).is_empty());
    }

    #[test]
    fn builtin_list_matches_interpreter() {
        // Every name in BUILTINS must actually resolve when called.
        let mut interp = crate::Interpreter::new();
        for b in BUILTINS {
            let src = match *b {
                "print" => "print(1)".to_string(),
                "range" => "range(1)".to_string(),
                "enumerate" => "enumerate([1])".to_string(),
                "sum" | "min" | "max" | "sorted" | "len" => format!("{b}([1])"),
                _ => format!("{b}(1)"),
            };
            let res = interp.run(&src);
            assert!(res.is_ok(), "builtin {b} failed: {res:?}");
        }
    }
}
